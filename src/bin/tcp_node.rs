//! Worker process for multi-process deployments: one node of the TCP
//! fabric, launched by [`borealis_workloads::run_tcp_parent`].
//!
//! Argv carries `proc=<i>` plus the serialized [`TcpChainSpec`]
//! (`key=value` tokens); the port map arrives on stdin. See
//! `borealis_workloads::tcp` for the handshake protocol.
//!
//! [`TcpChainSpec`]: borealis_workloads::TcpChainSpec

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match borealis_workloads::run_tcp_child_args(args.iter().map(|s| s.as_str())) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tcp_node: {e}");
            ExitCode::FAILURE
        }
    }
}
