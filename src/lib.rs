//! # Borealis DPC — fault-tolerant distributed stream processing
//!
//! A from-scratch Rust reproduction of *Fault-Tolerance in the Borealis
//! Distributed Stream Processing System* (Balazinska, Balakrishnan, Madden,
//! Stonebraker; SIGMOD 2005 / ACM TODS): the **DPC** (Delay, Process, and
//! Correct) protocol, the Borealis-style stream engine it runs on, and a
//! deterministic distributed-systems simulator that reproduces every
//! experiment in the paper's evaluation.
//!
//! ## The thirty-second tour
//!
//! ```
//! use borealis::prelude::*;
//!
//! // 1. Describe a query diagram: three monitor streams merged into one.
//! let mut q = QueryBuilder::new();
//! let (m1, m2, m3) = (q.source("m1"), q.source("m2"), q.source("m3"));
//! let merged = q.union("merged", &[m1, m2, m3]);
//! q.output(merged);
//! let diagram = q.build().unwrap();
//!
//! // 2. Plan it for DPC: one replicated fragment, 2-second latency budget.
//! let cfg = DpcConfig { total_delay: Duration::from_secs(2), ..DpcConfig::default() };
//! let plan = plan_deployment(&diagram, &DeploymentSpec::single(2), &cfg).unwrap();
//!
//! // 3. Deploy: replicated node pair, three sources, one client, and a
//! //    scripted failure — monitor 3 unreachable from t=5s to t=8s.
//! let mut sys = SystemBuilder::new(7, Duration::from_millis(1))
//!     .source(SourceConfig::seq(m1.id(), 100.0))
//!     .source(SourceConfig::seq(m2.id(), 100.0))
//!     .source(SourceConfig::seq(m3.id(), 100.0))
//!     .plan(plan)
//!     .client_streams(vec![merged.id()])
//!     .fault(FaultSpec::DisconnectSource {
//!         stream: m3.id(),
//!         frag: 0,
//!         from: Time::from_secs(5),
//!         to: Time::from_secs(8),
//!     })
//!     .build();
//! sys.run_until(Time::from_secs(20));
//!
//! // 4. The client saw low-latency tentative results during the failure
//! //    and received stable corrections afterwards.
//! sys.metrics.with(merged.id(), |m| {
//!     assert!(m.n_tentative > 0);
//!     assert!(m.n_rec_done >= 1);
//!     assert_eq!(m.dup_stable, 0);
//! });
//! ```
//!
//! A fragment under heavy load scales out declaratively: give its
//! `FragmentSpec` a shard count and key
//! (`FragmentSpec::named("work").op("work").shards(4, Expr::field(0))`) and
//! the planner clones it into four key-partitioned instances — sources and
//! upstream fragments fan batches out by `hash(key) % 4` on the wire, the
//! downstream entry SUnion merges the substreams deterministically, and
//! replication, scripted faults, and recovery compose unchanged.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | `borealis-types` | Tuple model (stable/tentative/boundary/undo/rec-done), time, expressions, and the shared-ownership [`TupleBatch`](borealis_types::TupleBatch) data plane |
//! | `borealis-ops` | Operators: Filter, Map, Union, Aggregate, SJoin, SUnion, SOutput — per-tuple and batch execution paths |
//! | `borealis-diagram` | Query diagrams, validation, DPC planning, delay assignment |
//! | `borealis-engine` | Per-node fragment executor (batch-wise) with checkpoint/redo reconciliation |
//! | `borealis-sim` | Deterministic discrete-event simulator + network fault injection + message-loss stats |
//! | `borealis-dpc` | The DPC protocol: nodes, sources, clients, replica management |
//! | `borealis-workloads` | Paper-experiment setups and runners |
//! | `borealis-bench` | One `cargo bench` target per paper table/figure |
//!
//! ## The batch data plane
//!
//! Every layer that moves tuples — operator emissions, the fragment
//! executor, `NetMsg::Data` payloads, output-buffer retention/replay,
//! source logs — carries an `Arc`-backed, immutable
//! [`TupleBatch`](borealis_types::TupleBatch): cloning is a reference-count
//! bump, slicing is O(1) range arithmetic. One emitted batch backs the
//! emission log, every replica's and client's in-flight messages, and every
//! replay cursor simultaneously, so fan-out cost is independent of
//! replication degree. Ack-driven truncation (§8.1) narrows retained
//! segments by range split — views already handed to slower subscribers
//! stay valid.

pub use borealis_diagram as diagram;
pub use borealis_dpc as dpc;
pub use borealis_engine as engine;
pub use borealis_ops as ops;
pub use borealis_runtime as runtime;
pub use borealis_sim as sim;
pub use borealis_types as types;
pub use borealis_workloads as workloads;

/// Everything needed to build and run a fault-tolerant stream deployment.
pub mod prelude {
    pub use borealis_diagram::{
        plan, plan_deployment, DelayAssignment, Deployment, DeploymentSpec, Diagram,
        DiagramBuilder, DpcConfig, FragmentSpec, JoinSpec, LogicalOp, PhysicalPlan, Protection,
        QueryBuilder, StreamHandle,
    };
    pub use borealis_dpc::{
        BufferPolicy, ClientTuning, FaultSpec, MetricsHub, NodeState, NodeTuning, RunningSystem,
        SourceConfig, SystemBuilder, SystemLayout, Transport, ValueGen,
    };
    pub use borealis_ops::{AggFn, AggregateSpec, DelayMode, SJoinSpec, SUnionConfig};
    pub use borealis_runtime::{
        deploy_tcp, deploy_threads, plan_processes, RunningTcp, RunningThreads, TcpFabric,
        ThreadRuntime,
    };
    pub use borealis_types::{
        CreditPolicy, Duration, Expr, FlowGauges, FragmentId, NodeId, PartitionSpec, SchedGauges,
        SendOutcome, StreamId, Time, Tuple, TupleBatch, TupleId, TupleKind, Value, WireGauges,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_builder_api() {
        use crate::prelude::*;
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f = b.add(
            "f",
            LogicalOp::Filter {
                predicate: Expr::Const(Value::Bool(true)),
            },
            &[s],
        );
        b.output(f);
        assert!(b.build().is_ok());
    }
}
