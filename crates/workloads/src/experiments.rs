//! Experiment runners: one function per table/figure of the paper's
//! evaluation (§5–§7). Each runner scripts the paper's failure scenario
//! against a deployment from [`crate::setups`] and returns structured rows;
//! `crates/bench` renders them in the paper's format.

use crate::setups::{
    chain_system, overhead_system, single_node_system, ChainOptions, OverheadOptions,
    PolicyVariant, SingleNodeOptions, DISTRIBUTED_VARIANTS, SINGLE_NODE_OUT, VARIANTS,
};
use borealis_diagram::DelayAssignment;
use borealis_dpc::TraceEntry;
use borealis_types::{Duration, StreamId, Time};

/// When failures start in every scenario (after warm-up).
const FAILURE_START: Time = Time::from_secs(15);

/// Result of one Fig. 11 run: the full client arrival trace plus summary
/// counters.
#[derive(Debug)]
pub struct Fig11Result {
    /// Complete arrival trace at the client (sequence numbers over time).
    pub trace: Vec<TraceEntry>,
    /// Tentative tuples received.
    pub n_tentative: u64,
    /// Stable tuples received.
    pub n_stable: u64,
    /// UNDO markers received.
    pub n_undo: u64,
    /// REC_DONE markers received.
    pub n_rec_done: u64,
    /// Duplicate stable tuples (must be 0).
    pub dup_stable: u64,
    /// Maximum gap between new tuples.
    pub max_gap: Duration,
}

/// Fig. 11: eventual consistency under simultaneous failures (a) and a
/// failure during recovery (b). Single unreplicated node, D = 2 s,
/// failures on input streams 1 and 3.
pub fn run_fig11(failure_during_recovery: bool) -> Fig11Result {
    let o = SingleNodeOptions {
        replication: 1,
        total_rate: 300.0,
        delay: Duration::from_secs(2),
        trace: true,
        ..Default::default()
    };
    let mut sys = single_node_system(&o);
    let s1 = StreamId(0);
    let s3 = StreamId(2);
    let f1_heal = FAILURE_START + Duration::from_secs(8);
    sys.disconnect_source(s1, 0, FAILURE_START, f1_heal);
    if failure_during_recovery {
        // Failure 2 begins exactly as failure 1 heals (Fig. 11(b)).
        sys.disconnect_source(s3, 0, f1_heal, f1_heal + Duration::from_secs(8));
    } else {
        // Overlapping failures (Fig. 11(a)).
        let f2_start = FAILURE_START + Duration::from_secs(4);
        sys.disconnect_source(s3, 0, f2_start, f2_start + Duration::from_secs(8));
    }
    sys.run_until(Time::from_secs(45));
    sys.metrics.with(SINGLE_NODE_OUT, |m| Fig11Result {
        trace: m.trace.clone().unwrap_or_default(),
        n_tentative: m.n_tentative,
        n_stable: m.n_stable,
        n_undo: m.n_undo,
        n_rec_done: m.n_rec_done,
        dup_stable: m.dup_stable,
        max_gap: m.max_gap,
    })
}

/// One row of Table III / Fig. 13.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Policy variant name.
    pub variant: &'static str,
    /// Failure duration in seconds.
    pub failure_secs: f64,
    /// Measured `Procnew` (max processing latency of new tuples).
    pub procnew: Duration,
    /// Measured `Ntentative`.
    pub ntentative: u64,
    /// Protocol violations (must be 0).
    pub dup_stable: u64,
}

fn run_single_node_failure(o: &SingleNodeOptions, failure: Duration) -> AvailabilityRow {
    let mut sys = single_node_system(o);
    sys.disconnect_source(StreamId(2), 0, FAILURE_START, FAILURE_START + failure);
    // Warm-up + failure + generous recovery/settle time.
    sys.run_until(FAILURE_START + failure + Duration::from_secs(25));
    sys.metrics.with(SINGLE_NODE_OUT, |m| AvailabilityRow {
        variant: o.variant.name,
        failure_secs: failure.as_secs_f64(),
        procnew: m.procnew,
        ntentative: m.n_tentative,
        dup_stable: m.dup_stable,
    })
}

/// Table III: `Procnew` for different failure durations, replicated node
/// pair running SUnion + SJoin(100) + SOutput under Process & Process with
/// a 3 s budget. The paper's result: constant ≈ 2.8 s, below the bound,
/// independent of failure duration.
pub fn run_table3(failure_secs: &[f64]) -> Vec<AvailabilityRow> {
    failure_secs
        .iter()
        .map(|&f| {
            let o = SingleNodeOptions {
                with_join: true,
                total_rate: 900.0,
                delay: Duration::from_secs(3),
                variant: VARIANTS[0], // Process & Process
                ..Default::default()
            };
            run_single_node_failure(&o, Duration::from_secs_f64(f))
        })
        .collect()
}

/// Fig. 13: `Procnew` and `Ntentative` for the six §6.1 policy variants on
/// a replicated single-node deployment at 4500 tuples/s with a 3 s budget.
pub fn run_fig13(variants: &[PolicyVariant], failure_secs: &[f64]) -> Vec<AvailabilityRow> {
    let mut rows = Vec::new();
    for &variant in variants {
        for &f in failure_secs {
            let o = SingleNodeOptions {
                with_join: false,
                total_rate: 4500.0,
                delay: Duration::from_secs(3),
                variant,
                ..Default::default()
            };
            rows.push(run_single_node_failure(&o, Duration::from_secs_f64(f)));
        }
    }
    rows
}

/// One row of the chain experiments (Figs. 15, 16, 18, 19, 20).
#[derive(Debug, Clone)]
pub struct ChainRow {
    /// Configuration label.
    pub label: String,
    /// Chain depth.
    pub depth: usize,
    /// Failure duration (seconds).
    pub failure_secs: f64,
    /// Measured `Procnew`.
    pub procnew: Duration,
    /// Measured `Ntentative` on the final output.
    pub ntentative: u64,
    /// Protocol violations (must be 0).
    pub dup_stable: u64,
}

fn run_chain_failure(o: &ChainOptions, failure: Duration, label: String) -> ChainRow {
    let (mut sys, out) = chain_system(o);
    // §6.2 failure: mute only the boundary tuples of one input stream so
    // the output rate stays unchanged.
    sys.mute_boundaries(StreamId(2), FAILURE_START, FAILURE_START + failure);
    sys.run_until(FAILURE_START + failure + Duration::from_secs(25));
    sys.metrics.with(out, |m| ChainRow {
        label,
        depth: o.depth,
        failure_secs: failure.as_secs_f64(),
        procnew: m.procnew,
        ntentative: m.n_tentative,
        dup_stable: m.dup_stable,
    })
}

/// Figs. 15/16/18: chains of depth 1–4 with D = 2 s per SUnion, comparing
/// Delay & Delay against Process & Process for the given failure durations.
pub fn run_chain(depths: &[usize], failure_secs: &[f64]) -> Vec<ChainRow> {
    let mut rows = Vec::new();
    for &variant in &DISTRIBUTED_VARIANTS {
        for &depth in depths {
            for &f in failure_secs {
                let o = ChainOptions {
                    depth,
                    variant,
                    ..Default::default()
                };
                rows.push(run_chain_failure(
                    &o,
                    Duration::from_secs_f64(f),
                    variant.name.to_string(),
                ));
            }
        }
    }
    rows
}

/// Figs. 19/20: delay assignment on a chain of four nodes with an 8 s
/// total budget — uniform 2 s per SUnion (Delay & Delay and Process &
/// Process) versus the full budget (6.5 s after the queueing safety margin)
/// at every SUnion with Process & Process.
pub fn run_delay_assignment(failure_secs: &[f64]) -> Vec<ChainRow> {
    let mut rows = Vec::new();
    let configs: [(String, ChainOptions); 3] = [
        (
            "Delay & Delay, D=2s".to_string(),
            ChainOptions {
                variant: DISTRIBUTED_VARIANTS[0],
                ..Default::default()
            },
        ),
        (
            "Process & Process, D=2s".to_string(),
            ChainOptions {
                variant: DISTRIBUTED_VARIANTS[1],
                ..Default::default()
            },
        ),
        (
            "Process & Process, D=6.5s".to_string(),
            ChainOptions {
                variant: DISTRIBUTED_VARIANTS[1],
                assignment: DelayAssignment::Full {
                    effective: Duration::from_secs_f64(6.5),
                },
                ..Default::default()
            },
        ),
    ];
    for (label, o) in configs {
        for &f in failure_secs {
            rows.push(run_chain_failure(
                &o,
                Duration::from_secs_f64(f),
                label.clone(),
            ));
        }
    }
    rows
}

/// One row of Tables IV / V.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// The swept parameter value in milliseconds (0 = Union baseline).
    pub param_ms: u64,
    /// Minimum per-tuple latency.
    pub min: Duration,
    /// Maximum per-tuple latency.
    pub max: Duration,
    /// Mean per-tuple latency.
    pub avg: Duration,
    /// Standard deviation of per-tuple latency.
    pub std: Duration,
    /// Number of tuples measured.
    pub count: u64,
}

fn run_overhead(o: &OverheadOptions, param_ms: u64) -> OverheadRow {
    let mut sys = overhead_system(o);
    // §7: five-minute runs, ~25,000 tuples.
    sys.run_until(Time::from_secs(300));
    sys.metrics
        .with(crate::setups::OVERHEAD_OUT, |m| OverheadRow {
            param_ms,
            min: m.lat_min.unwrap_or(Duration::ZERO),
            max: m.procnew,
            avg: m.lat_avg(),
            std: m.lat_std(),
            count: m.lat_count(),
        })
}

/// Table IV: serialization latency versus SUnion bucket size, with a fixed
/// 10 ms boundary interval. `bucket_ms = 0` runs the plain-Union baseline.
pub fn run_table4(bucket_ms: &[u64]) -> Vec<OverheadRow> {
    bucket_ms
        .iter()
        .map(|&b| {
            let o = OverheadOptions {
                bucket: (b > 0).then(|| Duration::from_millis(b)),
                boundary_interval: Duration::from_millis(10),
                ..Default::default()
            };
            run_overhead(&o, b)
        })
        .collect()
}

/// Table V: serialization latency versus boundary interval, with a fixed
/// 10 ms bucket size. `boundary_ms = 0` runs the plain-Union baseline.
pub fn run_table5(boundary_ms: &[u64]) -> Vec<OverheadRow> {
    boundary_ms
        .iter()
        .map(|&b| {
            let o = OverheadOptions {
                bucket: (b > 0).then_some(Duration::from_millis(10)),
                boundary_interval: Duration::from_millis(b.max(1)),
                ..Default::default()
            };
            run_overhead(&o, b)
        })
        .collect()
}

/// Result of the §5.1 switchover experiment.
#[derive(Debug, Clone)]
pub struct SwitchoverResult {
    /// Largest gap between new-data arrivals at the client (contains the
    /// detection + switch + replay window).
    pub max_gap: Duration,
    /// Stable tuples delivered (stream must continue).
    pub n_stable: u64,
    /// Protocol violations (must be 0).
    pub dup_stable: u64,
}

/// §5.1: crash the replica the client is reading from and measure the data
/// gap until the other replica takes over (the paper: ≤ keep-alive period +
/// ~40 ms switch ≈ 140 ms).
pub fn run_switchover() -> SwitchoverResult {
    let o = SingleNodeOptions::default();
    let mut sys = single_node_system(&o);
    sys.crash_node(0, 0, FAILURE_START, None);
    sys.run_until(Time::from_secs(30));
    sys.metrics.with(SINGLE_NODE_OUT, |m| SwitchoverResult {
        max_gap: m.max_gap,
        n_stable: m.n_stable,
        dup_stable: m.dup_stable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_overlapping_failures_end_consistent() {
        let r = run_fig11(false);
        assert!(r.n_tentative > 0);
        assert!(r.n_undo >= 1);
        assert!(r.n_rec_done >= 1);
        assert_eq!(r.dup_stable, 0);
        assert!(!r.trace.is_empty());
    }

    #[test]
    fn fig11_failure_during_recovery_reconciles_twice() {
        let r = run_fig11(true);
        assert!(r.n_rec_done >= 2, "two correction waves: {}", r.n_rec_done);
        assert_eq!(r.dup_stable, 0);
    }

    #[test]
    fn table3_meets_bound_for_short_and_long_failures() {
        let rows = run_table3(&[2.0, 10.0]);
        for row in &rows {
            assert!(
                row.procnew < Duration::from_secs_f64(3.2),
                "{}s failure: procnew {}",
                row.failure_secs,
                row.procnew
            );
            assert_eq!(row.dup_stable, 0);
        }
    }

    #[test]
    fn switchover_gap_is_bounded() {
        let r = run_switchover();
        assert_eq!(r.dup_stable, 0);
        assert!(r.max_gap < Duration::from_millis(1000), "gap {}", r.max_gap);
    }

    #[test]
    fn overhead_grows_with_bucket_size() {
        let rows = run_table4(&[0, 10, 100]);
        assert!(rows[0].avg < rows[1].avg);
        assert!(rows[1].avg < rows[2].avg);
    }
}
