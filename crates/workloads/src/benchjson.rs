//! Per-PR benchmark trajectory tracking (the ROADMAP's "wall-clock
//! benchmark suite" regression harness).
//!
//! Every PR records its headline wall-clock numbers in a `BENCH_PR<n>.json`
//! file at the repository root. This module parses those files (with a
//! registry-free, in-tree JSON reader — the build has no `serde`), extracts
//! each PR's **reference throughput** — the best `stable_tuples_per_s`
//! figure recorded anywhere in the file, which every PR since PR 2 reports
//! for the realtime reference configuration — and renders the trajectory.
//! [`regression`] compares the newest two PRs that carry the metric and
//! flags a drop beyond the tolerance; the `bench_report` binary turns that
//! into a CI failure.

use crate::report::TextTable;

/// A parsed JSON value (the subset the bench files use — which is all of
/// JSON except exotic number forms).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Parses one JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

/// Collects every number stored under a key named `key`, anywhere in the
/// document. The value may be a plain number (PR 2's flat rows) or an
/// object of per-configuration numbers (PR 3's `{K1,K2,K4}` sweeps) — all
/// numeric leaves count.
fn rates_under(j: &Json, key: &str, under_key: bool, out: &mut Vec<f64>) {
    match j {
        Json::Num(n) if under_key => out.push(*n),
        Json::Arr(items) => {
            for item in items {
                rates_under(item, key, under_key, out);
            }
        }
        Json::Obj(fields) => {
            for (k, v) in fields {
                rates_under(v, key, under_key || k == key, out);
            }
        }
        _ => {}
    }
}

/// One PR's point on the benchmark trajectory.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// PR number (from the file's `pr` field, falling back to the digits in
    /// the file name).
    pub pr: u64,
    /// Source file name.
    pub file: String,
    /// The file's `reference_stable_tuples_per_s` (the agreed reference
    /// configuration), or failing that the best `stable_tuples_per_s`
    /// recorded anywhere in the file. `None` for files that predate the
    /// realtime benchmark (PR 1's micro-bench baseline).
    pub rate: Option<f64>,
    /// The best `saturation_stable_tuples_per_s` recorded anywhere in the
    /// file — the K=4 clean capacity knee from `realtime_pipeline
    /// saturate`. `None` for PRs that predate the saturation sweep.
    pub saturation: Option<f64>,
    /// The file's own description of what it measured.
    pub benchmark: Option<String>,
}

/// Builds the trajectory from `(file name, contents)` pairs, sorted by PR
/// number.
pub fn trajectory(files: &[(String, String)]) -> Result<Vec<BenchPoint>, String> {
    let mut points = Vec::with_capacity(files.len());
    for (name, contents) in files {
        let doc = parse(contents).map_err(|e| format!("{name}: {e}"))?;
        let pr = doc
            .get("pr")
            .and_then(Json::as_num)
            .map(|n| n as u64)
            .or_else(|| {
                let digits: String = name.chars().filter(char::is_ascii_digit).collect();
                digits.parse().ok()
            })
            .ok_or_else(|| format!("{name}: no PR number in file or name"))?;
        // Prefer an explicit reference figure (the number measured at the
        // agreed reference configuration); fall back to the best
        // stable_tuples_per_s recorded anywhere.
        let rate = doc
            .get("reference_stable_tuples_per_s")
            .and_then(Json::as_num)
            .or_else(|| {
                let mut rates = Vec::new();
                rates_under(&doc, "stable_tuples_per_s", false, &mut rates);
                rates.iter().copied().reduce(f64::max)
            });
        let saturation = {
            let mut rates = Vec::new();
            rates_under(&doc, "saturation_stable_tuples_per_s", false, &mut rates);
            rates.iter().copied().reduce(f64::max)
        };
        points.push(BenchPoint {
            pr,
            file: name.clone(),
            rate,
            saturation,
            benchmark: doc
                .get("benchmark")
                .or_else(|| doc.get("description"))
                .and_then(Json::as_str)
                .map(str::to_string),
        });
    }
    points.sort_by_key(|p| p.pr);
    Ok(points)
}

/// Renders the trajectory as a table (one row per PR, with the change
/// relative to the previous PR that carried the metric).
pub fn render_trajectory(points: &[BenchPoint]) -> String {
    let mut t = TextTable::new(&[
        "pr",
        "file",
        "stable tuples/s",
        "vs prev",
        "saturation/s",
        "benchmark",
    ]);
    let mut prev: Option<f64> = None;
    for p in points {
        let (rate, delta) = match p.rate {
            Some(r) => {
                let delta = match prev {
                    Some(pr0) if pr0 > 0.0 => format!("{:+.1}%", (r / pr0 - 1.0) * 100.0),
                    _ => "-".to_string(),
                };
                prev = Some(r);
                (format!("{r:.0}"), delta)
            }
            None => ("-".to_string(), "-".to_string()),
        };
        let saturation = match p.saturation {
            Some(s) => format!("{s:.0}"),
            None => "-".to_string(),
        };
        t.row(vec![
            format!("{}", p.pr),
            p.file.clone(),
            rate,
            delta,
            saturation,
            p.benchmark
                .clone()
                .unwrap_or_default()
                .chars()
                .take(60)
                .collect(),
        ]);
    }
    t.render()
}

/// Compares the two newest PRs carrying the reference metric; returns the
/// pair if the newest regressed by more than `tolerance` (e.g. `0.15`).
pub fn regression(points: &[BenchPoint], tolerance: f64) -> Option<(BenchPoint, BenchPoint)> {
    metric_regression(points, tolerance, |p| p.rate)
}

/// Same check for the saturation capacity knee
/// (`saturation_stable_tuples_per_s`): compares the two newest PRs that
/// recorded one and returns the pair if capacity dropped beyond the
/// tolerance. PRs that predate the saturation sweep are skipped, not
/// treated as zero.
pub fn saturation_regression(
    points: &[BenchPoint],
    tolerance: f64,
) -> Option<(BenchPoint, BenchPoint)> {
    metric_regression(points, tolerance, |p| p.saturation)
}

fn metric_regression(
    points: &[BenchPoint],
    tolerance: f64,
    metric: impl Fn(&BenchPoint) -> Option<f64>,
) -> Option<(BenchPoint, BenchPoint)> {
    let with_rate: Vec<&BenchPoint> = points.iter().filter(|p| metric(p).is_some()).collect();
    let [.., prev, last] = with_rate[..] else {
        return None;
    };
    let (p, l) = (metric(prev).unwrap(), metric(last).unwrap());
    if l < p * (1.0 - tolerance) {
        Some(((*prev).clone(), (*last).clone()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_file_shapes() {
        let doc = parse(
            r#"{
              "pr": 3,
              "benchmark": "realtime",
              "results": [
                {"offered_rate_tuples_per_s": 12000,
                 "stable_tuples_per_s": {"K1": 8099, "K2": 11699, "K4": 11699}},
                {"stable_tuples_per_s": 28874, "note": "probe \"quoted\" é"}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(doc.get("pr").and_then(Json::as_num), Some(3.0));
        let mut rates = Vec::new();
        rates_under(&doc, "stable_tuples_per_s", false, &mut rates);
        rates.sort_by(f64::total_cmp);
        assert_eq!(rates, vec![8099.0, 11699.0, 11699.0, 28874.0]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    fn file(pr: u64, rate: Option<f64>) -> (String, String) {
        let body = match rate {
            Some(r) => format!("{{\"pr\": {pr}, \"results\": [{{\"stable_tuples_per_s\": {r}}}]}}"),
            None => format!("{{\"pr\": {pr}, \"benches\": {{}}}}"),
        };
        (format!("BENCH_PR{pr}.json"), body)
    }

    #[test]
    fn explicit_reference_beats_the_best_number_in_the_file() {
        // A saturation probe records a higher rate than the reference
        // configuration; the explicit field must win.
        let points = trajectory(&[(
            "BENCH_PR2.json".to_string(),
            r#"{"pr": 2, "reference_stable_tuples_per_s": 29249,
                "results": [{"stable_tuples_per_s": 67497}]}"#
                .to_string(),
        )])
        .unwrap();
        assert_eq!(points[0].rate, Some(29249.0));
    }

    #[test]
    fn trajectory_sorts_and_extracts() {
        let points = trajectory(&[
            file(3, Some(28874.0)),
            file(1, None),
            file(2, Some(29249.0)),
        ])
        .unwrap();
        assert_eq!(
            points.iter().map(|p| p.pr).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(points[0].rate, None);
        assert_eq!(points[2].rate, Some(28874.0));
        let rendered = render_trajectory(&points);
        assert!(rendered.contains("28874"));
        assert!(rendered.contains("-1.3%"), "delta column: {rendered}");
    }

    #[test]
    fn saturation_column_and_regression() {
        // The saturation knee is a distinct metric: it must not leak into
        // the reference column, and it gets its own regression check.
        let sat_file = |pr: u64, sat: f64| {
            (
                format!("BENCH_PR{pr}.json"),
                format!(
                    "{{\"pr\": {pr}, \"reference_stable_tuples_per_s\": 29100, \
                     \"results\": [{{\"saturation_stable_tuples_per_s\": {sat}}}]}}"
                ),
            )
        };
        let points = trajectory(&[file(9, Some(29200.0)), sat_file(10, 250000.0)]).unwrap();
        assert_eq!(points[0].saturation, None);
        assert_eq!(points[1].rate, Some(29100.0), "saturation must not leak");
        assert_eq!(points[1].saturation, Some(250000.0));
        let rendered = render_trajectory(&points);
        assert!(rendered.contains("250000"), "{rendered}");
        // Only one PR carries the metric: nothing to compare yet.
        assert!(saturation_regression(&points, 0.15).is_none());
        let dropped = trajectory(&[sat_file(10, 250000.0), sat_file(11, 150000.0)]).unwrap();
        let (prev, last) = saturation_regression(&dropped, 0.15).expect("-40% must flag");
        assert_eq!((prev.pr, last.pr), (10, 11));
        assert!(regression(&dropped, 0.15).is_none(), "reference held");
    }

    #[test]
    fn regression_flags_only_beyond_tolerance() {
        let ok = trajectory(&[file(2, Some(29000.0)), file(3, Some(28000.0))]).unwrap();
        assert!(regression(&ok, 0.15).is_none(), "-3.4% is within tolerance");
        let bad = trajectory(&[file(2, Some(29000.0)), file(3, Some(20000.0))]).unwrap();
        let (prev, last) = regression(&bad, 0.15).expect("-31% must flag");
        assert_eq!((prev.pr, last.pr), (2, 3));
        // Files without the metric are skipped, not treated as zero.
        let sparse = trajectory(&[
            file(2, Some(29000.0)),
            file(3, None),
            file(4, Some(28000.0)),
        ])
        .unwrap();
        assert!(regression(&sparse, 0.15).is_none());
    }
}
