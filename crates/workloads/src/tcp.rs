//! Multi-process launcher for the sharded chain workload over the socket
//! transport ([`borealis_runtime::tcp`]).
//!
//! One parent process (process 0: sources + client, where the metrics
//! live) forks `procs - 1` worker processes hosting the fragment
//! replicas. Every process builds the **identical** [`TcpChainSpec`]
//! layout — the spec serializes to `key=value` argv tokens — so the
//! process plan, the id space, and the scripted fault script agree
//! everywhere without further coordination.
//!
//! Addressing is explicit: the spec carries the full `host:port` map
//! ([`TcpChainSpec::addrs`], one entry per process). The parent fills it
//! in up front when the caller leaves it empty — it binds ephemeral
//! loopback listeners to allocate the ports, keeps its own, and hands the
//! map to every child as an `addrs=` argv token — so each child binds its
//! *own* entry and calls [`TcpFabric::establish`] directly, with no stdio
//! handshake. An explicit map is also what a respawned worker needs to
//! re-dial the survivors ([`TcpChainSpec::restart`]), and the first step
//! toward placing processes on different machines.

use crate::setups::{sharded_chain_builder, ShardedChainOptions};
use borealis_dpc::{FaultSpec, MetricsHub, SystemLayout, TraceEntry};
use borealis_runtime::{deploy_tcp, plan_processes, TcpFabric};
use borealis_types::{CreditPolicy, Duration, StreamId, Time, WireGauges};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::{Child, ChildStdout, Command, Stdio};

/// The sharded-chain deployment every process of a multi-process run
/// rebuilds from argv — one spec, one layout, `procs` processes.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpChainSpec {
    /// Shard fan-out of the work stage.
    pub shards: u32,
    /// Input rate per source (tuples/second); three sources.
    pub per_source_rate: f64,
    /// Wall-clock run length in milliseconds.
    pub wall_ms: u64,
    /// Script the mid-run crash of work-stage shard 1's replica 0 at
    /// t=1.5 s (the reference failover scenario).
    pub crash: bool,
    /// Credit window per link (`None` = unbounded).
    pub window: Option<u32>,
    /// Total process count (process 0 = sources + client).
    pub procs: u32,
    /// Worker-pool threads per process.
    pub workers: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Stop each source after this many tuples (`None` = unbounded).
    pub source_limit: Option<u64>,
    /// Explicit `host:port` listen address per process. Empty = the
    /// parent allocates loopback ports up front and passes the full map
    /// to every child via the `addrs=` argv token.
    pub addrs: Vec<String>,
    /// Root directory for per-node durable stores (`None` = no
    /// durability): checkpoints + input logs land under
    /// `<dir>/node-<id>/`, and a killed-then-respawned worker recovers
    /// its fragment state from there.
    pub durable_dir: Option<String>,
    /// Kill worker process `p` at `t = ms` into the run and respawn it
    /// (`rejoin=true`): the respawned process re-dials the mesh and its
    /// nodes restart from their durable stores.
    pub restart: Option<(u32, u64)>,
    /// Keep-alive period in milliseconds (stale timeout follows at 2.5×).
    /// Wall-clock equivalence tests stretch it so a scheduling hiccup on
    /// a starved host cannot trip spurious staleness.
    pub heartbeat_ms: u64,
}

impl Default for TcpChainSpec {
    fn default() -> Self {
        TcpChainSpec {
            shards: 2,
            per_source_rate: 100.0,
            wall_ms: 4000,
            crash: false,
            window: None,
            procs: 3,
            workers: 2,
            seed: 7,
            source_limit: None,
            addrs: Vec::new(),
            durable_dir: None,
            restart: None,
            heartbeat_ms: 100,
        }
    }
}

impl TcpChainSpec {
    /// Builds the full deployment description (identical in every
    /// process). `trace` enables the client arrival trace — only useful
    /// in process 0, where the client lives.
    pub fn layout(&self, trace: bool) -> (SystemLayout, StreamId) {
        let o = ShardedChainOptions {
            shards: self.shards,
            replication: 2,
            total_rate: self.per_source_rate * 3.0,
            per_node_delay: Duration::from_millis(500),
            light_cost: Duration::from_micros(2),
            work_cost: Duration::from_micros(40),
            source_limit: self.source_limit,
            heartbeat_period: Duration::from_millis(self.heartbeat_ms),
            seed: self.seed,
            ..Default::default()
        };
        let (mut builder, out) = sharded_chain_builder(&o);
        let metrics = MetricsHub::new();
        if trace {
            metrics.enable_trace(out);
        }
        builder = builder.metrics(metrics).workers(self.workers);
        if let Some(w) = self.window {
            builder = builder.credit_policy(CreditPolicy::Window(w));
        }
        if let Some(dir) = &self.durable_dir {
            // Background flusher: capture stays off the data path; the
            // snapshot objects are written by a dedicated thread.
            builder = builder.durability(dir, Duration::from_millis(250), true);
        }
        if self.crash {
            builder = builder.fault(FaultSpec::CrashReplica {
                frag: 1,
                shard: 1,
                replica: 0,
                from: Time::from_millis(1500),
                to: None,
            });
        }
        (builder.layout(), out)
    }

    /// Serializes the spec as `key=value` argv tokens for the child
    /// processes.
    pub fn to_args(&self) -> Vec<String> {
        let mut args = vec![
            format!("shards={}", self.shards),
            format!("rate={}", self.per_source_rate),
            format!("wall_ms={}", self.wall_ms),
            format!("crash={}", self.crash),
            format!("window={}", self.window.unwrap_or(0)),
            format!("procs={}", self.procs),
            format!("workers={}", self.workers),
            format!("seed={}", self.seed),
            format!("limit={}", self.source_limit.unwrap_or(0)),
            format!("hb={}", self.heartbeat_ms),
        ];
        if !self.addrs.is_empty() {
            args.push(format!("addrs={}", self.addrs.join(",")));
        }
        if let Some(dir) = &self.durable_dir {
            args.push(format!("durable={dir}"));
        }
        if let Some((p, ms)) = self.restart {
            args.push(format!("restart={p}@{ms}"));
        }
        args
    }

    /// Parses `key=value` tokens produced by [`TcpChainSpec::to_args`]
    /// (unknown keys are ignored, so launchers can carry extra tokens).
    pub fn parse_args<'a>(args: impl Iterator<Item = &'a str>) -> TcpChainSpec {
        let mut spec = TcpChainSpec::default();
        for arg in args {
            let Some((key, val)) = arg.split_once('=') else {
                continue;
            };
            match key {
                "shards" => spec.shards = val.parse().unwrap_or(spec.shards),
                "rate" => spec.per_source_rate = val.parse().unwrap_or(spec.per_source_rate),
                "wall_ms" => spec.wall_ms = val.parse().unwrap_or(spec.wall_ms),
                "crash" => spec.crash = val == "true",
                "window" => {
                    spec.window = match val.parse::<u32>() {
                        Ok(0) | Err(_) => None,
                        Ok(w) => Some(w),
                    }
                }
                "procs" => spec.procs = val.parse().unwrap_or(spec.procs),
                "workers" => spec.workers = val.parse().unwrap_or(spec.workers),
                "seed" => spec.seed = val.parse().unwrap_or(spec.seed),
                "limit" => {
                    spec.source_limit = match val.parse::<u64>() {
                        Ok(0) | Err(_) => None,
                        Ok(n) => Some(n),
                    }
                }
                "addrs" => {
                    spec.addrs = val
                        .split(',')
                        .filter(|a| !a.is_empty())
                        .map(str::to_string)
                        .collect();
                }
                "durable" => {
                    spec.durable_dir = (!val.is_empty()).then(|| val.to_string());
                }
                "hb" => spec.heartbeat_ms = val.parse().unwrap_or(spec.heartbeat_ms),
                "restart" => {
                    spec.restart = val.split_once('@').and_then(|(p, ms)| {
                        Some((p.parse::<u32>().ok()?, ms.parse::<u64>().ok()?))
                    });
                }
                _ => {}
            }
        }
        spec
    }
}

/// How the parent launches one worker process: `program prefix... proc=<i>
/// key=value...`. The example uses its own binary with a sentinel prefix;
/// the integration test uses the dedicated `tcp_node` binary.
#[derive(Debug, Clone)]
pub struct ChildCommand {
    /// Executable to spawn.
    pub program: String,
    /// Arguments placed before the `proc=` and spec tokens.
    pub prefix: Vec<String>,
}

/// What process 0 observed: the client's metrics, the loss accounting,
/// and the wire gauges of its own connections.
#[derive(Debug)]
pub struct TcpReport {
    /// Stable tuples delivered to the client.
    pub n_stable: u64,
    /// Tentative tuples delivered to the client.
    pub n_tentative: u64,
    /// Duplicate stable tuples (must be zero).
    pub dup: u64,
    /// Total messages lost to faults, summed across **all** processes
    /// (process 0's stats plus each child's reported `STATS` line).
    pub drops: u64,
    /// Wall-clock seconds measured around the run.
    pub elapsed: f64,
    /// Stable tuples per second.
    pub throughput: f64,
    /// Wire gauges of process 0's connections.
    pub wire: WireGauges,
    /// The client arrival trace, if requested.
    pub trace: Option<Vec<TraceEntry>>,
    /// Contents of every `last_recovery.marker` found under the durable
    /// root after the run — one entry per node that restarted from disk.
    pub recoveries: Vec<String>,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Reads every node store's `last_recovery.marker` under `root`.
fn read_recovery_markers(root: &str) -> Vec<String> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        let marker = e.path().join("last_recovery.marker");
        if let Ok(s) = std::fs::read_to_string(&marker) {
            found.push(s.trim().to_string());
        }
    }
    found.sort();
    found
}

/// Runs the multi-process deployment as process 0: allocates the address
/// map (unless the spec carries one), forks `procs - 1` children with the
/// full map on their argv, establishes the mesh, hosts the sources and
/// the client for `spec.wall_ms`, and reaps the children. With
/// [`TcpChainSpec::restart`] set, the named worker is killed hard
/// mid-run and respawned with `rejoin=true` — it re-dials the survivors
/// and (with [`TcpChainSpec::durable_dir`]) restarts its nodes from disk.
pub fn run_tcp_parent(spec: &TcpChainSpec, child: &ChildCommand) -> std::io::Result<TcpReport> {
    let mut spec = spec.clone();
    let (layout, out) = spec.layout(true);
    let plan = plan_processes(&layout, spec.procs);
    // Explicit address map: bind an ephemeral loopback listener per
    // process to allocate the ports, keep our own, free the children's
    // (each child rebinds its own entry; `SO_REUSEADDR` — set by the
    // standard library on Unix — also lets a respawned worker rebind).
    let listener = if spec.addrs.is_empty() {
        let mut listeners = Vec::new();
        for _ in 0..spec.procs {
            let l = TcpListener::bind("127.0.0.1:0")?;
            spec.addrs.push(l.local_addr()?.to_string());
            listeners.push(l);
        }
        listeners.into_iter().next().expect("procs >= 1")
    } else {
        if spec.addrs.len() != spec.procs as usize {
            return Err(invalid(format!(
                "address map must cover all {} processes: {:?}",
                spec.procs, spec.addrs
            )));
        }
        TcpListener::bind(spec.addrs[0].as_str())?
    };

    let spawn =
        |p: u32, wall_ms: u64, rejoin: bool| -> std::io::Result<(BufReader<ChildStdout>, Child)> {
            let mut s = spec.clone();
            s.wall_ms = wall_ms;
            let mut cmd = Command::new(&child.program);
            cmd.args(&child.prefix).arg(format!("proc={p}"));
            if rejoin {
                cmd.arg("rejoin=true");
            }
            cmd.args(s.to_args())
                .stdin(Stdio::null())
                .stdout(Stdio::piped());
            let mut c = cmd.spawn()?;
            let reader = BufReader::new(c.stdout.take().expect("child stdout piped"));
            Ok((reader, c))
        };
    let mut children: Vec<Option<(BufReader<ChildStdout>, Child)>> = Vec::new();
    for p in 1..spec.procs {
        children.push(Some(spawn(p, spec.wall_ms, false)?));
    }

    let fabric = TcpFabric::establish(0, listener, &spec.addrs, plan)?;
    let sys = deploy_tcp(layout, fabric);
    let started = std::time::Instant::now();
    match spec.restart {
        Some((victim, at_ms)) if victim >= 1 && victim < spec.procs => {
            let at_ms = at_ms.min(spec.wall_ms);
            sys.run_for(std::time::Duration::from_millis(at_ms));
            // Kill the worker hard (no Goodbye — survivors see a crash),
            // then respawn it as a rejoiner for the remaining wall time.
            if let Some((_, mut c)) = children[victim as usize - 1].take() {
                let _ = c.kill();
                let _ = c.wait();
            }
            children[victim as usize - 1] = Some(spawn(victim, spec.wall_ms - at_ms, true)?);
            sys.run_for(std::time::Duration::from_millis(spec.wall_ms - at_ms));
        }
        _ => sys.run_for(std::time::Duration::from_millis(spec.wall_ms)),
    }
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, n_tentative, dup, trace) = sys.metrics.with(out, |m| {
        (m.n_stable, m.n_tentative, m.dup_stable, m.trace.clone())
    });
    // Wire gauges before teardown, while the connections still count as
    // alive (the post-shutdown snapshot would report `conns == 0`).
    let wire = sys.wire_gauges();
    let stats = sys.shutdown();

    let mut drops = stats.total_drops();
    for (i, entry) in children.into_iter().enumerate() {
        let Some((mut reader, mut c)) = entry else {
            continue;
        };
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 || line.trim() == "DONE" {
                break;
            }
            // Fold each child's loss accounting into the cluster total.
            if line.starts_with("STATS ") {
                drops += line
                    .split_whitespace()
                    .find_map(|tok| tok.strip_prefix("drops="))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
        let status = c.wait()?;
        if !status.success() {
            return Err(invalid(format!("child {} exited with {status}", i + 1)));
        }
    }

    let recoveries = spec
        .durable_dir
        .as_deref()
        .map(read_recovery_markers)
        .unwrap_or_default();
    Ok(TcpReport {
        n_stable,
        n_tentative,
        dup,
        drops,
        elapsed,
        throughput: n_stable as f64 / elapsed,
        wire,
        trace,
        recoveries,
    })
}

/// Runs one worker process: binds its own entry of the explicit address
/// map, establishes the mesh (dial-lower/accept-higher for an initial
/// start, full re-dial for a `rejoin`), runs its share of the layout, and
/// prints a `STATS` line plus `DONE`.
pub fn run_tcp_child(my_proc: u32, spec: &TcpChainSpec, rejoin: bool) -> std::io::Result<()> {
    if spec.addrs.len() != spec.procs as usize {
        return Err(invalid(format!(
            "worker needs the full address map (addrs=h:p,...), got {:?}",
            spec.addrs
        )));
    }
    let (layout, _) = spec.layout(false);
    let plan = plan_processes(&layout, spec.procs);
    let listener = TcpListener::bind(spec.addrs[my_proc as usize].as_str())?;
    let fabric = if rejoin {
        TcpFabric::establish_rejoin(my_proc, listener, &spec.addrs, plan)?
    } else {
        TcpFabric::establish(my_proc, listener, &spec.addrs, plan)?
    };
    let sys = deploy_tcp(layout, fabric);
    sys.run_for(std::time::Duration::from_millis(spec.wall_ms));
    let stats = sys.shutdown();
    println!(
        "STATS delivered={} drops={} frames_sent={} frames_recv={} flushes={} grants_sent={}",
        stats.messages_delivered,
        stats.total_drops(),
        stats.wire.frames_sent,
        stats.wire.frames_recv,
        stats.wire.flushes,
        stats.wire.grants_sent,
    );
    println!("DONE");
    std::io::stdout().flush()?;
    Ok(())
}

/// Entry point shared by the `tcp_node` binary and the example's
/// self-exec child mode: parses `proc=<i>` (plus the optional
/// `rejoin=true` respawn flag) and the spec tokens from `args`, then runs
/// the worker process.
pub fn run_tcp_child_args<'a>(args: impl Iterator<Item = &'a str> + Clone) -> std::io::Result<()> {
    let my_proc = args
        .clone()
        .find_map(|a| a.strip_prefix("proc=").and_then(|v| v.parse::<u32>().ok()))
        .ok_or_else(|| invalid("missing proc=<i> argument".into()))?;
    let rejoin = args.clone().any(|a| a == "rejoin=true");
    let spec = TcpChainSpec::parse_args(args);
    run_tcp_child(my_proc, &spec, rejoin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_argv() {
        let spec = TcpChainSpec {
            shards: 4,
            per_source_rate: 2500.0,
            wall_ms: 8000,
            crash: true,
            window: Some(64),
            procs: 4,
            workers: 3,
            seed: 99,
            source_limit: Some(1000),
            addrs: vec!["127.0.0.1:4001".into(), "10.0.0.2:4002".into()],
            durable_dir: Some("/tmp/borealis-durable".into()),
            restart: Some((2, 1500)),
            heartbeat_ms: 250,
        };
        let args = spec.to_args();
        let parsed = TcpChainSpec::parse_args(args.iter().map(|s| s.as_str()));
        assert_eq!(parsed, spec);
        // Defaults survive empty/foreign tokens.
        let d = TcpChainSpec::parse_args(["proc=2", "noise"].into_iter());
        assert_eq!(d, TcpChainSpec::default());
    }

    #[test]
    fn layout_is_identical_across_rebuilds() {
        // Parent and children must derive the same id space and plan.
        let spec = TcpChainSpec::default();
        let (a, out_a) = spec.layout(false);
        let (b, out_b) = spec.layout(true);
        assert_eq!(out_a, out_b);
        assert_eq!(a.actors.len(), b.actors.len());
        assert_eq!(a.source_ids, b.source_ids);
        assert_eq!(a.fragment_replicas, b.fragment_replicas);
        assert_eq!(a.client, b.client);
        assert_eq!(
            plan_processes(&a, spec.procs),
            plan_processes(&b, spec.procs)
        );
    }
}
