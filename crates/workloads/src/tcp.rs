//! Multi-process launcher for the sharded chain workload over the socket
//! transport ([`borealis_runtime::tcp`]).
//!
//! One parent process (process 0: sources + client, where the metrics
//! live) forks `procs - 1` worker processes hosting the fragment
//! replicas. Every process builds the **identical** [`TcpChainSpec`]
//! layout — the spec serializes to `key=value` argv tokens — so the
//! process plan, the id space, and the scripted fault script agree
//! everywhere without further coordination.
//!
//! Port discovery is race-free: each child binds port 0 itself and prints
//! `PORT <p>` on stdout; the parent collects every port and writes one
//! `PORTS p0 p1 ...` line to each child's stdin; then everyone calls
//! [`TcpFabric::establish`], which doubles as a start barrier (no process
//! proceeds until its whole connection mesh is up).

use crate::setups::{sharded_chain_builder, ShardedChainOptions};
use borealis_dpc::{FaultSpec, MetricsHub, SystemLayout, TraceEntry};
use borealis_runtime::{deploy_tcp, plan_processes, TcpFabric};
use borealis_types::{CreditPolicy, Duration, StreamId, Time, WireGauges};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

/// The sharded-chain deployment every process of a multi-process run
/// rebuilds from argv — one spec, one layout, `procs` processes.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpChainSpec {
    /// Shard fan-out of the work stage.
    pub shards: u32,
    /// Input rate per source (tuples/second); three sources.
    pub per_source_rate: f64,
    /// Wall-clock run length in milliseconds.
    pub wall_ms: u64,
    /// Script the mid-run crash of work-stage shard 1's replica 0 at
    /// t=1.5 s (the reference failover scenario).
    pub crash: bool,
    /// Credit window per link (`None` = unbounded).
    pub window: Option<u32>,
    /// Total process count (process 0 = sources + client).
    pub procs: u32,
    /// Worker-pool threads per process.
    pub workers: usize,
    /// Determinism seed.
    pub seed: u64,
    /// Stop each source after this many tuples (`None` = unbounded).
    pub source_limit: Option<u64>,
}

impl Default for TcpChainSpec {
    fn default() -> Self {
        TcpChainSpec {
            shards: 2,
            per_source_rate: 100.0,
            wall_ms: 4000,
            crash: false,
            window: None,
            procs: 3,
            workers: 2,
            seed: 7,
            source_limit: None,
        }
    }
}

impl TcpChainSpec {
    /// Builds the full deployment description (identical in every
    /// process). `trace` enables the client arrival trace — only useful
    /// in process 0, where the client lives.
    pub fn layout(&self, trace: bool) -> (SystemLayout, StreamId) {
        let o = ShardedChainOptions {
            shards: self.shards,
            replication: 2,
            total_rate: self.per_source_rate * 3.0,
            per_node_delay: Duration::from_millis(500),
            light_cost: Duration::from_micros(2),
            work_cost: Duration::from_micros(40),
            source_limit: self.source_limit,
            seed: self.seed,
            ..Default::default()
        };
        let (mut builder, out) = sharded_chain_builder(&o);
        let metrics = MetricsHub::new();
        if trace {
            metrics.enable_trace(out);
        }
        builder = builder.metrics(metrics).workers(self.workers);
        if let Some(w) = self.window {
            builder = builder.credit_policy(CreditPolicy::Window(w));
        }
        if self.crash {
            builder = builder.fault(FaultSpec::CrashReplica {
                frag: 1,
                shard: 1,
                replica: 0,
                from: Time::from_millis(1500),
                to: None,
            });
        }
        (builder.layout(), out)
    }

    /// Serializes the spec as `key=value` argv tokens for the child
    /// processes.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            format!("shards={}", self.shards),
            format!("rate={}", self.per_source_rate),
            format!("wall_ms={}", self.wall_ms),
            format!("crash={}", self.crash),
            format!("window={}", self.window.unwrap_or(0)),
            format!("procs={}", self.procs),
            format!("workers={}", self.workers),
            format!("seed={}", self.seed),
            format!("limit={}", self.source_limit.unwrap_or(0)),
        ]
    }

    /// Parses `key=value` tokens produced by [`TcpChainSpec::to_args`]
    /// (unknown keys are ignored, so launchers can carry extra tokens).
    pub fn parse_args<'a>(args: impl Iterator<Item = &'a str>) -> TcpChainSpec {
        let mut spec = TcpChainSpec::default();
        for arg in args {
            let Some((key, val)) = arg.split_once('=') else {
                continue;
            };
            match key {
                "shards" => spec.shards = val.parse().unwrap_or(spec.shards),
                "rate" => spec.per_source_rate = val.parse().unwrap_or(spec.per_source_rate),
                "wall_ms" => spec.wall_ms = val.parse().unwrap_or(spec.wall_ms),
                "crash" => spec.crash = val == "true",
                "window" => {
                    spec.window = match val.parse::<u32>() {
                        Ok(0) | Err(_) => None,
                        Ok(w) => Some(w),
                    }
                }
                "procs" => spec.procs = val.parse().unwrap_or(spec.procs),
                "workers" => spec.workers = val.parse().unwrap_or(spec.workers),
                "seed" => spec.seed = val.parse().unwrap_or(spec.seed),
                "limit" => {
                    spec.source_limit = match val.parse::<u64>() {
                        Ok(0) | Err(_) => None,
                        Ok(n) => Some(n),
                    }
                }
                _ => {}
            }
        }
        spec
    }
}

/// How the parent launches one worker process: `program prefix... proc=<i>
/// key=value...`. The example uses its own binary with a sentinel prefix;
/// the integration test uses the dedicated `tcp_node` binary.
#[derive(Debug, Clone)]
pub struct ChildCommand {
    /// Executable to spawn.
    pub program: String,
    /// Arguments placed before the `proc=` and spec tokens.
    pub prefix: Vec<String>,
}

/// What process 0 observed: the client's metrics, the loss accounting,
/// and the wire gauges of its own connections.
#[derive(Debug)]
pub struct TcpReport {
    /// Stable tuples delivered to the client.
    pub n_stable: u64,
    /// Tentative tuples delivered to the client.
    pub n_tentative: u64,
    /// Duplicate stable tuples (must be zero).
    pub dup: u64,
    /// Total messages lost to faults, summed across **all** processes
    /// (process 0's stats plus each child's reported `STATS` line).
    pub drops: u64,
    /// Wall-clock seconds measured around the run.
    pub elapsed: f64,
    /// Stable tuples per second.
    pub throughput: f64,
    /// Wire gauges of process 0's connections.
    pub wire: WireGauges,
    /// The client arrival trace, if requested.
    pub trace: Option<Vec<TraceEntry>>,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Runs the multi-process deployment as process 0: forks `procs - 1`
/// children with `child`, exchanges listen ports over their stdio,
/// establishes the mesh, hosts the sources and the client for
/// `spec.wall_ms`, and reaps the children.
pub fn run_tcp_parent(spec: &TcpChainSpec, child: &ChildCommand) -> std::io::Result<TcpReport> {
    let (layout, out) = spec.layout(true);
    let plan = plan_processes(&layout, spec.procs);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let mut ports = vec![0u16; spec.procs as usize];
    ports[0] = listener.local_addr()?.port();

    let mut children: Vec<Child> = Vec::new();
    for p in 1..spec.procs {
        let mut cmd = Command::new(&child.program);
        cmd.args(&child.prefix)
            .arg(format!("proc={p}"))
            .args(spec.to_args())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        children.push(cmd.spawn()?);
    }
    // Every child binds its own listener and reports the port.
    let mut outputs = Vec::new();
    for (i, c) in children.iter_mut().enumerate() {
        let mut reader = BufReader::new(c.stdout.take().expect("child stdout piped"));
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let port = line
            .trim()
            .strip_prefix("PORT ")
            .and_then(|v| v.parse::<u16>().ok())
            .ok_or_else(|| invalid(format!("child {} bad port line: {line:?}", i + 1)))?;
        ports[i + 1] = port;
        outputs.push(reader);
    }
    // Broadcast the full port map; the children then establish.
    let port_line = format!(
        "PORTS {}\n",
        ports
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    for c in &mut children {
        c.stdin
            .as_mut()
            .expect("child stdin piped")
            .write_all(port_line.as_bytes())?;
    }

    let fabric = TcpFabric::establish(0, listener, &ports, plan)?;
    let sys = deploy_tcp(layout, fabric);
    let started = std::time::Instant::now();
    sys.run_for(std::time::Duration::from_millis(spec.wall_ms));
    let elapsed = started.elapsed().as_secs_f64();
    let (n_stable, n_tentative, dup, trace) = sys.metrics.with(out, |m| {
        (m.n_stable, m.n_tentative, m.dup_stable, m.trace.clone())
    });
    // Wire gauges before teardown, while the connections still count as
    // alive (the post-shutdown snapshot would report `conns == 0`).
    let wire = sys.wire_gauges();
    let stats = sys.shutdown();

    let mut drops = stats.total_drops();
    for (i, (mut reader, mut c)) in outputs.into_iter().zip(children).enumerate() {
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 || line.trim() == "DONE" {
                break;
            }
            // Fold each child's loss accounting into the cluster total.
            if line.starts_with("STATS ") {
                drops += line
                    .split_whitespace()
                    .find_map(|tok| tok.strip_prefix("drops="))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
            }
        }
        let status = c.wait()?;
        if !status.success() {
            return Err(invalid(format!("child {} exited with {status}", i + 1)));
        }
    }

    Ok(TcpReport {
        n_stable,
        n_tentative,
        dup,
        drops,
        elapsed,
        throughput: n_stable as f64 / elapsed,
        wire,
        trace,
    })
}

/// Runs one worker process: binds a listener, reports the port on stdout
/// (`PORT <p>`), reads the full port map from stdin (`PORTS p0 p1 ...`),
/// establishes the mesh, runs its share of the layout, and prints a
/// `STATS` line plus `DONE`.
pub fn run_tcp_child(my_proc: u32, spec: &TcpChainSpec) -> std::io::Result<()> {
    let (layout, _) = spec.layout(false);
    let plan = plan_processes(&layout, spec.procs);
    let listener = TcpListener::bind("127.0.0.1:0")?;
    println!("PORT {}", listener.local_addr()?.port());
    std::io::stdout().flush()?;
    let mut line = String::new();
    std::io::stdin().read_line(&mut line)?;
    let ports = line
        .trim()
        .strip_prefix("PORTS ")
        .map(|rest| {
            rest.split_whitespace()
                .filter_map(|p| p.parse::<u16>().ok())
                .collect::<Vec<u16>>()
        })
        .filter(|p| p.len() == spec.procs as usize)
        .ok_or_else(|| invalid(format!("bad port map line: {line:?}")))?;

    let fabric = TcpFabric::establish(my_proc, listener, &ports, plan)?;
    let sys = deploy_tcp(layout, fabric);
    sys.run_for(std::time::Duration::from_millis(spec.wall_ms));
    let stats = sys.shutdown();
    println!(
        "STATS delivered={} drops={} frames_sent={} frames_recv={} flushes={} grants_sent={}",
        stats.messages_delivered,
        stats.total_drops(),
        stats.wire.frames_sent,
        stats.wire.frames_recv,
        stats.wire.flushes,
        stats.wire.grants_sent,
    );
    println!("DONE");
    std::io::stdout().flush()?;
    Ok(())
}

/// Entry point shared by the `tcp_node` binary and the example's
/// self-exec child mode: parses `proc=<i>` plus the spec tokens from
/// `args` and runs the worker process.
pub fn run_tcp_child_args<'a>(args: impl Iterator<Item = &'a str> + Clone) -> std::io::Result<()> {
    let my_proc = args
        .clone()
        .find_map(|a| a.strip_prefix("proc=").and_then(|v| v.parse::<u32>().ok()))
        .ok_or_else(|| invalid("missing proc=<i> argument".into()))?;
    let spec = TcpChainSpec::parse_args(args);
    run_tcp_child(my_proc, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_argv() {
        let spec = TcpChainSpec {
            shards: 4,
            per_source_rate: 2500.0,
            wall_ms: 8000,
            crash: true,
            window: Some(64),
            procs: 4,
            workers: 3,
            seed: 99,
            source_limit: Some(1000),
        };
        let args = spec.to_args();
        let parsed = TcpChainSpec::parse_args(args.iter().map(|s| s.as_str()));
        assert_eq!(parsed, spec);
        // Defaults survive empty/foreign tokens.
        let d = TcpChainSpec::parse_args(["proc=2", "noise"].into_iter());
        assert_eq!(d, TcpChainSpec::default());
    }

    #[test]
    fn layout_is_identical_across_rebuilds() {
        // Parent and children must derive the same id space and plan.
        let spec = TcpChainSpec::default();
        let (a, out_a) = spec.layout(false);
        let (b, out_b) = spec.layout(true);
        assert_eq!(out_a, out_b);
        assert_eq!(a.actors.len(), b.actors.len());
        assert_eq!(a.source_ids, b.source_ids);
        assert_eq!(a.fragment_replicas, b.fragment_replicas);
        assert_eq!(a.client, b.client);
        assert_eq!(
            plan_processes(&a, spec.procs),
            plan_processes(&b, spec.procs)
        );
    }
}
