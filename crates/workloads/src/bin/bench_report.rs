//! Per-PR benchmark regression gate (ROADMAP "wall-clock benchmark suite").
//!
//! Reads every `BENCH_PR*.json` at the repository root (or the directory
//! given as the first argument), prints the throughput trajectory across
//! PRs, and exits non-zero if the newest PR's reference stable-throughput
//! regressed more than 15% against the previous PR that recorded it.
//!
//! Scope: the `BENCH_PR*.json` files are recorded by hand from the runs
//! their `command` fields name (CI re-runs `realtime_pipeline` but does
//! not rewrite the files), so this gate checks the *recorded* trajectory —
//! it catches a PR that honestly records a regression, and forces the
//! conversation when someone must record one; it cannot catch numbers
//! that were never re-measured. CI runs it as `cargo run --release -p
//! borealis-workloads --bin bench_report`.

use borealis_workloads::benchjson::{
    regression, render_trajectory, saturation_regression, trajectory,
};
use std::process::ExitCode;

const TOLERANCE: f64 = 0.15;

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut files: Vec<(String, String)> = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench_report: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_PR") && name.ends_with(".json") {
            match std::fs::read_to_string(entry.path()) {
                Ok(contents) => files.push((name, contents)),
                Err(e) => {
                    eprintln!("bench_report: cannot read {name}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if files.is_empty() {
        eprintln!("bench_report: no BENCH_PR*.json files under {dir}");
        return ExitCode::FAILURE;
    }
    let points = match trajectory(&files) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench_report: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("benchmark trajectory (reference stable tuples/s per PR)\n");
    print!("{}", render_trajectory(&points));
    let mut failed = false;
    if let Some((prev, last)) = regression(&points, TOLERANCE) {
        eprintln!(
            "\nREGRESSION: PR {} records {:.0} stable tuples/s, more than {:.0}% below \
             PR {}'s {:.0}",
            last.pr,
            last.rate.unwrap_or(0.0),
            TOLERANCE * 100.0,
            prev.pr,
            prev.rate.unwrap_or(0.0),
        );
        failed = true;
    }
    if let Some((prev, last)) = saturation_regression(&points, TOLERANCE) {
        eprintln!(
            "\nREGRESSION: PR {} records a saturation capacity of {:.0} stable tuples/s, \
             more than {:.0}% below PR {}'s {:.0}",
            last.pr,
            last.saturation.unwrap_or(0.0),
            TOLERANCE * 100.0,
            prev.pr,
            prev.saturation.unwrap_or(0.0),
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("\nno regression beyond {:.0}% tolerance", TOLERANCE * 100.0);
        ExitCode::SUCCESS
    }
}
