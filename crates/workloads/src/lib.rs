//! # borealis-workloads
//!
//! Workload generators, deployment setups, and experiment runners
//! reproducing every table and figure of the paper's evaluation (§5–§7).
//! The `borealis-bench` crate wraps these runners in `cargo bench` targets;
//! the examples and integration tests reuse the same setups.

#![warn(missing_docs)]

pub mod benchjson;
pub mod experiments;
pub mod report;
pub mod setups;
pub mod tcp;

pub use experiments::{
    run_chain, run_delay_assignment, run_fig11, run_fig13, run_switchover, run_table3, run_table4,
    run_table5, AvailabilityRow, ChainRow, Fig11Result, OverheadRow, SwitchoverResult,
};
pub use report::{render_availability, render_chain, render_fig11, render_overhead, TextTable};
pub use setups::{
    chain_builder, chain_system, overhead_system, scale_grid_actors, scale_grid_builder,
    scale_grid_fragments, scale_grid_offered, sharded_chain_builder, sharded_chain_system,
    single_node_system, ChainOptions, OverheadOptions, PolicyVariant, ScaleOptions,
    ShardedChainOptions, SingleNodeOptions, DISTRIBUTED_VARIANTS, SINGLE_NODE_OUT, VARIANTS,
};
pub use tcp::{
    run_tcp_child, run_tcp_child_args, run_tcp_parent, ChildCommand, TcpChainSpec, TcpReport,
};
