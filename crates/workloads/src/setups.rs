//! Deployment setups matching the paper's experimental configurations
//! (Figs. 10, 12, 14, 22).

use borealis_diagram::{
    plan, DelayAssignment, Deployment, DiagramBuilder, DpcConfig, FragmentInput, FragmentOutput,
    FragmentPlan, LogicalOp, PhysOp, PhysicalPlan, StreamOrigin,
};
use borealis_dpc::{
    ClientTuning, MetricsHub, NodeTuning, RunningSystem, SourceConfig, SystemBuilder, ValueGen,
};
use borealis_ops::{DelayMode, OperatorSpec, SJoinSpec, SUnionConfig};
use borealis_types::{Duration, Expr, FragmentId, StreamId};

/// The six §6.1 policy variants (UP_FAILURE mode & STABILIZATION mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyVariant {
    /// Display name matching the paper ("Delay & Process" etc.).
    pub name: &'static str,
    /// Mode during UP_FAILURE.
    pub failure: DelayMode,
    /// Mode during STABILIZATION.
    pub stabilization: DelayMode,
}

/// All six §6.1 variants, in the paper's legend order.
pub const VARIANTS: [PolicyVariant; 6] = [
    PolicyVariant {
        name: "Process & Process",
        failure: DelayMode::Process,
        stabilization: DelayMode::Process,
    },
    PolicyVariant {
        name: "Delay & Process",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Process,
    },
    PolicyVariant {
        name: "Process & Delay",
        failure: DelayMode::Process,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Delay & Delay",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Process & Suspend",
        failure: DelayMode::Process,
        stabilization: DelayMode::Suspend,
    },
    PolicyVariant {
        name: "Delay & Suspend",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Suspend,
    },
];

/// The two variants §6.2 compares in distributed settings.
pub const DISTRIBUTED_VARIANTS: [PolicyVariant; 2] = [
    PolicyVariant {
        name: "Delay & Delay",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Process & Process",
        failure: DelayMode::Process,
        stabilization: DelayMode::Process,
    },
];

/// Options for the single-node setups (Figs. 10 and 12).
#[derive(Debug, Clone)]
pub struct SingleNodeOptions {
    /// Replicas of the processing node (1 for Fig. 11, 2 for Table III and
    /// Fig. 13).
    pub replication: usize,
    /// Aggregate input rate across the three streams (tuples/second).
    pub total_rate: f64,
    /// The application's incremental latency budget `X` (the per-SUnion
    /// detection delay is `0.9 X`, as in the paper's implementation).
    pub delay: Duration,
    /// Availability/consistency policy.
    pub variant: PolicyVariant,
    /// Include the SJoin stage (Table III / Fig. 12 setup).
    pub with_join: bool,
    /// Per-tuple CPU cost of the nodes.
    pub per_tuple_cost: Duration,
    /// Determinism seed.
    pub seed: u64,
    /// Record the full client arrival trace.
    pub trace: bool,
}

impl Default for SingleNodeOptions {
    fn default() -> Self {
        SingleNodeOptions {
            replication: 2,
            total_rate: 900.0,
            delay: Duration::from_secs(3),
            variant: VARIANTS[0],
            with_join: false,
            per_tuple_cost: Duration::from_micros(40),
            seed: 42,
            trace: false,
        }
    }
}

/// The three source streams of the single-node setups.
pub fn single_node_sources() -> [StreamId; 3] {
    [StreamId(0), StreamId(1), StreamId(2)]
}

/// Output stream of the single-node setups.
pub const SINGLE_NODE_OUT: StreamId = StreamId(3);

/// Builds the Fig. 12 fragment by hand: one SUnion over the three input
/// streams, optionally an SJoin with a 100-tuple state, and an SOutput.
fn single_node_plan(o: &SingleNodeOptions) -> PhysicalPlan {
    let detect = Duration::from_micros((o.delay.as_micros() as f64 * 0.9) as u64);
    let sunion = SUnionConfig {
        n_inputs: 3,
        bucket: Duration::from_millis(100),
        detect_delay: detect,
        delay_budget: detect,
        tentative_wait: Duration::from_millis(300),
        failure_mode: o.variant.failure,
        stabilization_mode: o.variant.stabilization,
        is_input: true,
    };
    let mut ops = vec![PhysOp {
        spec: OperatorSpec::SUnion(sunion),
        fanout: Vec::new(),
        external_output: None,
    }];
    let mut last = 0usize;
    if o.with_join {
        // Streams tagged origin 0 join against streams 1 and 2 on the key
        // attribute, within a 100 ms window, keeping at most 100 tuples per
        // side (the paper's "SJoin with a 100-tuple state size").
        ops.push(PhysOp {
            spec: OperatorSpec::SJoin(SJoinSpec {
                window: Duration::from_millis(100),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: Some(100),
                left_split: 1,
            }),
            fanout: Vec::new(),
            external_output: None,
        });
        ops[last].fanout.push((1, 0));
        last = 1;
    }
    let so = ops.len();
    ops.push(PhysOp {
        spec: OperatorSpec::SOutput,
        fanout: Vec::new(),
        external_output: Some(SINGLE_NODE_OUT),
    });
    ops[last].fanout.push((so, 0));
    let inputs = (0..3)
        .map(|i| FragmentInput {
            stream: StreamId(i),
            target: 0,
            port: i as usize,
            origin: StreamOrigin::Source,
        })
        .collect();
    PhysicalPlan {
        fragments: vec![FragmentPlan {
            id: FragmentId(0),
            ops,
            inputs,
            outputs: vec![FragmentOutput {
                stream: SINGLE_NODE_OUT,
                op: so,
            }],
        }],
        max_sunion_depth: 1,
        per_sunion_delay: detect,
    }
}

/// Builds the single-node system (Figs. 10/12): three sources feeding a
/// (possibly replicated) node, client watching the output.
pub fn single_node_system(o: &SingleNodeOptions) -> RunningSystem {
    let p = single_node_plan(o);
    let rate = o.total_rate / 3.0;
    let metrics = MetricsHub::new();
    if o.trace {
        metrics.enable_trace(SINGLE_NODE_OUT);
    }
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .replication(o.replication)
        .client_streams(vec![SINGLE_NODE_OUT])
        .metrics(metrics)
        .node_tuning(NodeTuning {
            per_tuple_cost: o.per_tuple_cost,
            ..NodeTuning::default()
        })
        .client_tuning(ClientTuning::default());
    for s in single_node_sources() {
        builder = builder.source(SourceConfig {
            stream: s,
            rate,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: if o.with_join {
                ValueGen::Keyed { keys: 25 }
            } else {
                ValueGen::Seq
            },
        });
    }
    builder.build()
}

/// Options for the chain setups (Fig. 14).
#[derive(Debug, Clone)]
pub struct ChainOptions {
    /// Number of processing nodes in sequence (1–4 in the paper).
    pub depth: usize,
    /// Aggregate input rate (500 tuples/s in §6.2).
    pub total_rate: f64,
    /// Per-SUnion delay `D` under uniform assignment (2 s in §6.2), or the
    /// full-X effective value under [`DelayAssignment::Full`].
    pub per_node_delay: Duration,
    /// Delay assignment strategy (§6.3).
    pub assignment: DelayAssignment,
    /// Availability/consistency policy.
    pub variant: PolicyVariant,
    /// Per-tuple CPU cost of the nodes.
    pub per_tuple_cost: Duration,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            depth: 4,
            total_rate: 500.0,
            per_node_delay: Duration::from_secs(2),
            assignment: DelayAssignment::Uniform,
            variant: DISTRIBUTED_VARIANTS[1],
            per_tuple_cost: Duration::from_micros(40),
            seed: 42,
        }
    }
}

/// Builds the Fig. 14 chain deployment description: three sources → Union
/// (node 1) → identity Maps (nodes 2..depth) → client. Every node pair is
/// replicated.
///
/// Returns the configured builder (script faults / pick a runtime on it)
/// and the client-visible output stream; [`chain_system`] is the
/// simulator-deployed shorthand.
pub fn chain_builder(o: &ChainOptions) -> (SystemBuilder, StreamId) {
    assert!(o.depth >= 1);
    let mut b = DiagramBuilder::new();
    let s1 = b.source("s1");
    let s2 = b.source("s2");
    let s3 = b.source("s3");
    let mut last = b.add("stage1", LogicalOp::Union, &[s1, s2, s3]);
    let mut assignment = vec![FragmentId(0)];
    for stage in 1..o.depth {
        last = b.add(
            &format!("stage{}", stage + 1),
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[last],
        );
        assignment.push(FragmentId(stage as u32));
    }
    b.output(last);
    let d = b.build().expect("chain diagram is valid");
    let dep = Deployment::explicit(assignment);
    // Under Uniform, `total_delay` is per-node-delay × depth so each SUnion
    // receives `0.9 × per_node_delay` (the paper's 0.9 D safety margin).
    let cfg = DpcConfig {
        bucket: Duration::from_millis(100),
        total_delay: Duration::from_micros(o.per_node_delay.as_micros() * o.depth as u64),
        safety: 0.9,
        assignment: o.assignment,
        failure_mode: o.variant.failure,
        stabilization_mode: o.variant.stabilization,
        tentative_wait: Duration::from_millis(300),
    };
    let p = plan(&d, &dep, &cfg).expect("chain plan is valid");
    let metrics = MetricsHub::new();
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .replication(2)
        .client_streams(vec![last])
        .metrics(metrics)
        .node_tuning(NodeTuning {
            per_tuple_cost: o.per_tuple_cost,
            ..NodeTuning::default()
        });
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig {
            stream: s,
            rate: o.total_rate / 3.0,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
        });
    }
    (builder, last)
}

/// Builds the Fig. 14 chain and deploys it under the simulator.
pub fn chain_system(o: &ChainOptions) -> (RunningSystem, StreamId) {
    let (builder, out) = chain_builder(o);
    (builder.build(), out)
}

/// Options for the serialization-overhead setup (Fig. 22, Tables IV & V).
#[derive(Debug, Clone)]
pub struct OverheadOptions {
    /// SUnion bucket size; `None` runs the plain-Union baseline with no
    /// boundary tuples at all (the tables' 0 column).
    pub bucket: Option<Duration>,
    /// Source boundary interval (ignored for the baseline).
    pub boundary_interval: Duration,
    /// Input rate (1 tuple per 10 ms in §7).
    pub rate: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for OverheadOptions {
    fn default() -> Self {
        OverheadOptions {
            bucket: Some(Duration::from_millis(10)),
            boundary_interval: Duration::from_millis(10),
            rate: 100.0,
            seed: 42,
        }
    }
}

/// Output stream of the overhead setup.
pub const OVERHEAD_OUT: StreamId = StreamId(1);

/// Builds the Fig. 22 setup: one source → (SUnion + SOutput | plain pass-
/// through) → client.
pub fn overhead_system(o: &OverheadOptions) -> RunningSystem {
    let input = StreamId(0);
    let ops = match o.bucket {
        Some(bucket) => {
            let sunion = SUnionConfig {
                n_inputs: 1,
                bucket,
                detect_delay: Duration::from_secs(3600), // never fail here
                delay_budget: Duration::from_secs(3600),
                tentative_wait: Duration::from_millis(300),
                failure_mode: DelayMode::Process,
                stabilization_mode: DelayMode::Process,
                is_input: true,
            };
            vec![
                PhysOp {
                    spec: OperatorSpec::SUnion(sunion),
                    fanout: vec![(1, 0)],
                    external_output: None,
                },
                PhysOp {
                    spec: OperatorSpec::SOutput,
                    fanout: Vec::new(),
                    external_output: Some(OVERHEAD_OUT),
                },
            ]
        }
        None => vec![PhysOp {
            // Baseline without fault tolerance: a pass-through Map with no
            // serialization (Fig. 22(b)).
            spec: OperatorSpec::Map {
                outputs: vec![Expr::field(0)],
            },
            fanout: Vec::new(),
            external_output: Some(OVERHEAD_OUT),
        }],
    };
    let out_op = ops.len() - 1;
    let p = PhysicalPlan {
        fragments: vec![FragmentPlan {
            id: FragmentId(0),
            ops,
            inputs: vec![FragmentInput {
                stream: input,
                target: 0,
                port: 0,
                origin: StreamOrigin::Source,
            }],
            outputs: vec![FragmentOutput {
                stream: OVERHEAD_OUT,
                op: out_op,
            }],
        }],
        max_sunion_depth: 1,
        per_sunion_delay: Duration::from_secs(3600),
    };
    SystemBuilder::new(o.seed, Duration::from_millis(1))
        .source(SourceConfig {
            stream: input,
            rate: o.rate,
            boundary_interval: if o.bucket.is_some() {
                o.boundary_interval
            } else {
                Duration::ZERO
            },
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
        })
        .plan(p)
        .replication(1)
        .client_streams(vec![OVERHEAD_OUT])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Time;

    #[test]
    fn single_node_system_runs_clean() {
        let mut sys = single_node_system(&SingleNodeOptions::default());
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(SINGLE_NODE_OUT, |m| {
            assert!(m.n_stable > 1000);
            assert_eq!(m.n_tentative, 0);
        });
    }

    #[test]
    fn join_variant_produces_matches() {
        let o = SingleNodeOptions {
            with_join: true,
            ..Default::default()
        };
        let mut sys = single_node_system(&o);
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(SINGLE_NODE_OUT, |m| {
            assert!(m.n_stable > 0, "join must produce matches");
            assert_eq!(m.n_tentative, 0);
        });
    }

    #[test]
    fn chain_depth_three_runs_clean() {
        let (mut sys, out) = chain_system(&ChainOptions {
            depth: 3,
            ..Default::default()
        });
        sys.run_until(Time::from_secs(6));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 1500, "stable = {}", m.n_stable);
            assert_eq!(m.n_tentative, 0);
            assert_eq!(m.dup_stable, 0);
        });
    }

    #[test]
    fn overhead_baseline_has_tiny_latency() {
        let mut sys = overhead_system(&OverheadOptions {
            bucket: None,
            ..Default::default()
        });
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(OVERHEAD_OUT, |m| {
            assert!(m.n_stable > 400);
            assert!(m.lat_avg() < borealis_types::Duration::from_millis(20));
        });
    }
}
