//! Deployment setups matching the paper's experimental configurations
//! (Figs. 10, 12, 14, 22), expressed on the `QueryBuilder` /
//! `DeploymentSpec` surface, plus the key-partitioned sharded chain used
//! by the scaling benchmarks.

use borealis_diagram::{
    plan_deployment, DelayAssignment, DeploymentSpec, DpcConfig, FragmentSpec, JoinSpec,
    Protection, QueryBuilder,
};
use borealis_dpc::{
    ClientTuning, MetricsHub, NodeTuning, RunningSystem, SourceConfig, SystemBuilder, ValueGen,
};
use borealis_ops::DelayMode;
use borealis_types::{Duration, Expr, StreamId};

/// The six §6.1 policy variants (UP_FAILURE mode & STABILIZATION mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyVariant {
    /// Display name matching the paper ("Delay & Process" etc.).
    pub name: &'static str,
    /// Mode during UP_FAILURE.
    pub failure: DelayMode,
    /// Mode during STABILIZATION.
    pub stabilization: DelayMode,
}

/// All six §6.1 variants, in the paper's legend order.
pub const VARIANTS: [PolicyVariant; 6] = [
    PolicyVariant {
        name: "Process & Process",
        failure: DelayMode::Process,
        stabilization: DelayMode::Process,
    },
    PolicyVariant {
        name: "Delay & Process",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Process,
    },
    PolicyVariant {
        name: "Process & Delay",
        failure: DelayMode::Process,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Delay & Delay",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Process & Suspend",
        failure: DelayMode::Process,
        stabilization: DelayMode::Suspend,
    },
    PolicyVariant {
        name: "Delay & Suspend",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Suspend,
    },
];

/// The two variants §6.2 compares in distributed settings.
pub const DISTRIBUTED_VARIANTS: [PolicyVariant; 2] = [
    PolicyVariant {
        name: "Delay & Delay",
        failure: DelayMode::Delay,
        stabilization: DelayMode::Delay,
    },
    PolicyVariant {
        name: "Process & Process",
        failure: DelayMode::Process,
        stabilization: DelayMode::Process,
    },
];

/// Options for the single-node setups (Figs. 10 and 12).
#[derive(Debug, Clone)]
pub struct SingleNodeOptions {
    /// Replicas of the processing node (1 for Fig. 11, 2 for Table III and
    /// Fig. 13).
    pub replication: usize,
    /// Aggregate input rate across the three streams (tuples/second).
    pub total_rate: f64,
    /// The application's incremental latency budget `X` (the per-SUnion
    /// detection delay is `0.9 X`, as in the paper's implementation).
    pub delay: Duration,
    /// Availability/consistency policy.
    pub variant: PolicyVariant,
    /// Include the SJoin stage (Table III / Fig. 12 setup).
    pub with_join: bool,
    /// Per-tuple CPU cost of the nodes.
    pub per_tuple_cost: Duration,
    /// Determinism seed.
    pub seed: u64,
    /// Record the full client arrival trace.
    pub trace: bool,
}

impl Default for SingleNodeOptions {
    fn default() -> Self {
        SingleNodeOptions {
            replication: 2,
            total_rate: 900.0,
            delay: Duration::from_secs(3),
            variant: VARIANTS[0],
            with_join: false,
            per_tuple_cost: Duration::from_micros(40),
            seed: 42,
            trace: false,
        }
    }
}

/// The three source streams of the single-node setups.
pub fn single_node_sources() -> [StreamId; 3] {
    [StreamId(0), StreamId(1), StreamId(2)]
}

/// Output stream of the single-node setups.
pub const SINGLE_NODE_OUT: StreamId = StreamId(3);

/// Builds the single-node system (Figs. 10/12): three sources feeding a
/// (possibly replicated) node, client watching the output. The Fig. 12
/// variant joins stream 1 against streams 2 and 3 through a single
/// three-input SUnion (an SJoin with a 100-tuple state).
pub fn single_node_system(o: &SingleNodeOptions) -> RunningSystem {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let out = if o.with_join {
        q.join_many(
            "joined",
            s1,
            &[s2, s3],
            JoinSpec {
                window: Duration::from_millis(100),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: Some(100),
            },
        )
    } else {
        q.union("merged", &[s1, s2, s3])
    };
    q.output(out);
    let d = q.build().expect("single-node diagram is valid");
    debug_assert_eq!(out.id(), SINGLE_NODE_OUT);

    let cfg = DpcConfig {
        bucket: Duration::from_millis(100),
        total_delay: o.delay,
        safety: 0.9,
        assignment: DelayAssignment::Uniform,
        failure_mode: o.variant.failure,
        stabilization_mode: o.variant.stabilization,
        tentative_wait: Duration::from_millis(300),
        protection: Protection::Dpc,
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(o.replication), &cfg)
        .expect("single-node plan is valid");

    let rate = o.total_rate / 3.0;
    let metrics = MetricsHub::new();
    if o.trace {
        metrics.enable_trace(SINGLE_NODE_OUT);
    }
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![SINGLE_NODE_OUT])
        .metrics(metrics)
        .node_tuning(NodeTuning {
            per_tuple_cost: o.per_tuple_cost,
            ..NodeTuning::default()
        })
        .client_tuning(ClientTuning::default());
    for s in single_node_sources() {
        builder = builder.source(SourceConfig {
            stream: s,
            rate,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: if o.with_join {
                ValueGen::Keyed { keys: 25 }
            } else {
                ValueGen::Seq
            },
            limit: None,
        });
    }
    builder.build()
}

/// Options for the chain setups (Fig. 14).
#[derive(Debug, Clone)]
pub struct ChainOptions {
    /// Number of processing nodes in sequence (1–4 in the paper).
    pub depth: usize,
    /// Aggregate input rate (500 tuples/s in §6.2).
    pub total_rate: f64,
    /// Per-SUnion delay `D` under uniform assignment (2 s in §6.2), or the
    /// full-X effective value under [`DelayAssignment::Full`].
    pub per_node_delay: Duration,
    /// Delay assignment strategy (§6.3).
    pub assignment: DelayAssignment,
    /// Availability/consistency policy.
    pub variant: PolicyVariant,
    /// Per-tuple CPU cost of the nodes.
    pub per_tuple_cost: Duration,
    /// Keep-alive period for nodes and the client (stale timeout follows
    /// at 2.5×, preserving the paper's 100 ms/250 ms ratio). Wall-clock
    /// equivalence tests stretch it so a scheduling hiccup on a starved
    /// host cannot trip spurious staleness.
    pub heartbeat_period: Duration,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for ChainOptions {
    fn default() -> Self {
        ChainOptions {
            depth: 4,
            total_rate: 500.0,
            per_node_delay: Duration::from_secs(2),
            assignment: DelayAssignment::Uniform,
            variant: DISTRIBUTED_VARIANTS[1],
            per_tuple_cost: Duration::from_micros(40),
            heartbeat_period: Duration::from_millis(100),
            seed: 42,
        }
    }
}

/// Builds the Fig. 14 chain deployment description: three sources → Union
/// (node 1) → identity Maps (nodes 2..depth) → client. Every node pair is
/// replicated.
///
/// Returns the configured builder (script faults / pick a runtime on it)
/// and the client-visible output stream; [`chain_system`] is the
/// simulator-deployed shorthand.
pub fn chain_builder(o: &ChainOptions) -> (SystemBuilder, StreamId) {
    assert!(o.depth >= 1);
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let mut last = q.union("stage1", &[s1, s2, s3]);
    let mut spec = DeploymentSpec::new().fragment(FragmentSpec::named("stage1").op("stage1"));
    for stage in 1..o.depth {
        let name = format!("stage{}", stage + 1);
        last = q.map(&name, last, vec![Expr::field(0)]);
        spec = spec.fragment(FragmentSpec::named(&name).op(&name));
    }
    q.output(last);
    let d = q.build().expect("chain diagram is valid");
    // Under Uniform, `total_delay` is per-node-delay × depth so each SUnion
    // receives `0.9 × per_node_delay` (the paper's 0.9 D safety margin).
    let cfg = DpcConfig {
        bucket: Duration::from_millis(100),
        total_delay: Duration::from_micros(o.per_node_delay.as_micros() * o.depth as u64),
        safety: 0.9,
        assignment: o.assignment,
        failure_mode: o.variant.failure,
        stabilization_mode: o.variant.stabilization,
        tentative_wait: Duration::from_millis(300),
        protection: Protection::Dpc,
    };
    let p = plan_deployment(&d, &spec, &cfg).expect("chain plan is valid");
    let metrics = MetricsHub::new();
    let stale = Duration::from_micros(o.heartbeat_period.as_micros() * 5 / 2);
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![last.id()])
        .metrics(metrics)
        .node_tuning(NodeTuning {
            per_tuple_cost: o.per_tuple_cost,
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..NodeTuning::default()
        })
        .client_tuning(ClientTuning {
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..ClientTuning::default()
        });
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig {
            stream: s.id(),
            rate: o.total_rate / 3.0,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
            limit: None,
        });
    }
    (builder, last.id())
}

/// Builds the Fig. 14 chain and deploys it under the simulator.
pub fn chain_system(o: &ChainOptions) -> (RunningSystem, StreamId) {
    let (builder, out) = chain_builder(o);
    (builder.build(), out)
}

/// Options for the key-partitioned sharded chain: three sources → ingest
/// Union → an expensive "work" stage fanned out over `shards`
/// key-partitioned instances → a cheap "deliver" merge stage → client.
#[derive(Debug, Clone)]
pub struct ShardedChainOptions {
    /// Shard fan-out of the work stage (1 = the unsharded baseline).
    pub shards: u32,
    /// Replicas per fragment (per shard for the work stage).
    pub replication: usize,
    /// Aggregate input rate (tuples/second).
    pub total_rate: f64,
    /// Per-SUnion delay under uniform assignment (the chain has three
    /// SUnion hops: ingest, work, deliver).
    pub per_node_delay: Duration,
    /// Availability/consistency policy.
    pub variant: PolicyVariant,
    /// Per-tuple CPU cost of the ingest/deliver stages.
    pub light_cost: Duration,
    /// Per-tuple CPU cost of the work stage (the sharding payoff: K shards
    /// split this bill K ways).
    pub work_cost: Duration,
    /// Stop each source after this many tuples (`None` = unbounded) — a
    /// finite load episode: the overload scenarios burst past saturation,
    /// then drain and stabilize.
    pub source_limit: Option<u64>,
    /// Keep-alive period for nodes and the client (stale timeout follows
    /// at 2.5×, preserving the paper's 100 ms/250 ms ratio). Wall-clock
    /// equivalence tests stretch it so a scheduling hiccup on a starved
    /// host cannot trip spurious staleness.
    pub heartbeat_period: Duration,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for ShardedChainOptions {
    fn default() -> Self {
        ShardedChainOptions {
            shards: 2,
            replication: 2,
            total_rate: 600.0,
            per_node_delay: Duration::from_millis(500),
            variant: DISTRIBUTED_VARIANTS[1],
            light_cost: Duration::from_micros(2),
            work_cost: Duration::from_micros(40),
            source_limit: None,
            heartbeat_period: Duration::from_millis(100),
            seed: 42,
        }
    }
}

/// Builds the sharded chain deployment description; the returned stream is
/// the client-visible merged output.
pub fn sharded_chain_builder(o: &ShardedChainOptions) -> (SystemBuilder, StreamId) {
    assert!(o.shards >= 1);
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let s3 = q.source("s3");
    let ingest = q.union("ingest", &[s1, s2, s3]);
    let work = q.map("work", ingest, vec![Expr::field(0)]);
    let deliver = q.map("deliver", work, vec![Expr::field(0)]);
    q.output(deliver);
    let d = q.build().expect("sharded chain diagram is valid");

    let spec = DeploymentSpec::new()
        .fragment(
            FragmentSpec::named("ingest")
                .op("ingest")
                .replication(o.replication),
        )
        .fragment(
            FragmentSpec::named("work")
                .op("work")
                .replication(o.replication)
                .shards(o.shards, Expr::field(0))
                .work_cost(o.work_cost),
        )
        .fragment(
            FragmentSpec::named("deliver")
                .op("deliver")
                .replication(o.replication),
        );
    let cfg = DpcConfig {
        bucket: Duration::from_millis(100),
        total_delay: Duration::from_micros(o.per_node_delay.as_micros() * 3),
        safety: 0.9,
        assignment: DelayAssignment::Uniform,
        failure_mode: o.variant.failure,
        stabilization_mode: o.variant.stabilization,
        tentative_wait: Duration::from_millis(300),
        protection: Protection::Dpc,
    };
    let p = plan_deployment(&d, &spec, &cfg).expect("sharded chain plan is valid");
    let stale = Duration::from_micros(o.heartbeat_period.as_micros() * 5 / 2);
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(vec![deliver.id()])
        .metrics(MetricsHub::new())
        .node_tuning(NodeTuning {
            per_tuple_cost: o.light_cost,
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..NodeTuning::default()
        })
        .client_tuning(ClientTuning {
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..ClientTuning::default()
        });
    for s in [s1, s2, s3] {
        builder = builder.source(SourceConfig {
            stream: s.id(),
            rate: o.total_rate / 3.0,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
            limit: o.source_limit,
        });
    }
    (builder, deliver.id())
}

/// Builds the sharded chain and deploys it under the simulator.
pub fn sharded_chain_system(o: &ShardedChainOptions) -> (RunningSystem, StreamId) {
    let (builder, out) = sharded_chain_builder(o);
    (builder.build(), out)
}

/// Options for the many-chain scale grid: `chains` independent
/// source → work (K key-partitioned shards) → deliver pipelines in one
/// diagram, one client watching every output. The fragment count is
/// `chains × (shards + 1)` — the workload the worker-pool scheduler
/// multiplexes onto a handful of OS threads (1040 fragments at the
/// 16-chain/K=64 point).
#[derive(Debug, Clone)]
pub struct ScaleOptions {
    /// Number of independent pipelines.
    pub chains: u32,
    /// Shard fan-out of each chain's work stage.
    pub shards: u32,
    /// Replicas per fragment (per shard for the work stages).
    pub replication: usize,
    /// Input rate per chain (tuples/second). The grid's **total** offered
    /// load is `chains × rate_per_chain` ([`scale_grid_offered`]) — when
    /// comparing grid points, hold that product constant, or the larger
    /// grid reports lower absolute throughput simply because it was
    /// offered less input, not because the scheduler got slower.
    pub rate_per_chain: f64,
    /// Per-SUnion delay under uniform assignment (each chain has two
    /// SUnion hops: work, deliver).
    pub per_node_delay: Duration,
    /// Per-tuple CPU cost of the deliver stage.
    pub light_cost: Duration,
    /// Per-tuple CPU cost of the work stage.
    pub work_cost: Duration,
    /// Keep-alive period for nodes *and* the client. At thousands of
    /// actors the paper's 100 ms default makes the control plane itself
    /// the dominant load; scale runs stretch it (stale timeout follows at
    /// 2.5×, preserving the default 100 ms/250 ms ratio).
    pub heartbeat_period: Duration,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for ScaleOptions {
    fn default() -> Self {
        ScaleOptions {
            chains: 4,
            shards: 4,
            replication: 2,
            rate_per_chain: 200.0,
            per_node_delay: Duration::from_secs(1),
            light_cost: Duration::from_micros(2),
            work_cost: Duration::from_micros(40),
            heartbeat_period: Duration::from_millis(500),
            seed: 7,
        }
    }
}

/// Physical fragments the scale grid deploys: `chains × (shards + 1)`.
pub fn scale_grid_fragments(o: &ScaleOptions) -> u32 {
    o.chains * (o.shards + 1)
}

/// Total actors: every fragment replicated, plus one source per chain and
/// one client.
pub fn scale_grid_actors(o: &ScaleOptions) -> u32 {
    scale_grid_fragments(o) * o.replication as u32 + o.chains + 1
}

/// Total offered load of the grid (tuples/second): `chains ×
/// rate_per_chain`. Grid points are throughput-comparable only at equal
/// offered load.
pub fn scale_grid_offered(o: &ScaleOptions) -> f64 {
    o.chains as f64 * o.rate_per_chain
}

/// Builds the scale grid deployment description; the returned streams are
/// the per-chain client-visible outputs, in chain order. Chain `c`'s work
/// stage is logical fragment `2c` and its deliver stage `2c + 1` (for
/// `FaultSpec` targeting).
pub fn scale_grid_builder(o: &ScaleOptions) -> (SystemBuilder, Vec<StreamId>) {
    assert!(o.chains >= 1 && o.shards >= 1);
    let mut q = QueryBuilder::new();
    let mut spec = DeploymentSpec::new();
    let mut sources = Vec::new();
    let mut outs = Vec::new();
    for c in 0..o.chains {
        let s = q.source(&format!("s{c}"));
        let work_name = format!("work{c}");
        let deliver_name = format!("deliver{c}");
        let work = q.map(&work_name, s, vec![Expr::field(0)]);
        let deliver = q.map(&deliver_name, work, vec![Expr::field(0)]);
        q.output(deliver);
        spec = spec
            .fragment(
                FragmentSpec::named(&work_name)
                    .op(&work_name)
                    .replication(o.replication)
                    .shards(o.shards, Expr::field(0))
                    .work_cost(o.work_cost),
            )
            .fragment(
                FragmentSpec::named(&deliver_name)
                    .op(&deliver_name)
                    .replication(o.replication),
            );
        sources.push(s);
        outs.push(deliver.id());
    }
    let d = q.build().expect("scale grid diagram is valid");
    let cfg = DpcConfig {
        bucket: Duration::from_millis(250),
        total_delay: Duration::from_micros(o.per_node_delay.as_micros() * 2),
        safety: 0.9,
        assignment: DelayAssignment::Uniform,
        failure_mode: DISTRIBUTED_VARIANTS[1].failure,
        stabilization_mode: DISTRIBUTED_VARIANTS[1].stabilization,
        tentative_wait: Duration::from_millis(300),
        protection: Protection::Dpc,
    };
    let p = plan_deployment(&d, &spec, &cfg).expect("scale grid plan is valid");
    let stale = Duration::from_micros(o.heartbeat_period.as_micros() * 5 / 2);
    let mut builder = SystemBuilder::new(o.seed, Duration::from_millis(1))
        .plan(p)
        .client_streams(outs.clone())
        .metrics(MetricsHub::new())
        .node_tuning(NodeTuning {
            per_tuple_cost: o.light_cost,
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..NodeTuning::default()
        })
        .client_tuning(ClientTuning {
            heartbeat_period: o.heartbeat_period,
            stale_timeout: stale,
            ..ClientTuning::default()
        });
    for s in &sources {
        builder = builder.source(SourceConfig {
            stream: s.id(),
            rate: o.rate_per_chain,
            boundary_interval: Duration::from_millis(250),
            batch_period: Duration::from_millis(50),
            values: ValueGen::Seq,
            limit: None,
        });
    }
    (builder, outs)
}

/// Options for the serialization-overhead setup (Fig. 22, Tables IV & V).
#[derive(Debug, Clone)]
pub struct OverheadOptions {
    /// SUnion bucket size; `None` runs the plain (no SUnion, no SOutput)
    /// baseline with no boundary tuples at all (the tables' 0 column).
    pub bucket: Option<Duration>,
    /// Source boundary interval (ignored for the baseline).
    pub boundary_interval: Duration,
    /// Input rate (1 tuple per 10 ms in §7).
    pub rate: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for OverheadOptions {
    fn default() -> Self {
        OverheadOptions {
            bucket: Some(Duration::from_millis(10)),
            boundary_interval: Duration::from_millis(10),
            rate: 100.0,
            seed: 42,
        }
    }
}

/// Output stream of the overhead setup.
pub const OVERHEAD_OUT: StreamId = StreamId(1);

/// Builds the Fig. 22 setup: one source → (SUnion + SOutput tap | plain
/// pass-through Map without fault tolerance) → client.
pub fn overhead_system(o: &OverheadOptions) -> RunningSystem {
    let mut q = QueryBuilder::new();
    let input = q.source("overhead-in");
    let out = match o.bucket {
        // DPC tap: the relay lowers to exactly [entry SUnion, SOutput].
        Some(_) => q.relay("overhead-out", input),
        // Baseline without fault tolerance: a pass-through Map with no
        // serialization (Fig. 22(b)).
        None => q.map("overhead-out", input, vec![Expr::field(0)]),
    };
    q.output(out);
    let d = q.build().expect("overhead diagram is valid");
    debug_assert_eq!(out.id(), OVERHEAD_OUT);

    let cfg = DpcConfig {
        bucket: o.bucket.unwrap_or(Duration::from_millis(10)),
        total_delay: Duration::from_secs(3600), // never fail here
        safety: 1.0,
        assignment: DelayAssignment::Uniform,
        failure_mode: DelayMode::Process,
        stabilization_mode: DelayMode::Process,
        tentative_wait: Duration::from_millis(300),
        protection: if o.bucket.is_some() {
            Protection::Dpc
        } else {
            Protection::Baseline
        },
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(1), &cfg).expect("overhead plan is valid");
    SystemBuilder::new(o.seed, Duration::from_millis(1))
        .source(SourceConfig {
            stream: input.id(),
            rate: o.rate,
            boundary_interval: if o.bucket.is_some() {
                o.boundary_interval
            } else {
                Duration::ZERO
            },
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
            limit: None,
        })
        .plan(p)
        .client_streams(vec![OVERHEAD_OUT])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Time;

    #[test]
    fn single_node_system_runs_clean() {
        let mut sys = single_node_system(&SingleNodeOptions::default());
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(SINGLE_NODE_OUT, |m| {
            assert!(m.n_stable > 1000);
            assert_eq!(m.n_tentative, 0);
        });
    }

    #[test]
    fn join_variant_produces_matches() {
        let o = SingleNodeOptions {
            with_join: true,
            ..Default::default()
        };
        let mut sys = single_node_system(&o);
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(SINGLE_NODE_OUT, |m| {
            assert!(m.n_stable > 0, "join must produce matches");
            assert_eq!(m.n_tentative, 0);
        });
    }

    #[test]
    fn chain_depth_three_runs_clean() {
        let (mut sys, out) = chain_system(&ChainOptions {
            depth: 3,
            ..Default::default()
        });
        sys.run_until(Time::from_secs(6));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 1500, "stable = {}", m.n_stable);
            assert_eq!(m.n_tentative, 0);
            assert_eq!(m.dup_stable, 0);
        });
    }

    #[test]
    fn sharded_chain_runs_clean_and_spreads_work() {
        let (mut sys, out) = sharded_chain_system(&ShardedChainOptions {
            shards: 3,
            ..Default::default()
        });
        // 3 sources + ingest 2 + work 3×2 + deliver 2 + client.
        assert_eq!(sys.fragment_replicas.len(), 5);
        assert_eq!(sys.groups, vec![vec![0], vec![1, 2, 3], vec![4]]);
        sys.run_until(Time::from_secs(6));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 1500, "stable = {}", m.n_stable);
            assert_eq!(m.n_tentative, 0);
            assert_eq!(m.dup_stable, 0);
        });
    }

    #[test]
    fn sharded_chain_recovers_from_shard_replica_crash() {
        let (builder, out) = sharded_chain_builder(&ShardedChainOptions::default());
        let mut sys = builder.build();
        sys.crash_shard_node(1, 1, 0, Time::from_secs(2), None);
        sys.run_until(Time::from_secs(8));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 2000, "stable = {}", m.n_stable);
            assert_eq!(m.dup_stable, 0, "failover must not duplicate");
        });
    }

    #[test]
    fn scale_grid_runs_clean_in_sim() {
        let o = ScaleOptions {
            chains: 3,
            shards: 2,
            ..Default::default()
        };
        let (builder, outs) = scale_grid_builder(&o);
        let mut sys = builder.build();
        assert_eq!(
            sys.fragment_replicas.len(),
            scale_grid_fragments(&o) as usize
        );
        sys.run_until(Time::from_secs(6));
        for out in outs {
            sys.metrics.with(out, |m| {
                assert!(m.n_stable > 200, "stable = {}", m.n_stable);
                assert_eq!(m.n_tentative, 0);
                assert_eq!(m.dup_stable, 0);
            });
        }
    }

    #[test]
    fn scale_grid_crash_is_contained_to_its_chain() {
        let o = ScaleOptions {
            chains: 2,
            shards: 2,
            ..Default::default()
        };
        let (builder, outs) = scale_grid_builder(&o);
        let mut sys = builder.build();
        // Chain 1's work stage is logical fragment 2; kill shard 1's
        // replica 0 permanently mid-run.
        sys.crash_shard_node(2, 1, 0, Time::from_secs(2), None);
        sys.run_until(Time::from_secs(8));
        sys.metrics.with(outs[1], |m| {
            assert!(m.n_stable > 500, "failover keeps chain 1 flowing");
            assert_eq!(m.dup_stable, 0, "failover must not duplicate");
        });
        sys.metrics.with(outs[0], |m| {
            assert!(m.n_stable > 800, "chain 0 unaffected");
            assert_eq!(m.n_tentative, 0, "crash must not leak across chains");
            assert_eq!(m.dup_stable, 0);
        });
    }

    #[test]
    fn overhead_baseline_has_tiny_latency() {
        let mut sys = overhead_system(&OverheadOptions {
            bucket: None,
            ..Default::default()
        });
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(OVERHEAD_OUT, |m| {
            assert!(m.n_stable > 400);
            assert!(m.lat_avg() < borealis_types::Duration::from_millis(20));
        });
    }
}
