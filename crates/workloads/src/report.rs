//! Plain-text rendering of experiment results in the paper's row/series
//! format, used by the `cargo bench` harnesses and the examples.

use crate::experiments::{AvailabilityRow, ChainRow, Fig11Result, OverheadRow};
use borealis_types::TupleKind;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A simple fixed-width text table.
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> TextTable {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(line, "{:>width$}  ", c, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders Table III / Fig. 13 rows grouped by variant: one line per
/// variant, one column per failure duration.
pub fn render_availability(
    title: &str,
    rows: &[AvailabilityRow],
    metric_tentative: bool,
) -> String {
    let mut durations: Vec<f64> = rows.iter().map(|r| r.failure_secs).collect();
    durations.sort_by(f64::total_cmp);
    durations.dedup();
    let mut headers: Vec<String> = vec!["variant".to_string()];
    headers.extend(durations.iter().map(|d| format!("{d}s")));
    let mut t = TextTable::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut variants: Vec<&'static str> = rows.iter().map(|r| r.variant).collect();
    variants.dedup();
    let mut seen = Vec::new();
    for v in variants {
        if seen.contains(&v) {
            continue;
        }
        seen.push(v);
        let mut cells = vec![v.to_string()];
        for &d in &durations {
            let cell = rows
                .iter()
                .find(|r| r.variant == v && r.failure_secs == d)
                .map(|r| {
                    if metric_tentative {
                        format!("{}", r.ntentative)
                    } else {
                        format!("{:.2}", r.procnew.as_secs_f64())
                    }
                })
                .unwrap_or_default();
            cells.push(cell);
        }
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Renders chain rows: grouped by label, one line per (label, duration),
/// one column per depth.
pub fn render_chain(title: &str, rows: &[ChainRow], metric_tentative: bool) -> String {
    let mut depths: Vec<usize> = rows.iter().map(|r| r.depth).collect();
    depths.sort_unstable();
    depths.dedup();
    let mut headers: Vec<String> = vec!["configuration".into(), "failure".into()];
    headers.extend(depths.iter().map(|d| format!("depth {d}")));
    let mut t = TextTable::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut groups: BTreeMap<(String, u64), Vec<&ChainRow>> = BTreeMap::new();
    for r in rows {
        groups
            .entry((r.label.clone(), (r.failure_secs * 1000.0) as u64))
            .or_default()
            .push(r);
    }
    for ((label, f_ms), group) in groups {
        let mut cells = vec![label, format!("{}s", f_ms as f64 / 1000.0)];
        for &d in &depths {
            let cell = group
                .iter()
                .find(|r| r.depth == d)
                .map(|r| {
                    if metric_tentative {
                        format!("{}", r.ntentative)
                    } else {
                        format!("{:.2}", r.procnew.as_secs_f64())
                    }
                })
                .unwrap_or_default();
            cells.push(cell);
        }
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Renders Tables IV/V: latency stats per parameter value, in milliseconds.
pub fn render_overhead(title: &str, param_name: &str, rows: &[OverheadRow]) -> String {
    let mut t = TextTable::new(&[
        param_name,
        "min(ms)",
        "max(ms)",
        "avg(ms)",
        "stddev(ms)",
        "tuples",
    ]);
    for r in rows {
        t.row(vec![
            if r.param_ms == 0 {
                "0 (union)".into()
            } else {
                format!("{}", r.param_ms)
            },
            format!("{:.1}", r.min.as_micros() as f64 / 1000.0),
            format!("{:.1}", r.max.as_micros() as f64 / 1000.0),
            format!("{:.1}", r.avg.as_micros() as f64 / 1000.0),
            format!("{:.1}", r.std.as_micros() as f64 / 1000.0),
            format!("{}", r.count),
        ]);
    }
    format!("{title}\n{}", t.render())
}

/// Renders a Fig. 11-style output trace: a downsampled (time, seq#, kind)
/// series plus the event markers (UNDO, REC_DONE), mirroring the paper's
/// scatter plots.
pub fn render_fig11(title: &str, r: &Fig11Result, sample_every: usize) -> String {
    let mut out = format!("{title}\n  time(ms)  kind  seq\n");
    for (i, e) in r.trace.iter().enumerate() {
        let marker = match e.kind {
            TupleKind::Insertion => "S",
            TupleKind::Tentative => "T",
            TupleKind::Undo => "U",
            TupleKind::RecDone => "R",
            TupleKind::Boundary => continue,
        };
        // Always show protocol markers; downsample data tuples.
        if matches!(e.kind, TupleKind::Insertion | TupleKind::Tentative)
            && i % sample_every.max(1) != 0
        {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:>8}  {:>4}  {}",
            e.arrival.as_millis(),
            marker,
            if e.kind == TupleKind::Undo {
                format!("undo->{}", e.undo_target.unwrap_or_default().0)
            } else {
                format!("{}", e.id.0)
            }
        );
    }
    let _ = writeln!(
        out,
        "  summary: stable={} tentative={} undo={} rec_done={} dup={} max_gap={}",
        r.n_stable, r.n_tentative, r.n_undo, r.n_rec_done, r.dup_stable, r.max_gap
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Duration;

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("  a  bbbb"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn availability_rendering_groups_variants() {
        let rows = vec![
            AvailabilityRow {
                variant: "Process & Process",
                failure_secs: 2.0,
                procnew: Duration::from_millis(2800),
                ntentative: 10,
                dup_stable: 0,
            },
            AvailabilityRow {
                variant: "Process & Process",
                failure_secs: 4.0,
                procnew: Duration::from_millis(2810),
                ntentative: 20,
                dup_stable: 0,
            },
        ];
        let s = render_availability("t", &rows, false);
        assert!(s.contains("2s"));
        assert!(s.contains("4s"));
        assert!(s.contains("2.80"));
        let s2 = render_availability("t", &rows, true);
        assert!(s2.contains("20"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
