use borealis_dpc::MetricsHub;
use borealis_types::{Duration, StreamId, Time, TupleKind};
use borealis_workloads::*;

fn main() {
    let o = SingleNodeOptions {
        with_join: false,
        total_rate: 4500.0,
        delay: Duration::from_secs(3),
        variant: VARIANTS[0], // Process & Process
        trace: true,
        ..Default::default()
    };
    let mut sys = single_node_system(&o);
    sys.disconnect_source(StreamId(2), 0, Time::from_secs(15), Time::from_secs(25));
    sys.run_until(Time::from_secs(50));
    let hub: &MetricsHub = &sys.metrics;
    hub.with(SINGLE_NODE_OUT, |m| {
        let trace = m.trace.as_ref().unwrap();
        // compute frontier-advancing latencies over time
        let mut frontier = Time::ZERO;
        let mut worst: Vec<(u64, u64, TupleKind)> = Vec::new(); // (lat_ms, arrival_ms)
        for e in trace {
            if matches!(e.kind, TupleKind::Insertion | TupleKind::Tentative) && e.stime > frontier {
                frontier = e.stime;
                let lat = e.arrival.since(e.stime).as_millis();
                worst.push((lat, e.arrival.as_millis(), e.kind));
            }
        }
        worst.sort_by_key(|w| std::cmp::Reverse(w.0));
        println!("top 12 new-tuple latencies (lat_ms, arrival_ms, kind):");
        for w in worst.iter().take(12) {
            println!("  {:?}", w);
        }
        // markers
        for e in trace {
            if matches!(e.kind, TupleKind::Undo | TupleKind::RecDone) {
                println!("marker {:?} at {} ms", e.kind, e.arrival.as_millis());
            }
        }
    });
}
