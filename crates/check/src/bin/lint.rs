//! Facade lint runner: fails the build if `crates/runtime` uses
//! `std::sync` outside its `sync.rs` facade. See [`borealis_check::lint`].

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let runtime_src = match std::env::args().nth(1) {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("runtime")
            .join("src"),
    };
    let findings = match borealis_check::lint::scan_dir(&runtime_src, "sync.rs") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: cannot scan {}: {e}", runtime_src.display());
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!(
            "lint: OK — no direct std::sync use in {} outside sync.rs",
            runtime_src.display()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "lint: {} direct std::sync use(s) in {} outside the sync facade — \
         route them through crate::sync so the model checker can see them:",
        findings.len(),
        runtime_src.display()
    );
    for f in &findings {
        eprintln!("  {f}");
    }
    ExitCode::FAILURE
}
