//! # borealis-check
//!
//! Model checker and static lints for the borealis concurrency core.
//!
//! Two halves:
//!
//! * **A bounded exhaustive interleaving explorer** ([`explore`]) in the
//!   loom/CHESS style: test code runs on cooperative *virtual threads*
//!   (real OS threads serialized so exactly one runs at a time), every
//!   operation on the virtual sync primitives in [`sync`] is a scheduling
//!   point, and the explorer enumerates schedules depth-first with an
//!   iterative *preemption bound* — a context switch away from a thread
//!   that could have kept running costs one unit of budget; switches at
//!   blocking points are free. Violations (assertion failures, deadlocks,
//!   step-limit livelocks) abort the run with a **replayable trace**: the
//!   sequence of branch choices, which can be fed back through the
//!   `BOREALIS_MODEL_REPLAY` environment variable to re-run exactly the
//!   failing schedule under a debugger.
//! * **A source-level facade lint** ([`lint`], `cargo run -p borealis-check
//!   --bin lint`): fails the build if `crates/runtime` touches `std::sync`
//!   anywhere outside its `sync.rs` facade module, which is what keeps the
//!   runtime model-checkable at all.
//!
//! Like the `crates/shims/*` crates, this crate has **no dependencies**:
//! the explorer is plain std. It compiles identically with and without
//! `--cfg borealis_model`; the cfg only switches which primitives the
//! *runtime's* facade re-exports.
//!
//! ## Model of the world
//!
//! The explorer checks *interleavings*, not memory orderings: because only
//! one virtual thread executes at a time, every execution is sequentially
//! consistent. Condvars have no memory (a notify with no waiter is lost,
//! like the real thing), `notify_one` deterministically wakes the
//! lowest-id waiter, and a *timed* wait is modeled by keeping the waiter
//! in the enabled set — scheduling it while still blocked is the timeout
//! firing. Test bodies must be deterministic (no wall clock, no OS
//! randomness); the explorer fails with a "diverged" violation otherwise.

pub mod lint;
pub mod sync;

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration options: the knobs of the bounded search.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Maximum number of *preemptive* context switches per execution
    /// (switches at blocking points are free). Bound 2 already catches
    /// most real-world concurrency bugs (the CHESS observation).
    pub preemption_bound: usize,
    /// Per-execution scheduling-point budget; exceeding it is reported as
    /// a livelock violation.
    pub max_steps: u64,
    /// Hard cap on explored executions; exceeding it panics so a state
    /// space blow-up is loud, not slow.
    pub max_executions: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            preemption_bound: 2,
            max_steps: 20_000,
            max_executions: 500_000,
        }
    }
}

/// What an [`explore`] call did: recorded in `BENCH_PR8.json` so future
/// PRs can see protocol state spaces grow.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of complete executions (interleavings) explored.
    pub executions: u64,
    /// The preemption bound the space was explored under.
    pub preemption_bound: usize,
    /// Deepest branch point (scheduling decision with ≥ 2 enabled
    /// threads) reached by any execution.
    pub max_branch_depth: usize,
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Resource a virtual thread is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    Mutex(u64),
    RwRead(u64),
    RwWrite(u64),
    Cv { cv: u64, timed: bool },
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    Runnable,
    Blocked(BlockedOn),
    Finished,
}

#[derive(Debug, Default)]
pub(crate) struct MxInfo {
    pub held: bool,
    pub waiters: Vec<usize>,
}

#[derive(Debug, Default)]
pub(crate) struct RwInfo {
    pub writer: bool,
    pub readers: usize,
    /// `(thread, wants_write)`
    pub waiters: Vec<(usize, bool)>,
}

#[derive(Debug, Default)]
pub(crate) struct CvInfo {
    pub waiters: Vec<usize>,
}

/// One branch point on the DFS path: a scheduling decision where more than
/// one thread was enabled.
#[derive(Debug)]
struct PathNode {
    /// Enabled thread ids, ascending.
    enabled: Vec<usize>,
    /// Default choice taken when this node was first created.
    first: usize,
    /// Choice for the current execution.
    choice: usize,
    /// Next index into `enabled` to consider when backtracking.
    next_alt: usize,
    /// Thread that was running when the decision was made.
    from: usize,
    /// True if `from` could have continued (so switching away costs one
    /// preemption).
    from_counts: bool,
    /// Preemptions spent on the path strictly before this node.
    preemptions_before: usize,
}

pub(crate) struct ExecState {
    pub threads: Vec<TState>,
    /// Per-thread flag: last condvar wake was a timeout, not a notify.
    pub timed_out: Vec<bool>,
    pub active: usize,
    branch_depth: usize,
    steps: u64,
    preemptions: usize,
    /// Choices taken at branch points this execution (the replay trace).
    trace: Vec<usize>,
    path: Vec<PathNode>,
    replay: Option<Vec<usize>>,
    pub failed: Option<String>,
    pub done: bool,
    pub mutexes: HashMap<u64, MxInfo>,
    pub rwlocks: HashMap<u64, RwInfo>,
    pub condvars: HashMap<u64, CvInfo>,
    pub joiners: HashMap<usize, Vec<usize>>,
    pub handles: Vec<std::thread::JoinHandle<()>>,
    opts: Opts,
}

/// Shared handle to one execution: the real lock + condvar that serialize
/// the virtual threads.
pub(crate) struct Exec {
    pub st: StdMutex<ExecState>,
    pub cv: StdCondvar,
}

/// Panic payload used to silently unwind virtual threads once a violation
/// has been recorded (delivered with `resume_unwind`, so the panic hook
/// stays quiet).
struct Cancel;

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the current execution handle and virtual thread id.
/// Panics if called from outside [`explore`] — virtual primitives only
/// work on virtual threads.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Exec>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let b = c.borrow();
        let (ex, me) = b
            .as_ref()
            .expect("borealis-check virtual sync primitive used outside explore()");
        f(ex, *me)
    })
}

impl Exec {
    pub(crate) fn lock_st(&self) -> StdMutexGuard<'_, ExecState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a violation and wakes everyone so they can cancel. Never
    /// unwinds itself; callers fall through to `wait_until_active` (which
    /// cancels) or return.
    pub(crate) fn fail(&self, st: &mut StdMutexGuard<'_, ExecState>, msg: String) {
        if st.failed.is_none() {
            st.failed = Some(msg);
        }
        self.cv.notify_all();
    }

    fn enabled(st: &ExecState) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t,
                    TState::Runnable | TState::Blocked(BlockedOn::Cv { timed: true, .. })
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// The scheduler: picks the next thread to run. `from` is the thread
    /// making the call; `from_counts` is true when it could have kept
    /// running (so switching away is a preemption).
    pub(crate) fn schedule_from(
        &self,
        st: &mut StdMutexGuard<'_, ExecState>,
        from: usize,
        from_counts: bool,
    ) {
        if st.failed.is_some() || st.done {
            self.cv.notify_all();
            return;
        }
        let enabled = Self::enabled(st);
        if enabled.is_empty() {
            let blocked: Vec<(usize, TState)> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t, TState::Finished))
                .map(|(i, t)| (i, *t))
                .collect();
            if blocked.is_empty() {
                st.done = true;
                self.cv.notify_all();
            } else {
                self.fail(
                    st,
                    format!("deadlock: no runnable thread, blocked: {blocked:?}"),
                );
            }
            return;
        }
        let from_counts = from_counts && enabled.contains(&from);
        let choice = if enabled.len() == 1 {
            enabled[0]
        } else {
            let d = st.branch_depth;
            st.branch_depth += 1;
            let c = if let Some(replay) = &st.replay {
                replay.get(d).copied().unwrap_or_else(|| {
                    if enabled.contains(&from) {
                        from
                    } else {
                        enabled[0]
                    }
                })
            } else if d < st.path.len() {
                st.path[d].choice
            } else {
                let first = if enabled.contains(&from) {
                    from
                } else {
                    enabled[0]
                };
                let preemptions_before = st.preemptions;
                st.path.push(PathNode {
                    enabled: enabled.clone(),
                    first,
                    choice: first,
                    next_alt: 0,
                    from,
                    from_counts,
                    preemptions_before,
                });
                first
            };
            st.trace.push(c);
            c
        };
        if !enabled.contains(&choice) {
            self.fail(
                st,
                format!(
                    "model execution diverged from the recorded schedule \
                     (chose {choice}, enabled {enabled:?}) — is the test body \
                     nondeterministic?"
                ),
            );
            return;
        }
        if from_counts && choice != from {
            st.preemptions += 1;
        }
        // Scheduling a timed-blocked waiter IS its timeout firing.
        if let TState::Blocked(BlockedOn::Cv { cv, timed: true }) = st.threads[choice] {
            if let Some(info) = st.condvars.get_mut(&cv) {
                info.waiters.retain(|&w| w != choice);
            }
            st.timed_out[choice] = true;
            st.threads[choice] = TState::Runnable;
        }
        st.active = choice;
        self.cv.notify_all();
    }

    /// Parks the calling virtual thread until the scheduler hands it the
    /// execution slot. Cancels (quiet unwind) if the execution failed.
    pub(crate) fn wait_until_active<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, ExecState>,
        me: usize,
    ) -> StdMutexGuard<'a, ExecState> {
        loop {
            if st.failed.is_some() {
                drop(st);
                panic::resume_unwind(Box::new(Cancel));
            }
            if st.active == me && matches!(st.threads[me], TState::Runnable) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A scheduling point: gives the explorer the chance to preempt the
/// calling virtual thread before its next visible operation. Called by
/// every operation in [`sync`]; no-op while unwinding so guard drops
/// during a violation don't re-enter the scheduler.
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    with_current(|ex, me| {
        let mut st = ex.lock_st();
        if st.failed.is_some() {
            drop(st);
            panic::resume_unwind(Box::new(Cancel));
        }
        st.steps += 1;
        if st.steps > st.opts.max_steps {
            let max = st.opts.max_steps;
            ex.fail(
                &mut st,
                format!("step limit exceeded ({max} scheduling points): possible livelock"),
            );
        }
        ex.schedule_from(&mut st, me, true);
        let st = ex.wait_until_active(st, me);
        drop(st);
    });
}

pub(crate) fn vthread_main(ex: Arc<Exec>, id: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((ex.clone(), id)));
    let r = panic::catch_unwind(AssertUnwindSafe(|| {
        // Wait to be scheduled for the first time.
        let st = ex.lock_st();
        let st = ex.wait_until_active(st, id);
        drop(st);
        f()
    }));
    let mut st = ex.lock_st();
    st.threads[id] = TState::Finished;
    if let Some(js) = st.joiners.remove(&id) {
        for j in js {
            st.threads[j] = TState::Runnable;
        }
    }
    match r {
        Ok(()) => ex.schedule_from(&mut st, id, false),
        Err(e) => {
            if !e.is::<Cancel>() && st.failed.is_none() {
                let msg = payload_to_string(&e);
                ex.fail(&mut st, format!("virtual thread {id} panicked: {msg}"));
            } else {
                ex.cv.notify_all();
            }
        }
    }
    drop(st);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

fn payload_to_string(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// The DFS driver
// ---------------------------------------------------------------------------

struct ExecOutcome {
    failed: Option<String>,
    trace: Vec<usize>,
    path: Vec<PathNode>,
    branch_depth: usize,
}

fn run_once(
    opts: Opts,
    f: &Arc<dyn Fn() + Send + Sync>,
    path: Vec<PathNode>,
    replay: Option<Vec<usize>>,
) -> ExecOutcome {
    let ex = Arc::new(Exec {
        st: StdMutex::new(ExecState {
            threads: vec![TState::Runnable],
            timed_out: vec![false],
            active: 0,
            branch_depth: 0,
            steps: 0,
            preemptions: 0,
            trace: Vec::new(),
            path,
            replay,
            failed: None,
            done: false,
            mutexes: HashMap::new(),
            rwlocks: HashMap::new(),
            condvars: HashMap::new(),
            joiners: HashMap::new(),
            handles: Vec::new(),
            opts,
        }),
        cv: StdCondvar::new(),
    });
    let ex2 = ex.clone();
    let ff = f.clone();
    let root = std::thread::Builder::new()
        .name("vthread-0".into())
        .spawn(move || vthread_main(ex2, 0, move || ff()))
        .expect("spawn model root thread");
    let (failed, trace, path, branch_depth, handles) = {
        let mut st = ex.lock_st();
        while !(st.done || st.failed.is_some()) {
            st = ex.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        ex.cv.notify_all();
        (
            st.failed.clone(),
            std::mem::take(&mut st.trace),
            std::mem::take(&mut st.path),
            st.branch_depth,
            std::mem::take(&mut st.handles),
        )
    };
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
    ExecOutcome {
        failed,
        trace,
        path,
        branch_depth,
    }
}

fn next_alternative(node: &mut PathNode, bound: usize) -> Option<usize> {
    while node.next_alt < node.enabled.len() {
        let c = node.enabled[node.next_alt];
        node.next_alt += 1;
        if c == node.first {
            continue;
        }
        let cost = node.preemptions_before + usize::from(node.from_counts && c != node.from);
        if cost <= bound {
            return Some(c);
        }
    }
    None
}

fn format_violation(msg: &str, trace: &[usize], opts: Opts, execution: u64) -> String {
    let t = trace
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "model violation (execution #{execution}, preemption bound {bound}): {msg}\n  \
         branch trace: [{t}]\n  \
         replay: BOREALIS_MODEL_REPLAY={t} RUSTFLAGS=\"--cfg borealis_model\" \
         cargo test -p borealis-runtime --lib <test-name> -- --nocapture",
        bound = opts.preemption_bound,
    )
}

fn explore_inner(opts: Opts, f: Arc<dyn Fn() + Send + Sync>) -> (Report, Option<String>) {
    let mut path: Vec<PathNode> = Vec::new();
    let mut executions: u64 = 0;
    let mut max_branch_depth = 0usize;
    loop {
        assert!(
            executions < opts.max_executions,
            "model state space exceeded max_executions ({}): shrink the test \
             or raise Opts::max_executions",
            opts.max_executions
        );
        let out = run_once(opts, &f, path, None);
        executions += 1;
        max_branch_depth = max_branch_depth.max(out.branch_depth);
        let report = Report {
            executions,
            preemption_bound: opts.preemption_bound,
            max_branch_depth,
        };
        if let Some(msg) = out.failed {
            return (
                report,
                Some(format_violation(&msg, &out.trace, opts, executions)),
            );
        }
        path = out.path;
        loop {
            let Some(node) = path.last_mut() else {
                return (report, None);
            };
            if let Some(alt) = next_alternative(node, opts.preemption_bound) {
                node.choice = alt;
                break;
            }
            path.pop();
        }
    }
}

/// Exhaustively explores every interleaving of `f` within the preemption
/// bound. Panics with a replayable trace on the first violation (assertion
/// failure, deadlock, or step-limit livelock); returns a [`Report`] of the
/// explored state space otherwise.
///
/// If `BOREALIS_MODEL_REPLAY=c1,c2,...` is set, runs exactly one execution
/// following that branch trace instead of exploring (run a single test so
/// the trace lines up with the right `explore` call).
pub fn explore(opts: Opts, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    if let Ok(replay) = std::env::var("BOREALIS_MODEL_REPLAY") {
        let choices: Vec<usize> = replay
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("BOREALIS_MODEL_REPLAY: bad choice"))
            .collect();
        let out = run_once(opts, &f, Vec::new(), Some(choices));
        let report = Report {
            executions: 1,
            preemption_bound: opts.preemption_bound,
            max_branch_depth: out.branch_depth,
        };
        if let Some(msg) = out.failed {
            panic!("{}", format_violation(&msg, &out.trace, opts, 1));
        }
        return report;
    }
    match explore_inner(opts, f) {
        (report, None) => report,
        (_, Some(full)) => panic!("{full}"),
    }
}

/// Like [`explore`], but *expects* the seeded bug: returns the violation
/// message (with its replayable trace) and panics if the whole space is
/// explored without one. This is the mutation-check harness — it proves
/// the explorer can actually see a given bug class.
pub fn explore_expect_violation(opts: Opts, f: impl Fn() + Send + Sync + 'static) -> String {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    match explore_inner(opts, f) {
        (report, Some(full)) => {
            assert!(
                full.contains("violation"),
                "violation message should be formatted: {full}"
            );
            let _ = report;
            full
        }
        (report, None) => panic!(
            "expected a model violation but none found in {} executions",
            report.executions
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{thread as vthread, Mutex};

    fn small() -> Opts {
        Opts {
            preemption_bound: 2,
            max_steps: 5_000,
            max_executions: 100_000,
        }
    }

    /// Two incrementers under a virtual mutex: no interleaving loses an
    /// update, and the explorer visits more than one schedule.
    #[test]
    fn mutex_counter_is_atomic() {
        let r = explore(small(), || {
            let n = std::sync::Arc::new(Mutex::new(0u32));
            let n2 = n.clone();
            let t = vthread::spawn(move || {
                let mut g = n2.lock();
                *g += 1;
            });
            {
                let mut g = n.lock();
                *g += 1;
            }
            t.join();
            assert_eq!(*n.lock(), 2);
        });
        assert!(r.executions > 1, "should branch: {r:?}");
    }

    /// An unsynchronized read-modify-write twin loses updates in some
    /// schedule — the explorer must find it and name a replayable trace.
    #[test]
    fn racy_counter_is_caught() {
        use crate::sync::AtomicU64;
        use std::sync::atomic::Ordering;
        let msg = explore_expect_violation(small(), || {
            let n = std::sync::Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = vthread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(msg.contains("replay: BOREALIS_MODEL_REPLAY="), "{msg}");
    }

    /// A thread that locks a mutex and never unlocks while another waits
    /// is reported as a deadlock, not a hang.
    #[test]
    fn deadlock_is_reported() {
        let msg = explore_expect_violation(small(), || {
            let a = std::sync::Arc::new(Mutex::new(()));
            let b = std::sync::Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = vthread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                drop((ga, gb));
            });
            let gb = b.lock();
            let ga = a.lock();
            drop((ga, gb));
            t.join();
        });
        assert!(msg.contains("deadlock"), "{msg}");
    }

    /// A check-then-wait gap (flag tested, lock released, lock retaken,
    /// THEN wait) loses the only notify in the schedule where the
    /// notifier runs inside the gap — reported as a deadlock.
    #[test]
    fn lost_wakeup_is_caught() {
        use crate::sync::Condvar;
        let msg = explore_expect_violation(small(), || {
            let m = std::sync::Arc::new(Mutex::new(false));
            let cv = std::sync::Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = vthread::spawn(move || {
                *m2.lock() = true;
                cv2.notify_one();
            });
            let g = m.lock();
            if !*g {
                // BUG (seeded): the lock is dropped between the check and
                // the wait, so the notify can land in the gap and be lost.
                drop(g);
                let g2 = m.lock();
                let _ = cv.wait(g2);
            } else {
                drop(g);
            }
            t.join();
        });
        assert!(msg.contains("deadlock"), "{msg}");
    }

    /// Correct condvar protocol passes exhaustively.
    #[test]
    fn condvar_handshake_is_clean() {
        use crate::sync::Condvar;
        let r = explore(small(), || {
            let m = std::sync::Arc::new(Mutex::new(false));
            let cv = std::sync::Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = vthread::spawn(move || {
                *m2.lock() = true;
                cv2.notify_one();
            });
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            drop(g);
            t.join();
        });
        assert!(r.executions >= 1);
    }
}
