//! Virtual sync primitives for model executions.
//!
//! Same shapes as `std::sync` minus poisoning (a model execution dies as a
//! whole on panic, so poison never escapes): [`Mutex::lock`] returns the
//! guard directly. Every operation is a scheduling point for the explorer
//! in [`crate::explore`]; the data itself lives in an uncontended real
//! primitive (only one virtual thread runs at a time), while *ownership*
//! is tracked virtually so the explorer can see blocking and interleave
//! around it.
//!
//! These types only work on virtual threads (inside `explore`); using them
//! outside panics with a clear message.

use crate::{with_current, yield_point, BlockedOn, TState};
use std::sync::atomic::Ordering;
use std::time::Duration;

fn next_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Virtual mutex: blocking is visible to the explorer.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; virtual release on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    release_virtual: bool,
}

impl<T> Mutex<T> {
    /// Creates a new virtual mutex.
    pub fn new(t: T) -> Self {
        Mutex {
            id: next_id(),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Acquires the lock, blocking the virtual thread (visibly to the
    /// explorer) while another virtual thread holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        acquire_mutex(self.id);
        MutexGuard {
            lock: self,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            release_virtual: true,
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if self.release_virtual {
            release_mutex(self.lock.id);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

fn acquire_mutex(id: u64) {
    yield_point();
    with_current(|ex, me| {
        let mut st = ex.lock_st();
        loop {
            let info = st.mutexes.entry(id).or_default();
            if !info.held {
                info.held = true;
                return;
            }
            info.waiters.push(me);
            st.threads[me] = TState::Blocked(BlockedOn::Mutex(id));
            ex.schedule_from(&mut st, me, false);
            st = ex.wait_until_active(st, me);
        }
    });
}

fn release_mutex(id: u64) {
    // The release is immediately visible; the *next* operation's yield
    // point is the preemption opportunity, so no scheduling here.
    with_current(|ex, _me| {
        let mut st = ex.lock_st();
        let info = st.mutexes.entry(id).or_default();
        info.held = false;
        let ws = std::mem::take(&mut info.waiters);
        for w in ws {
            st.threads[w] = TState::Runnable;
        }
    });
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Virtual condvar. No memory (a notify with no waiter is lost, like the
/// real one); `notify_one` wakes the lowest-id waiter; a timed wait keeps
/// the waiter in the enabled set — the explorer scheduling it while still
/// blocked *is* the timeout firing, so "timeout races notify" schedules
/// are explored.
#[derive(Debug)]
pub struct Condvar {
    id: u64,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates a new virtual condvar.
    pub fn new() -> Self {
        Condvar { id: next_id() }
    }

    /// Releases the guard, blocks until notified, reacquires.
    pub fn wait<'a, T>(&self, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(g, false).0
    }

    /// Like [`Condvar::wait`] but the waiter may also wake by timeout
    /// (second return value `true`); the actual duration is ignored —
    /// timeouts are a scheduling choice in the model.
    pub fn wait_timeout<'a, T>(
        &self,
        g: MutexGuard<'a, T>,
        _d: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        self.wait_inner(g, true)
    }

    fn wait_inner<'a, T>(
        &self,
        mut g: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let lock = g.lock;
        // Release the real lock now; suppress the virtual release so it
        // can happen atomically with the waiter registration below.
        drop(g.inner.take());
        g.release_virtual = false;
        drop(g);
        let timed_out = with_current(|ex, me| {
            let mut st = ex.lock_st();
            // Atomically: release the mutex and become a condvar waiter.
            let info = st.mutexes.entry(lock.id).or_default();
            info.held = false;
            let ws = std::mem::take(&mut info.waiters);
            for w in ws {
                st.threads[w] = TState::Runnable;
            }
            st.condvars.entry(self.id).or_default().waiters.push(me);
            st.timed_out[me] = false;
            st.threads[me] = TState::Blocked(BlockedOn::Cv { cv: self.id, timed });
            ex.schedule_from(&mut st, me, false);
            st = ex.wait_until_active(st, me);
            st.timed_out[me]
        });
        (lock.lock(), timed_out)
    }

    /// Wakes the lowest-id waiter, if any (lost otherwise).
    pub fn notify_one(&self) {
        with_current(|ex, _me| {
            let mut st = ex.lock_st();
            if let Some(info) = st.condvars.get_mut(&self.id) {
                if let Some(&w) = info.waiters.iter().min() {
                    info.waiters.retain(|&x| x != w);
                    st.timed_out[w] = false;
                    st.threads[w] = TState::Runnable;
                }
            }
        });
    }

    /// Wakes every current waiter.
    pub fn notify_all(&self) {
        with_current(|ex, _me| {
            let mut st = ex.lock_st();
            if let Some(info) = st.condvars.get_mut(&self.id) {
                let ws = std::mem::take(&mut info.waiters);
                for w in ws {
                    st.timed_out[w] = false;
                    st.threads[w] = TState::Runnable;
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Virtual reader-writer lock (no poisoning, like [`Mutex`]).
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    id: u64,
    inner: std::sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new virtual rwlock.
    pub fn new(t: T) -> Self {
        RwLock {
            id: next_id(),
            inner: std::sync::RwLock::new(t),
        }
    }

    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        yield_point();
        with_current(|ex, me| {
            let mut st = ex.lock_st();
            loop {
                let info = st.rwlocks.entry(self.id).or_default();
                if !info.writer {
                    info.readers += 1;
                    return;
                }
                info.waiters.push((me, false));
                st.threads[me] = TState::Blocked(BlockedOn::RwRead(self.id));
                ex.schedule_from(&mut st, me, false);
                st = ex.wait_until_active(st, me);
            }
        });
        RwLockReadGuard {
            lock: self,
            inner: Some(self.inner.read().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        yield_point();
        with_current(|ex, me| {
            let mut st = ex.lock_st();
            loop {
                let info = st.rwlocks.entry(self.id).or_default();
                if !info.writer && info.readers == 0 {
                    info.writer = true;
                    return;
                }
                info.waiters.push((me, true));
                st.threads[me] = TState::Blocked(BlockedOn::RwWrite(self.id));
                ex.schedule_from(&mut st, me, false);
                st = ex.wait_until_active(st, me);
            }
        });
        RwLockWriteGuard {
            lock: self,
            inner: Some(self.inner.write().unwrap_or_else(|e| e.into_inner())),
        }
    }
}

fn release_rw(id: u64, write: bool) {
    with_current(|ex, _me| {
        let mut st = ex.lock_st();
        let info = st.rwlocks.entry(id).or_default();
        if write {
            info.writer = false;
        } else {
            info.readers -= 1;
        }
        if !info.writer && info.readers == 0 {
            let ws = std::mem::take(&mut info.waiters);
            for (w, _) in ws {
                st.threads[w] = TState::Runnable;
            }
        }
    });
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        release_rw(self.lock.id, false);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        release_rw(self.lock.id, true);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic_int {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Virtual atomic: storage is the real atomic (uncontended — one
        /// virtual thread runs at a time), but every operation is a
        /// scheduling point. Orderings are accepted and ignored: model
        /// executions are sequentially consistent by construction.
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// Creates a new virtual atomic.
            pub const fn new(v: $prim) -> Self {
                $name(<$std>::new(v))
            }

            /// Atomic load (scheduling point).
            pub fn load(&self, _o: Ordering) -> $prim {
                yield_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Atomic store (scheduling point).
            pub fn store(&self, v: $prim, _o: Ordering) {
                yield_point();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Atomic swap (scheduling point).
            pub fn swap(&self, v: $prim, _o: Ordering) -> $prim {
                yield_point();
                self.0.swap(v, Ordering::SeqCst)
            }

            /// Atomic add (scheduling point).
            pub fn fetch_add(&self, v: $prim, _o: Ordering) -> $prim {
                yield_point();
                self.0.fetch_add(v, Ordering::SeqCst)
            }

            /// Atomic sub (scheduling point).
            pub fn fetch_sub(&self, v: $prim, _o: Ordering) -> $prim {
                yield_point();
                self.0.fetch_sub(v, Ordering::SeqCst)
            }

            /// Atomic max (scheduling point).
            pub fn fetch_max(&self, v: $prim, _o: Ordering) -> $prim {
                yield_point();
                self.0.fetch_max(v, Ordering::SeqCst)
            }

            /// Atomic min (scheduling point).
            pub fn fetch_min(&self, v: $prim, _o: Ordering) -> $prim {
                yield_point();
                self.0.fetch_min(v, Ordering::SeqCst)
            }

            /// Atomic compare-exchange (scheduling point).
            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                _s: Ordering,
                _f: Ordering,
            ) -> Result<$prim, $prim> {
                yield_point();
                self.0
                    .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Non-atomic read via `&mut` (no scheduling point needed).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.0.get_mut()
            }
        }
    };
}

model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// Virtual atomic bool; see the integer atomics for the model.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// Creates a new virtual atomic bool.
    pub const fn new(v: bool) -> Self {
        AtomicBool(std::sync::atomic::AtomicBool::new(v))
    }

    /// Atomic load (scheduling point).
    pub fn load(&self, _o: Ordering) -> bool {
        yield_point();
        self.0.load(Ordering::SeqCst)
    }

    /// Atomic store (scheduling point).
    pub fn store(&self, v: bool, _o: Ordering) {
        yield_point();
        self.0.store(v, Ordering::SeqCst)
    }

    /// Atomic swap (scheduling point).
    pub fn swap(&self, v: bool, _o: Ordering) -> bool {
        yield_point();
        self.0.swap(v, Ordering::SeqCst)
    }

    /// Atomic compare-exchange (scheduling point).
    pub fn compare_exchange(
        &self,
        cur: bool,
        new: bool,
        _s: Ordering,
        _f: Ordering,
    ) -> Result<bool, bool> {
        yield_point();
        self.0
            .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Virtual threads: spawn/join that the explorer schedules.
pub mod thread {
    use crate::{with_current, yield_point, BlockedOn, TState};

    /// Handle to a virtual thread.
    #[must_use = "a virtual thread should be joined before the test body returns"]
    pub struct JoinHandle {
        id: usize,
    }

    /// Spawns a virtual thread running `f` under the explorer's schedule.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        let id = with_current(|ex, _me| {
            let mut st = ex.lock_st();
            st.threads.push(TState::Runnable);
            st.timed_out.push(false);
            let id = st.threads.len() - 1;
            let ex2 = ex.clone();
            let h = std::thread::Builder::new()
                .name(format!("vthread-{id}"))
                .spawn(move || crate::vthread_main(ex2, id, f))
                .expect("spawn virtual thread");
            st.handles.push(h);
            id
        });
        // The child is now schedulable: make the spawn itself visible.
        yield_point();
        JoinHandle { id }
    }

    impl JoinHandle {
        /// Blocks (visibly to the explorer) until the thread finishes.
        pub fn join(self) {
            with_current(|ex, me| {
                let mut st = ex.lock_st();
                loop {
                    if matches!(st.threads[self.id], TState::Finished) {
                        return;
                    }
                    st.joiners.entry(self.id).or_default().push(me);
                    st.threads[me] = TState::Blocked(BlockedOn::Join(self.id));
                    ex.schedule_from(&mut st, me, false);
                    st = ex.wait_until_active(st, me);
                }
            });
        }
    }

    /// A bare scheduling point (`std::thread::yield_now` analogue).
    pub fn yield_now() {
        yield_point();
    }
}
