//! Source-level facade lint.
//!
//! The model checker only sees what goes through the sync facade
//! (`crates/runtime/src/sync.rs`). A direct `std::sync` use anywhere else
//! in `crates/runtime` silently escapes the model — so this lint makes it
//! a build failure instead. Run as `cargo run -p borealis-check --bin
//! lint` (CI does).

use std::fs;
use std::path::{Path, PathBuf};

/// One offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the offense is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.file.display(), self.line, self.text)
    }
}

/// Scans one source text for direct `std::sync` references, ignoring
/// comment-only occurrences (`//` to end of line).
pub fn scan_source(file: &Path, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = match raw.find("//") {
            Some(idx) => &raw[..idx],
            None => raw,
        };
        if line.contains("std::sync") {
            out.push(Finding {
                file: file.to_path_buf(),
                line: i + 1,
                text: raw.trim().to_string(),
            });
        }
    }
    out
}

/// Recursively scans every `.rs` file under `dir` except files named
/// `allow_file` (the facade itself). Files are visited in sorted order so
/// output is deterministic.
pub fn scan_dir(dir: &Path, allow_file: &str) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(dir, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        if f.file_name().and_then(|n| n.to_str()) == Some(allow_file) {
            continue;
        }
        let src = fs::read_to_string(&f)?;
        out.extend(scan_source(&f, &src));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_direct_mutex_use() {
        let src = "use std::sync::Mutex;\nfn f() { let _m = Mutex::new(0); }\n";
        let f = scan_source(Path::new("x.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
        assert!(f[0].text.contains("std::sync::Mutex"));
    }

    #[test]
    fn flags_inline_paths_and_atomics() {
        let src = "fn f() { let x = std::sync::atomic::AtomicU64::new(0); let _ = x; }\n";
        assert_eq!(scan_source(Path::new("x.rs"), src).len(), 1);
    }

    #[test]
    fn ignores_comments_and_facade_users() {
        let src = "// std::sync is re-exported by the facade\nuse crate::sync::Mutex;\nlet _x = 1; // trailing std::sync mention\n";
        assert!(scan_source(Path::new("x.rs"), src).is_empty());
    }
}
