//! # borealis-types
//!
//! Foundational types for the Borealis/DPC reproduction: virtual time, tuple
//! values, the DPC tuple model (stable / tentative / boundary / undo /
//! rec-done tuples, §4.1 of the paper), the shared-ownership
//! [`TupleBatch`] data plane, shared identifiers, and a small
//! deterministic expression language used by operator specifications.
//!
//! Everything in this crate is deliberately free of protocol logic so that
//! operators (`borealis-ops`), the engine (`borealis-engine`), the simulator
//! (`borealis-sim`), and the DPC protocol (`borealis-dpc`) can all share one
//! vocabulary.

#![warn(missing_docs)]

pub mod batch;
pub mod expr;
pub mod flow;
pub mod ids;
pub mod sched;
pub mod shard;
pub mod time;
pub mod tuple;
pub mod value;
pub mod wire;

pub use batch::{BatchLog, BatchView, TupleBatch};
pub use expr::{BinOp, EvalError, Expr};
pub use flow::{BufferPolicy, CreditPolicy, FlowGauges, SendOutcome};
pub use ids::{FragmentId, NodeId, OpId, StreamId};
pub use sched::SchedGauges;
pub use shard::{route_key_evals, PartitionSpec, ShardRouter};
pub use time::{Duration, Time};
pub use tuple::{ControlSignal, Tuple, TupleId, TupleKind};
pub use value::Value;
pub use wire::{WireError, WireGauges};
