//! Flow-control and buffering policy types shared by every transport
//! layer.
//!
//! Borealis (§6) trades availability for consistency under a *delay
//! budget*; that trade only exists if overload turns into **bounded,
//! visible delay** rather than unbounded buffering. These types express the
//! policy half of that contract:
//!
//! * [`CreditPolicy`] — how many unconsumed data messages a directed link
//!   may hold in flight (the credit window). Both runtimes implement it
//!   through the shared credit ledger (`borealis_sim::FlowControl`).
//! * [`SendOutcome`] — what the transport did with a send: handed it to the
//!   link, queued it awaiting credit, deferred it to a future departure, or
//!   dropped it because of a fault.
//! * [`FlowGauges`] — queue-depth and stall-time gauges the transport
//!   maintains so overload is measurable, never silent.
//! * [`BufferPolicy`] — the §8.1 *output-buffer* bound (orthogonal to
//!   credits: the emission log a node retains for replay, not the link
//!   window).

use crate::time::Duration;

/// Credit-based flow control policy of a deployment's links.
///
/// Credits are counted in **data messages** (batches), not tuples: a sender
/// consumes one credit per `Data` message admitted to a directed link, and
/// the receiver returns it when its (modeled) CPU has consumed the batch.
/// Control traffic — subscriptions, acks, heartbeats, the stagger protocol
/// — always passes, so backpressure can never be mistaken for a dead peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CreditPolicy {
    /// No flow control and no accounting — the pre-credit behavior, with
    /// zero overhead on the send path. Overload becomes unbounded
    /// buffering, invisible to the gauges.
    #[default]
    Unbounded,
    /// No gating, full accounting: every data message is metered through
    /// the credit ledger (in-flight depth, peaks) but never stalled. The
    /// measurable "unbounded baseline" the benchmarks compare against.
    Metered,
    /// At most this many unconsumed data messages in flight per directed
    /// link; further sends queue at the sender until the receiver's
    /// consumption returns credits.
    Window(u32),
}

impl CreditPolicy {
    /// True when the ledger must account sends (Metered or Window).
    pub fn is_tracking(&self) -> bool {
        !matches!(self, CreditPolicy::Unbounded)
    }

    /// The credit window, if sends can actually stall.
    pub fn window(&self) -> Option<u32> {
        match self {
            CreditPolicy::Window(w) => Some(*w),
            _ => None,
        }
    }
}

/// What the transport did with one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Admitted to the link (credit available, or flow control off).
    Delivered,
    /// No credit on the link: queued at the sender, awaiting replenishment.
    Queued,
    /// Scheduled for a future departure (the CPU cost model's delayed
    /// sends); flow control applies when the departure comes due.
    Deferred,
    /// Dropped by a fault: the link or an endpoint is down.
    DroppedFault,
}

/// Queue-depth and stall-time gauges of a transport's credit ledger.
///
/// All counters are cumulative over the run except the `*_now` depths.
/// Under [`CreditPolicy::Unbounded`] everything stays zero (no accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowGauges {
    /// Data messages admitted with credit available.
    pub delivered: u64,
    /// Data messages that had to wait for credit.
    pub queued: u64,
    /// Queued messages later released by a credit return.
    pub released: u64,
    /// Queued messages purged by a node crash (counted as delivery drops).
    pub purged: u64,
    /// Current sender-side queue depth, summed over links.
    pub queued_now: u64,
    /// Peak sender-side queue depth of any single link.
    pub queued_peak: u64,
    /// Current in-flight (admitted, unconsumed) messages, summed over links.
    pub inflight_now: u64,
    /// Peak in-flight depth of any single link — bounded by the credit
    /// window under [`CreditPolicy::Window`]; grows without bound past
    /// saturation under [`CreditPolicy::Metered`].
    pub inflight_peak: u64,
    /// Number of stall episodes (a link's queue going empty → non-empty).
    pub stalls: u64,
    /// Total time links spent stalled (closed episodes only).
    pub stall_time: Duration,
}

/// What to do when an output buffer grows past its bound (§8.1).
///
/// This caps the *emission log* a node retains for downstream replay — a
/// per-stream durability trade, configured per fragment through
/// `FragmentSpec::buffer` — and is independent of the link-level
/// [`CreditPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Keep everything (the paper's default assumption, §2.2).
    Unbounded,
    /// Keep at most this many entries, evicting the oldest. Downstream
    /// replicas that fall behind the eviction horizon permanently miss the
    /// evicted tuples.
    DropOldest(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_tracking_and_window() {
        assert!(!CreditPolicy::Unbounded.is_tracking());
        assert!(CreditPolicy::Metered.is_tracking());
        assert!(CreditPolicy::Window(4).is_tracking());
        assert_eq!(CreditPolicy::Unbounded.window(), None);
        assert_eq!(CreditPolicy::Metered.window(), None);
        assert_eq!(CreditPolicy::Window(4).window(), Some(4));
        assert_eq!(CreditPolicy::default(), CreditPolicy::Unbounded);
    }

    #[test]
    fn gauges_default_to_zero() {
        let g = FlowGauges::default();
        assert_eq!(g.delivered + g.queued + g.inflight_peak, 0);
        assert_eq!(g.stall_time, Duration::ZERO);
    }
}
