//! Attribute values carried by tuples.
//!
//! Borealis tuples are flat records `(a1, ..., am)`. DPC requires operators
//! to be *deterministic* (§2.1), which in turn requires a total, canonical
//! order over attribute values so that SUnion can serialize tuples across
//! streams identically at every replica. [`Value`] therefore implements
//! `Eq`, `Ord`, and `Hash` with explicit float semantics (total order via
//! `f64::total_cmp`, hashing via bit patterns) instead of IEEE partial
//! comparisons.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Immutable interned string (cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Interprets the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets the value as a float, widening integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets the value as a boolean if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interprets the value as a string if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different types; gives `Value` a total
    /// order across type boundaries (Int < Float < Bool < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            // Bit-level equality keeps Eq reflexive even for NaN.
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Bool(v) => v.hash(state),
            Value::Str(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(Arc::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.0) < Value::Float(1.5));
        assert!(Value::Bool(false) < Value::Bool(true));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn total_order_across_types_is_consistent() {
        let vals = [
            Value::Int(0),
            Value::Float(0.0),
            Value::Bool(false),
            Value::str(""),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn nan_is_equal_to_itself_and_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        // NaN sorts after all finite floats under total_cmp.
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn hash_matches_equality() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Int(7)));
        assert_eq!(hash_of(&Value::Float(2.5)), hash_of(&Value::Float(2.5)));
        assert_ne!(hash_of(&Value::Int(0)), hash_of(&Value::Bool(false)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }
}
