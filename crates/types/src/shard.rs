//! Key-partitioned sharding of streams.
//!
//! A fragment deployed with `shards = K` is cloned into K physical
//! instances; every data tuple flowing into the fragment is routed to
//! exactly one instance by `hash(key) % K`, where `key` is a deterministic
//! [`Expr`] over the tuple's attributes. A [`PartitionSpec`] describes one
//! instance's slice of that routing: senders (data sources and upstream
//! fragments) apply it on the wire, so a shard replica receives only its
//! partition of each data stream.
//!
//! Non-data tuples — boundaries (§4.2.1 punctuation), UNDO and REC_DONE
//! markers — are control flow for *every* shard and always pass through;
//! only stable/tentative insertions are partitioned. The hash is a fixed
//! FNV-1a over the key value's canonical byte form, so the same tuple
//! routes to the same shard on every replica, every runtime, and every
//! replay — a requirement for DPC's replica determinism (§2.1).

use crate::batch::TupleBatch;
use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::Value;

/// One shard's slice of a key-partitioned stream: tuples whose
/// `hash(key) % shards == index` (plus all control tuples).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Key expression evaluated on each data tuple.
    pub key: Expr,
    /// Total number of shards (K).
    pub shards: u32,
    /// This shard's index in `[0, shards)`.
    pub index: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable, platform-independent hash of a [`Value`] for shard routing.
/// (Independent of `std`'s `Hash`, whose output may change across
/// releases; shard routing must be reproducible.)
pub fn route_hash(v: &Value) -> u64 {
    match v {
        Value::Int(i) => fnv(fnv(FNV_OFFSET, &[0]), &i.to_le_bytes()),
        Value::Float(f) => fnv(fnv(FNV_OFFSET, &[1]), &f.to_bits().to_le_bytes()),
        Value::Bool(b) => fnv(FNV_OFFSET, &[2, *b as u8]),
        Value::Str(s) => fnv(fnv(FNV_OFFSET, &[3]), s.as_bytes()),
    }
}

impl PartitionSpec {
    /// The shard a data tuple routes to. Tuples whose key expression fails
    /// to evaluate (missing field, type error) deterministically route to
    /// shard 0 — a planner-level key mismatch must not fork replicas.
    pub fn shard_of(&self, t: &Tuple) -> u32 {
        let h = self.key.eval(t).map(|v| route_hash(&v)).unwrap_or(0);
        (h % self.shards.max(1) as u64) as u32
    }

    /// True if this shard keeps `t`: every control tuple, plus the data
    /// tuples of its partition.
    pub fn keeps(&self, t: &Tuple) -> bool {
        !t.is_data() || self.shard_of(t) == self.index
    }

    /// This shard's view of a batch. When every tuple is kept the original
    /// view is returned unchanged (zero-copy); otherwise the kept tuples
    /// are collected into a fresh batch.
    pub fn filter_batch(&self, batch: &TupleBatch) -> TupleBatch {
        if batch.iter().all(|t| self.keeps(t)) {
            return batch.clone();
        }
        batch.iter().filter(|t| self.keeps(t)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::tuple::TupleId;

    fn keyed(id: u64, key: i64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(id), vec![Value::Int(key)])
    }

    fn spec(shards: u32, index: u32) -> PartitionSpec {
        PartitionSpec {
            key: Expr::field(0),
            shards,
            index,
        }
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let tuples: Vec<Tuple> = (0..100).map(|i| keyed(i, i as i64)).collect();
        for t in &tuples {
            let owners: Vec<u32> = (0..4).filter(|&k| spec(4, k).keeps(t)).collect();
            assert_eq!(owners.len(), 1, "each data tuple has exactly one owner");
            assert_eq!(owners[0], spec(4, 0).shard_of(t));
        }
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[spec(4, 0).shard_of(&keyed(i, i as i64)) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(c > 150, "shard {k} starved: {counts:?}");
        }
    }

    #[test]
    fn control_tuples_reach_every_shard() {
        let boundary = Tuple::boundary(TupleId::NONE, Time::from_secs(1));
        let undo = Tuple::undo(TupleId::NONE, TupleId(5));
        for k in 0..3 {
            assert!(spec(3, k).keeps(&boundary));
            assert!(spec(3, k).keeps(&undo));
        }
    }

    #[test]
    fn filter_batch_zero_copy_when_everything_kept() {
        let b = TupleBatch::from_vec(vec![
            Tuple::boundary(TupleId::NONE, Time::from_secs(1)),
            Tuple::boundary(TupleId::NONE, Time::from_secs(2)),
        ]);
        let f = spec(2, 1).filter_batch(&b);
        assert!(f.shares_backing(&b), "all-control batch passes by view");

        let data = TupleBatch::from_vec((0..10).map(|i| keyed(i, i as i64)).collect());
        let f0 = spec(2, 0).filter_batch(&data);
        let f1 = spec(2, 1).filter_batch(&data);
        assert_eq!(f0.len() + f1.len(), data.len(), "disjoint cover");
        assert!(!f0.is_empty() && !f1.is_empty());
    }

    #[test]
    fn bad_key_routes_to_shard_zero() {
        let t = Tuple::insertion(TupleId(1), Time::ZERO, vec![]);
        let s = PartitionSpec {
            key: Expr::field(7),
            shards: 4,
            index: 0,
        };
        assert_eq!(s.shard_of(&t), 0);
        assert!(s.keeps(&t));
        assert!(!PartitionSpec { index: 2, ..s }.keeps(&t));
    }

    #[test]
    fn route_hash_distinguishes_types_and_values() {
        assert_ne!(
            route_hash(&Value::Int(1)),
            route_hash(&Value::Int(2)),
            "values differ"
        );
        assert_ne!(
            route_hash(&Value::Int(1)),
            route_hash(&Value::Bool(true)),
            "types are domain-separated"
        );
        assert_eq!(route_hash(&Value::str("a")), route_hash(&Value::str("a")));
    }
}
