//! Key-partitioned sharding of streams.
//!
//! A fragment deployed with `shards = K` is cloned into K physical
//! instances; every data tuple flowing into the fragment is routed to
//! exactly one instance by `hash(key) % K`, where `key` is a deterministic
//! [`Expr`] over the tuple's attributes. A [`PartitionSpec`] describes one
//! instance's slice of that routing: senders (data sources and upstream
//! fragments) apply it on the wire, so a shard replica receives only its
//! partition of each data stream.
//!
//! Non-data tuples — boundaries (§4.2.1 punctuation), UNDO and REC_DONE
//! markers — are control flow for *every* shard and always pass through;
//! only stable/tentative insertions are partitioned. The hash is a fixed
//! FNV-1a over the key value's canonical byte form, so the same tuple
//! routes to the same shard on every replica, every runtime, and every
//! replay — a requirement for DPC's replica determinism (§2.1).

use crate::batch::{BatchView, TupleBatch};
use crate::expr::Expr;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

#[cfg(debug_assertions)]
thread_local! {
    static ROUTE_KEY_EVALS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Debug-build routing gauge: how many shard-key evaluate+hash operations
/// this thread has performed. The one-pass partitioner's contract — the
/// key is hashed exactly once per tuple per producing link, regardless of
/// K·R — is asserted against this counter in tests and the `shard_route`
/// microbench. Always 0 in release builds (no counting on the hot path).
pub fn route_key_evals() -> u64 {
    #[cfg(debug_assertions)]
    {
        ROUTE_KEY_EVALS.with(|c| c.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// One shard's slice of a key-partitioned stream: tuples whose
/// `hash(key) % shards == index` (plus all control tuples).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Key expression evaluated on each data tuple.
    pub key: Expr,
    /// Total number of shards (K).
    pub shards: u32,
    /// This shard's index in `[0, shards)`.
    pub index: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_01b3;

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A stable, platform-independent hash of a [`Value`] for shard routing.
/// (Independent of `std`'s `Hash`, whose output may change across
/// releases; shard routing must be reproducible.)
pub fn route_hash(v: &Value) -> u64 {
    match v {
        Value::Int(i) => fnv(fnv(FNV_OFFSET, &[0]), &i.to_le_bytes()),
        Value::Float(f) => fnv(fnv(FNV_OFFSET, &[1]), &f.to_bits().to_le_bytes()),
        Value::Bool(b) => fnv(FNV_OFFSET, &[2, *b as u8]),
        Value::Str(s) => fnv(fnv(FNV_OFFSET, &[3]), s.as_bytes()),
    }
}

/// Evaluates the key and hashes it — the one place shard routing touches
/// tuple contents, so the debug routing gauge counts every call.
fn hash_shard(key: &Expr, t: &Tuple, shards: u64) -> u32 {
    #[cfg(debug_assertions)]
    ROUTE_KEY_EVALS.with(|c| c.set(c.get() + 1));
    let h = key.eval(t).map(|v| route_hash(&v)).unwrap_or(0);
    (h % shards) as u32
}

impl PartitionSpec {
    /// The shard a data tuple routes to. Tuples whose key expression fails
    /// to evaluate (missing field, type error) deterministically route to
    /// shard 0 — a planner-level key mismatch must not fork replicas.
    pub fn shard_of(&self, t: &Tuple) -> u32 {
        hash_shard(&self.key, t, self.shards.max(1) as u64)
    }

    /// True if this shard keeps `t`: every control tuple, plus the data
    /// tuples of its partition.
    pub fn keeps(&self, t: &Tuple) -> bool {
        !t.is_data() || self.shard_of(t) == self.index
    }

    /// This shard's view of a batch, in a single eval+hash pass. Scans
    /// optimistically: as long as every tuple is kept nothing is copied,
    /// and an all-kept batch is returned as a zero-copy clone; the first
    /// rejected tuple triggers one prefix copy, after which kept tuples
    /// are appended.
    pub fn filter_batch(&self, batch: &TupleBatch) -> TupleBatch {
        let all = batch.as_slice();
        let mut kept: Option<Vec<Tuple>> = None;
        for (i, t) in all.iter().enumerate() {
            match (self.keeps(t), &mut kept) {
                (true, Some(v)) => v.push(t.clone()),
                (true, None) => {}
                (false, Some(_)) => {}
                (false, None) => kept = Some(all[..i].to_vec()),
            }
        }
        match kept {
            None => batch.clone(),
            Some(v) => TupleBatch::from_vec(v),
        }
    }

    /// One-pass K-way partition: evaluates the key expression and
    /// `route_hash` exactly once per data tuple, producing one selection
    /// view per shard over the input's backing allocation (index `i` is
    /// shard `i`'s view; `self.index` is ignored). Control tuples appear
    /// in every shard's view; contiguous selections collapse to zero-copy
    /// range slices. The result is shared — every replica of every shard
    /// clones `Arc`s out of it instead of rescanning the batch.
    pub fn split_views(&self, input: &BatchView) -> Arc<[BatchView]> {
        let k = self.shards.max(1) as usize;
        let mut runs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        fn push_pos(runs: &mut Vec<(u32, u32)>, pos: u32) {
            match runs.last_mut() {
                Some(last) if last.1 == pos => last.1 = pos + 1,
                _ => runs.push((pos, pos + 1)),
            }
        }
        // `input` is usually contiguous (a producer's outgoing batch); when
        // it is itself fragmented the output views select from a compacted
        // copy so downstream runs stay dense.
        let base = input.to_batch();
        for (pos, t) in base.as_slice().iter().enumerate() {
            let pos = pos as u32;
            if t.is_data() {
                let s = hash_shard(&self.key, t, k as u64) as usize;
                push_pos(&mut runs[s], pos);
            } else {
                for r in runs.iter_mut() {
                    push_pos(r, pos);
                }
            }
        }
        runs.into_iter()
            .map(|r| BatchView::from_runs(base.clone(), r))
            .collect()
    }
}

/// Delivery-layer memo that makes fan-out routing one-pass: the first
/// receiver of a (batch, shard group) computes all K selection views via
/// [`PartitionSpec::split_views`]; the remaining K·R−1 receivers of the
/// same batch find the entry and clone their shard's view — no key
/// evaluation, no hashing, no copying.
///
/// The cache is identity-keyed ([`BatchView::same_view`]) and each entry
/// holds a clone of its input view, so a hit can never be a reused
/// allocation address. A handful of entries suffices: all receivers of one
/// batch are routed back-to-back by a single sender activation, so the
/// working set is the few batches currently fanning out, not history.
#[derive(Default)]
pub struct ShardRouter {
    entries: Vec<RouteEntry>,
}

struct RouteEntry {
    key: Expr,
    shards: u32,
    input: BatchView,
    views: Arc<[BatchView]>,
}

/// Entries kept per router (MRU order). Fan-out routes one batch to all
/// its receivers consecutively, so a small cache already captures the
/// K·R−1 follow-up lookups; interleavings of a few concurrent batches
/// (e.g. subscriber replay) still hit.
const ROUTER_CAP: usize = 4;

impl ShardRouter {
    /// An empty router.
    pub fn new() -> ShardRouter {
        ShardRouter::default()
    }

    /// Routes `input` for the receiver described by `spec`, computing the
    /// shard group's K views on the first call for this batch and serving
    /// `Arc` clones on every subsequent one.
    pub fn route(&mut self, spec: &PartitionSpec, input: &BatchView) -> BatchView {
        if spec.shards <= 1 {
            return input.clone();
        }
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.shards == spec.shards && e.input.same_view(input) && e.key == spec.key)
        {
            self.entries.swap(0, i);
            return self.entries[0].views[spec.index as usize].clone();
        }
        let views = spec.split_views(input);
        let out = views[spec.index as usize].clone();
        self.entries.insert(
            0,
            RouteEntry {
                key: spec.key.clone(),
                shards: spec.shards,
                input: input.clone(),
                views,
            },
        );
        self.entries.truncate(ROUTER_CAP);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::tuple::TupleId;

    fn keyed(id: u64, key: i64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(id), vec![Value::Int(key)])
    }

    fn spec(shards: u32, index: u32) -> PartitionSpec {
        PartitionSpec {
            key: Expr::field(0),
            shards,
            index,
        }
    }

    #[test]
    fn partition_is_total_and_disjoint() {
        let tuples: Vec<Tuple> = (0..100).map(|i| keyed(i, i as i64)).collect();
        for t in &tuples {
            let owners: Vec<u32> = (0..4).filter(|&k| spec(4, k).keeps(t)).collect();
            assert_eq!(owners.len(), 1, "each data tuple has exactly one owner");
            assert_eq!(owners[0], spec(4, 0).shard_of(t));
        }
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        let mut counts = [0usize; 4];
        for i in 0..1000 {
            counts[spec(4, 0).shard_of(&keyed(i, i as i64)) as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(c > 150, "shard {k} starved: {counts:?}");
        }
    }

    #[test]
    fn control_tuples_reach_every_shard() {
        let boundary = Tuple::boundary(TupleId::NONE, Time::from_secs(1));
        let undo = Tuple::undo(TupleId::NONE, TupleId(5));
        for k in 0..3 {
            assert!(spec(3, k).keeps(&boundary));
            assert!(spec(3, k).keeps(&undo));
        }
    }

    #[test]
    fn filter_batch_zero_copy_when_everything_kept() {
        let b = TupleBatch::from_vec(vec![
            Tuple::boundary(TupleId::NONE, Time::from_secs(1)),
            Tuple::boundary(TupleId::NONE, Time::from_secs(2)),
        ]);
        let f = spec(2, 1).filter_batch(&b);
        assert!(f.shares_backing(&b), "all-control batch passes by view");

        let data = TupleBatch::from_vec((0..10).map(|i| keyed(i, i as i64)).collect());
        let f0 = spec(2, 0).filter_batch(&data);
        let f1 = spec(2, 1).filter_batch(&data);
        assert_eq!(f0.len() + f1.len(), data.len(), "disjoint cover");
        assert!(!f0.is_empty() && !f1.is_empty());
    }

    #[test]
    fn bad_key_routes_to_shard_zero() {
        let t = Tuple::insertion(TupleId(1), Time::ZERO, vec![]);
        let s = PartitionSpec {
            key: Expr::field(7),
            shards: 4,
            index: 0,
        };
        assert_eq!(s.shard_of(&t), 0);
        assert!(s.keeps(&t));
        assert!(!PartitionSpec { index: 2, ..s }.keeps(&t));
    }

    #[test]
    fn filter_batch_single_pass_and_correct() {
        let data = TupleBatch::from_vec((0..64).map(|i| keyed(i, i as i64)).collect());
        let expected: Vec<Tuple> = data
            .iter()
            .filter(|t| spec(4, 2).keeps(t))
            .cloned()
            .collect();
        let evals_before = route_key_evals();
        let got = spec(4, 2).filter_batch(&data);
        if cfg!(debug_assertions) {
            assert_eq!(
                route_key_evals() - evals_before,
                64,
                "one eval+hash per tuple, not two"
            );
        }
        assert_eq!(got.as_slice(), &expected[..]);
    }

    #[test]
    fn split_views_matches_per_link_filter_batch() {
        for k in [1u32, 2, 4, 8] {
            let mut tuples: Vec<Tuple> = (0..40).map(|i| keyed(i, (i * 7) as i64)).collect();
            tuples.insert(10, Tuple::boundary(TupleId::NONE, Time::from_secs(1)));
            tuples.push(Tuple::boundary(TupleId::NONE, Time::from_secs(2)));
            let b = TupleBatch::from_vec(tuples);
            let views = spec(k, 0).split_views(&b.clone().into());
            assert_eq!(views.len(), k as usize);
            for (i, v) in views.iter().enumerate() {
                let expect = spec(k, i as u32).filter_batch(&b);
                let got: Vec<Tuple> = v.iter().cloned().collect();
                assert_eq!(got, expect.to_vec(), "K={k} shard {i}");
            }
        }
    }

    #[test]
    fn split_views_hashes_once_per_tuple() {
        let b = TupleBatch::from_vec((0..100).map(|i| keyed(i, i as i64)).collect());
        let before = route_key_evals();
        let views = spec(8, 0).split_views(&b.into());
        if cfg!(debug_assertions) {
            assert_eq!(
                route_key_evals() - before,
                100,
                "one hash per tuple for all 8 shards"
            );
        }
        let total: usize = views.iter().map(|v| v.len()).sum();
        assert_eq!(
            total, 100,
            "data tuples are partitioned totally and disjointly"
        );
    }

    #[test]
    fn split_views_contiguous_selection_is_zero_copy() {
        // All-one-shard keys: shard s gets the whole batch as a zero-copy
        // slice, the others get empty views.
        let b = TupleBatch::from_vec((0..16).map(|i| keyed(i, 42)).collect());
        let views = spec(4, 0).split_views(&b.clone().into());
        let owner = spec(4, 0).shard_of(&keyed(0, 42)) as usize;
        for (i, v) in views.iter().enumerate() {
            if i == owner {
                assert_eq!(v.len(), 16);
                assert!(
                    v.to_batch().shares_backing(&b),
                    "contiguous run stays zero-copy"
                );
            } else {
                assert!(v.is_empty());
            }
        }
    }

    #[test]
    fn router_serves_fanout_from_one_pass() {
        let b: BatchView =
            TupleBatch::from_vec((0..50).map(|i| keyed(i, i as i64)).collect()).into();
        let mut router = ShardRouter::new();
        let before = route_key_evals();
        // K=4, R=2: eight receiver links route the same batch.
        let mut outs = Vec::new();
        for shard in 0..4u32 {
            for _replica in 0..2 {
                outs.push(router.route(&spec(4, shard), &b));
            }
        }
        if cfg!(debug_assertions) {
            assert_eq!(
                route_key_evals() - before,
                50,
                "K·R fan-out still hashes once per tuple"
            );
        }
        for (n, out) in outs.iter().enumerate() {
            assert_eq!(
                out,
                &outs[(n / 2) * 2],
                "both replicas share the shard's view"
            );
        }
        let total: usize = outs.iter().step_by(2).map(|v| v.len()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn router_distinguishes_batches_groups_and_unsharded() {
        let b1: BatchView =
            TupleBatch::from_vec((0..10).map(|i| keyed(i, i as i64)).collect()).into();
        let b2: BatchView = TupleBatch::from_vec((0..10).map(|i| keyed(i, 1)).collect()).into();
        let mut router = ShardRouter::new();
        let v1 = router.route(&spec(2, 0), &b1);
        let v2 = router.route(&spec(2, 0), &b2);
        assert_ne!(v1, v2, "different batches route independently");
        // A different shard count is a different group even for the same batch.
        let v3 = router.route(&spec(3, 0), &b1);
        assert_eq!(
            v3.len(),
            spec(3, 0).filter_batch(&b1.to_batch()).len(),
            "group (key, K) is part of the cache identity"
        );
        // Unsharded links pass through untouched.
        let whole = router.route(&spec(1, 0), &b1);
        assert_eq!(whole.len(), b1.len());
    }

    #[test]
    fn route_hash_distinguishes_types_and_values() {
        assert_ne!(
            route_hash(&Value::Int(1)),
            route_hash(&Value::Int(2)),
            "values differ"
        );
        assert_ne!(
            route_hash(&Value::Int(1)),
            route_hash(&Value::Bool(true)),
            "types are domain-separated"
        );
        assert_eq!(route_hash(&Value::str("a")), route_hash(&Value::str("a")));
    }
}
