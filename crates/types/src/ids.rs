//! Identifiers shared across the workspace.
//!
//! A *query diagram* (the logical dataflow) is partitioned into *fragments*;
//! each fragment is deployed on one or more physical *nodes* (its replicas).
//! Streams connect operators; the streams that cross fragment boundaries are
//! the ones the DPC protocol manages.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The numeric index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A named stream in the query diagram (either a source stream, an
    /// intermediate stream, or an output stream).
    StreamId,
    "s"
);

id_type!(
    /// An operator instance in the query diagram.
    OpId,
    "op"
);

id_type!(
    /// A logical fragment of the query diagram: the unit of deployment and
    /// replication. All replicas of a fragment run identical operator sets.
    FragmentId,
    "f"
);

id_type!(
    /// A physical processing node (one replica of one fragment), a data
    /// source, or a client endpoint in the deployed system.
    NodeId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(StreamId(3).to_string(), "s3");
        assert_eq!(OpId(1).to_string(), "op1");
        assert_eq!(FragmentId(0).to_string(), "f0");
        assert_eq!(NodeId(9).to_string(), "n9");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(StreamId(4).index(), 4);
    }
}
