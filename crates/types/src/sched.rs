//! Scheduler observability types shared by the runtimes.
//!
//! The thread engine multiplexes every actor onto a fixed worker pool
//! (per-worker run queues with work stealing plus a global injector).
//! [`SchedGauges`] is the point-in-time export of that scheduler's
//! counters, surfaced next to [`FlowGauges`](crate::FlowGauges) so
//! scheduling behavior — steal pressure, queue depth, how long actors run
//! per activation — is measurable, never silent.

/// Upper bounds (exclusive, in microseconds) of the actor run-time
/// histogram buckets; the last bucket is unbounded. An "activation" is one
/// scheduled run of an actor: draining up to a batch of mailbox envelopes.
pub const RUN_BUCKET_BOUNDS_US: [u64; 4] = [10, 100, 1_000, 10_000];

/// Point-in-time counters of the worker-pool scheduler.
///
/// All counters are cumulative over the run except the `*_depth` /
/// `*_peak` gauges. Under the pooled engine every actor activation passes
/// through exactly one of `local_polls`, `global_polls`, or `steals` —
/// their sum is the total number of activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedGauges {
    /// Number of worker threads in the pool.
    pub workers: u64,
    /// Activations popped from the running worker's own queue.
    pub local_polls: u64,
    /// Activations popped from the global injector (cross-worker wakeups:
    /// fault notifications, shutdown, pushes from non-worker threads).
    pub global_polls: u64,
    /// Activations stolen from a sibling worker's queue.
    pub steals: u64,
    /// Times an idle worker parked (condvar wait; no CPU burned).
    pub parks: u64,
    /// Current local run-queue depth, summed over workers.
    pub local_depth: u64,
    /// Peak depth of any single worker's local queue.
    pub local_peak: u64,
    /// Current global injector depth.
    pub global_depth: u64,
    /// Peak global injector depth.
    pub global_peak: u64,
    /// Actor activation run-time histogram: `[<10µs, <100µs, <1ms, <10ms,
    /// ≥10ms]` (bounds in [`RUN_BUCKET_BOUNDS_US`]).
    pub run_hist: [u64; 5],
}

impl SchedGauges {
    /// Total actor activations (local + global + stolen).
    pub fn activations(&self) -> u64 {
        self.local_polls + self.global_polls + self.steals
    }

    /// The histogram bucket index for an activation that ran `micros` µs.
    pub fn bucket_for(micros: u64) -> usize {
        RUN_BUCKET_BOUNDS_US
            .iter()
            .position(|&b| micros < b)
            .unwrap_or(RUN_BUCKET_BOUNDS_US.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range() {
        assert_eq!(SchedGauges::bucket_for(0), 0);
        assert_eq!(SchedGauges::bucket_for(9), 0);
        assert_eq!(SchedGauges::bucket_for(10), 1);
        assert_eq!(SchedGauges::bucket_for(999), 2);
        assert_eq!(SchedGauges::bucket_for(5_000), 3);
        assert_eq!(SchedGauges::bucket_for(10_000), 4);
        assert_eq!(SchedGauges::bucket_for(u64::MAX), 4);
    }

    #[test]
    fn activations_sum_the_poll_sources() {
        let g = SchedGauges {
            local_polls: 5,
            global_polls: 2,
            steals: 3,
            ..SchedGauges::default()
        };
        assert_eq!(g.activations(), 10);
        assert_eq!(SchedGauges::default(), SchedGauges::default());
    }
}
