//! Virtual time.
//!
//! All of the protocol logic in this repository is written against an
//! abstract, discrete clock measured in **microseconds**. The paper's
//! experiments are phrased in seconds and milliseconds; microsecond
//! resolution lets the simulator also charge sub-millisecond per-tuple CPU
//! costs (see `borealis-sim`) without rounding artifacts.
//!
//! [`Time`] is a point on the virtual timeline, [`Duration`] a span. Both are
//! plain `u64` newtypes with saturating/checked semantics chosen to make
//! protocol code panic-free.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since the start of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The origin of the virtual timeline.
    pub const ZERO: Time = Time(0);
    /// The maximum representable instant. Used as "never" for deadlines.
    pub const MAX: Time = Time(u64::MAX);

    /// A point `ms` milliseconds after the origin.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// A point `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after `self`, saturating at [`Time::MAX`].
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable span. Used as "infinite" delays.
    pub const MAX: Duration = Duration(u64::MAX);

    /// A span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// A span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// A span of `s` seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// A span of `s` seconds given as a float; sub-microsecond precision is
    /// truncated.
    pub fn from_secs_f64(s: f64) -> Duration {
        assert!(s >= 0.0, "negative duration");
        Duration((s * 1_000_000.0) as u64)
    }

    /// Microseconds in this span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this span (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in this span, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `self * n`, saturating.
    pub fn saturating_mul(self, n: u64) -> Duration {
        Duration(self.0.saturating_mul(n))
    }

    /// `self - other`, saturating to zero.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Time::from_secs(3).as_millis(), 3_000);
        assert_eq!(Time::from_millis(250).as_micros(), 250_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert!((Duration::from_secs_f64(1.5).as_millis()) == 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1) + Duration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!((t - Time::from_secs(1)).as_millis(), 500);
        // Saturating subtraction: earlier minus later is zero, not underflow.
        assert_eq!((Time::from_secs(1) - t).as_micros(), 0);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Time::MAX + Duration::from_secs(1), Time::MAX);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
        assert_eq!(
            Duration::from_secs(1).saturating_sub(Duration::from_secs(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn ordering() {
        assert!(Time::from_millis(10) < Time::from_millis(11));
        assert!(Duration::from_micros(1) > Duration::ZERO);
    }
}
