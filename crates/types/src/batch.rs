//! Shared-ownership tuple batches: the zero-copy data plane.
//!
//! DPC's protocol machinery multiplies every emitted tuple: it is buffered
//! for replay (§8.1), fanned out to every replica of every downstream
//! neighbor, and re-sent on subscription. With owned `Vec<Tuple>` payloads
//! each of those hops deep-clones heap-allocated tuples, so per-tuple cost
//! grows with replication degree — exactly where the paper's availability
//! bound needs headroom. A [`TupleBatch`] is an immutable, `Arc`-backed
//! slice view: `clone` is a reference-count bump, [`TupleBatch::slice`] is
//! O(1) range arithmetic, and one batch built by an operator can back the
//! emission log, every subscriber's in-flight message, and every replay
//! simultaneously.
//!
//! [`BatchLog`] is the append-only companion: an ordered sequence of sealed
//! batches plus a mutable tail, with logical (all-time) positions, used by
//! data sources (the paper's persistent input log) and anything else that
//! replays suffixes to late subscribers without copying.

use crate::time::Time;
use crate::tuple::{Tuple, TupleId};
use std::fmt;
use std::ops::{Deref, Range};
use std::sync::{Arc, OnceLock};

/// An immutable, cheaply clonable batch of tuples.
///
/// Internally an `Arc<[Tuple]>` plus a sub-range: clones and slices share
/// the backing allocation. The backing memory is freed only when the last
/// view over it drops — so truncating a log that handed out views never
/// invalidates them.
#[derive(Clone)]
pub struct TupleBatch {
    data: Arc<[Tuple]>,
    start: usize,
    end: usize,
}

impl TupleBatch {
    /// An empty batch. Every empty batch shares one process-wide cached
    /// allocation — heartbeat and tick paths call this constantly, and a
    /// fresh zero-length `Arc` per call is still a heap allocation.
    pub fn empty() -> TupleBatch {
        static EMPTY: OnceLock<Arc<[Tuple]>> = OnceLock::new();
        TupleBatch {
            data: Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new()))),
            start: 0,
            end: 0,
        }
    }

    /// Seals a vector into a batch (single allocation move, no per-tuple
    /// clone).
    pub fn from_vec(tuples: Vec<Tuple>) -> TupleBatch {
        let end = tuples.len();
        TupleBatch {
            data: Arc::from(tuples),
            start: 0,
            end,
        }
    }

    /// A batch holding one tuple.
    pub fn single(t: Tuple) -> TupleBatch {
        TupleBatch::from_vec(vec![t])
    }

    /// The viewed tuples.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.data[self.start..self.end]
    }

    /// Number of tuples in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An O(1) sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range exceeds this view's bounds.
    pub fn slice(&self, range: Range<usize>) -> TupleBatch {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        TupleBatch {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits into consecutive sub-views of at most `max` tuples each
    /// (message-size chunking for dispatch). O(1) per chunk.
    pub fn chunks_shared(&self, max: usize) -> impl Iterator<Item = TupleBatch> + '_ {
        let max = max.max(1);
        (0..self.len())
            .step_by(max)
            .map(move |i| self.slice(i..(i + max).min(self.len())))
    }

    /// True if the two views share one backing allocation (diagnostics and
    /// sharing assertions in tests/benches).
    pub fn shares_backing(&self, other: &TupleBatch) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Length of the backing allocation this view pins (≥ [`TupleBatch::len`]).
    /// Compaction heuristics compare the two to decide when holding a
    /// narrow view of a large batch should copy out instead.
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }

    /// Index of the first tentative tuple, if any (checkpoint-before-
    /// tentative split point, §4.4.1).
    pub fn first_tentative(&self) -> Option<usize> {
        self.as_slice().iter().position(Tuple::is_tentative)
    }

    /// Number of data-carrying tuples (stable + tentative) in the view —
    /// the CPU cost model's work unit.
    pub fn data_count(&self) -> u64 {
        self.as_slice().iter().filter(|t| t.is_data()).count() as u64
    }

    /// Copies the viewed tuples into an owned vector (interop; the hot path
    /// never needs this).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.as_slice().to_vec()
    }
}

impl Deref for TupleBatch {
    type Target = [Tuple];

    fn deref(&self) -> &[Tuple] {
        self.as_slice()
    }
}

impl Default for TupleBatch {
    fn default() -> TupleBatch {
        TupleBatch::empty()
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(v: Vec<Tuple>) -> TupleBatch {
        TupleBatch::from_vec(v)
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> TupleBatch {
        TupleBatch::from_vec(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for TupleBatch {
    fn eq(&self, other: &TupleBatch) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for TupleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// A selection view over a shared batch: the unit shard routing ships.
///
/// Holds the producing batch's allocation plus an optional sorted run
/// list selecting which of its tuples are visible. A contiguous selection
/// collapses to plain range arithmetic (`sel == None` over a
/// [`TupleBatch::slice`]) — the whole-batch and single-run cases allocate
/// nothing; a fragmented selection stores one `(start, end)` pair per run,
/// never a per-tuple copy. All R replicas of one shard share a single view
/// through its internal `Arc`s: `clone` is reference-count bumps, so a
/// K-shard fan-out of one batch costs one key-hash pass plus K run lists
/// regardless of replication degree.
#[derive(Clone)]
pub struct BatchView {
    base: TupleBatch,
    /// Sorted, disjoint, non-empty `[start, end)` runs relative to `base`;
    /// `None` selects all of `base`. Invariant: `Some` holds at least two
    /// runs (anything less collapses into `base` itself).
    sel: Option<Arc<[(u32, u32)]>>,
    len: usize,
}

impl BatchView {
    /// A view over an entire batch (no selection metadata).
    pub fn whole(base: TupleBatch) -> BatchView {
        let len = base.len();
        BatchView {
            base,
            sel: None,
            len,
        }
    }

    /// An empty view (shares the cached empty allocation).
    pub fn empty() -> BatchView {
        BatchView::whole(TupleBatch::empty())
    }

    /// Builds a view from sorted, disjoint, non-empty runs relative to
    /// `base`. Zero or one runs collapse to the run-list-free form; a full
    /// single run is `base` itself.
    ///
    /// # Panics
    /// Panics (debug builds) if the runs are unsorted, overlapping, empty,
    /// or out of `base`'s bounds.
    pub fn from_runs(base: TupleBatch, runs: Vec<(u32, u32)>) -> BatchView {
        #[cfg(debug_assertions)]
        {
            let mut prev = 0u32;
            for &(s, e) in &runs {
                assert!(
                    s >= prev && s < e && e as usize <= base.len(),
                    "bad run list"
                );
                prev = e;
            }
        }
        match runs.len() {
            0 => BatchView::empty(),
            1 => {
                let (s, e) = runs[0];
                BatchView::whole(base.slice(s as usize..e as usize))
            }
            _ => {
                let len = runs.iter().map(|&(s, e)| (e - s) as usize).sum();
                BatchView {
                    base,
                    sel: Some(Arc::from(runs)),
                    len,
                }
            }
        }
    }

    /// Number of selected tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the view selects nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The selected run bounds, relative to the base view (one implicit
    /// whole-base run when there is no run list).
    fn bounds(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let empty: &[(u32, u32)] = &[];
        let (implicit, sel) = match &self.sel {
            None if self.base.is_empty() => (None, empty),
            None => (Some((0, self.base.len())), empty),
            Some(s) => (None, &s[..]),
        };
        implicit
            .into_iter()
            .chain(sel.iter().map(|&(s, e)| (s as usize, e as usize)))
    }

    /// The selected tuples as contiguous runs (no allocation, no `Arc`
    /// traffic) — the wire encoder and batch-native consumers walk these.
    pub fn runs(&self) -> impl Iterator<Item = &[Tuple]> + '_ {
        self.bounds().map(|(s, e)| &self.base.as_slice()[s..e])
    }

    /// The selected runs as zero-copy [`TupleBatch`] slices sharing the
    /// base allocation (SUnion's batch-native intake consumes these).
    pub fn run_batches(&self) -> impl Iterator<Item = TupleBatch> + '_ {
        self.bounds().map(|(s, e)| self.base.slice(s..e))
    }

    /// Iterates the selected tuples in order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.runs().flatten()
    }

    /// Number of data-carrying tuples (stable + tentative) in the view —
    /// the CPU cost model's work unit.
    pub fn data_count(&self) -> u64 {
        self.iter().filter(|t| t.is_data()).count() as u64
    }

    /// A contiguous batch of the selected tuples. Zero-copy when the view
    /// is already contiguous (the overwhelmingly common case); a
    /// fragmented selection copies out once.
    pub fn to_batch(&self) -> TupleBatch {
        match &self.sel {
            None => self.base.clone(),
            Some(_) => {
                let mut v = Vec::with_capacity(self.len);
                for run in self.runs() {
                    v.extend_from_slice(run);
                }
                TupleBatch::from_vec(v)
            }
        }
    }

    /// Identity (not content) comparison: true when both views are the
    /// same selection of the same backing range. The shard router's memo
    /// uses this — entries hold a clone of the compared view, so a true
    /// result can never be an address-reuse coincidence.
    pub fn same_view(&self, other: &BatchView) -> bool {
        self.base.shares_backing(&other.base)
            && self.base.start == other.base.start
            && self.base.end == other.base.end
            && match (&self.sel, &other.sel) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl From<TupleBatch> for BatchView {
    fn from(b: TupleBatch) -> BatchView {
        BatchView::whole(b)
    }
}

impl Default for BatchView {
    fn default() -> BatchView {
        BatchView::empty()
    }
}

impl PartialEq for BatchView {
    fn eq(&self, other: &BatchView) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl fmt::Debug for BatchView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// An append-only log of tuples stored as shared batches, addressed by
/// logical (all-time) position.
///
/// Appends go to a mutable tail; reads for replay seal the tail and hand
/// out O(1) views. The log itself never drops entries (sources keep their
/// input "logged persistently", §2.2) — consumers track positions.
#[derive(Debug, Default)]
pub struct BatchLog {
    sealed: Vec<TupleBatch>,
    /// Logical start position of each sealed segment (parallel to
    /// `sealed`, strictly increasing) — lets suffix lookups binary-search
    /// instead of rescanning the whole log.
    starts: Vec<usize>,
    sealed_len: usize,
    tail: Vec<Tuple>,
}

impl BatchLog {
    /// An empty log.
    pub fn new() -> BatchLog {
        BatchLog::default()
    }

    /// Total tuples ever appended.
    pub fn len(&self) -> usize {
        self.sealed_len + self.tail.len()
    }

    /// True if nothing was ever appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one tuple to the mutable tail.
    pub fn push(&mut self, t: Tuple) {
        self.tail.push(t);
    }

    /// Appends an already-sealed batch, sharing its backing storage.
    pub fn push_batch(&mut self, batch: TupleBatch) {
        if batch.is_empty() {
            return;
        }
        self.seal();
        self.starts.push(self.sealed_len);
        self.sealed_len += batch.len();
        self.sealed.push(batch);
    }

    /// Seals the mutable tail into a shared batch (no-op when empty).
    pub fn seal(&mut self) {
        if !self.tail.is_empty() {
            let batch = TupleBatch::from_vec(std::mem::take(&mut self.tail));
            self.starts.push(self.sealed_len);
            self.sealed_len += batch.len();
            self.sealed.push(batch);
        }
    }

    /// Shared views over everything from logical position `pos` on, in
    /// order. Binary-searches the segment offsets, so the cost is
    /// O(log segments + suffix segments), independent of log length; seals
    /// the tail first.
    pub fn batches_from(&mut self, pos: usize) -> Vec<TupleBatch> {
        self.seal();
        if pos >= self.sealed_len {
            return Vec::new();
        }
        // Last segment whose start is <= pos.
        let si = self.starts.partition_point(|&s| s <= pos) - 1;
        let mut out = Vec::with_capacity(self.sealed.len() - si);
        let local = pos - self.starts[si];
        let first = &self.sealed[si];
        out.push(if local == 0 {
            first.clone()
        } else {
            first.slice(local..first.len())
        });
        out.extend(self.sealed[si + 1..].iter().cloned());
        out
    }

    /// Iterates every tuple in the log, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = &Tuple> {
        self.sealed
            .iter()
            .flat_map(|b| b.as_slice().iter())
            .chain(self.tail.iter())
    }

    /// Logical position just after the last stable tuple with `id <=
    /// through` — the resume/rewind point for a subscriber holding that
    /// stable prefix (0 when no such tuple exists).
    ///
    /// Scans backward and stops at the first qualifying tuple (stable ids
    /// are monotone), so the cost is proportional to the suffix beyond
    /// the subscriber's prefix, not the whole log.
    pub fn position_after_stable(&self, through: TupleId) -> usize {
        for (i, t) in self.tail.iter().enumerate().rev() {
            if t.is_stable_data() && t.id <= through {
                return self.sealed_len + i + 1;
            }
        }
        for si in (0..self.sealed.len()).rev() {
            let seg = &self.sealed[si];
            for (li, t) in seg.as_slice().iter().enumerate().rev() {
                if t.is_stable_data() && t.id <= through {
                    return self.starts[si] + li + 1;
                }
            }
        }
        0
    }

    /// The stime of the last appended tuple, if any (diagnostics).
    pub fn last_stime(&self) -> Option<Time> {
        self.iter().next_back().map(|t| t.stime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::tuple::TupleId;
    use crate::value::Value;

    fn stable(id: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(id),
            vec![Value::Int(id as i64)],
        )
    }

    #[test]
    fn empty_batches_share_one_cached_allocation() {
        let a = TupleBatch::empty();
        let b = TupleBatch::empty();
        assert!(a.shares_backing(&b), "no fresh allocation per empty()");
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn view_collapses_contiguous_runs() {
        let b = TupleBatch::from_vec((1..=8).map(stable).collect());
        let whole = BatchView::from(b.clone());
        assert_eq!(whole.len(), 8);
        assert!(
            whole.to_batch().shares_backing(&b),
            "whole view is the batch"
        );

        let single = BatchView::from_runs(b.clone(), vec![(2, 6)]);
        assert_eq!(single.len(), 4);
        assert!(
            single.to_batch().shares_backing(&b),
            "one run is a zero-copy slice"
        );
        assert_eq!(
            single.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );

        let none = BatchView::from_runs(b.clone(), vec![]);
        assert!(none.is_empty());
        assert_eq!(none.to_batch().len(), 0);
    }

    #[test]
    fn fragmented_view_iterates_runs_in_order() {
        let b = TupleBatch::from_vec((1..=8).map(stable).collect());
        let v = BatchView::from_runs(b.clone(), vec![(0, 2), (3, 4), (6, 8)]);
        assert_eq!(v.len(), 5);
        assert_eq!(
            v.iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![1, 2, 4, 7, 8]
        );
        let runs: Vec<usize> = v.run_batches().map(|r| r.len()).collect();
        assert_eq!(runs, vec![2, 1, 2]);
        assert!(
            v.run_batches().all(|r| r.shares_backing(&b)),
            "runs share the base"
        );
        assert_eq!(v.to_batch().len(), 5, "materializes only on demand");
        assert_eq!(v.data_count(), 5);
    }

    #[test]
    fn view_identity_vs_equality() {
        let b = TupleBatch::from_vec((1..=4).map(stable).collect());
        let v1 = BatchView::from(b.clone());
        let v2 = BatchView::from(b.clone());
        let copy = BatchView::from(TupleBatch::from_vec(b.to_vec()));
        assert!(v1.same_view(&v2));
        assert!(!v1.same_view(&copy), "identity tracks the allocation");
        assert_eq!(v1, copy, "equality tracks contents");
        assert!(!v1.same_view(&BatchView::from(b.slice(1..3))));
    }

    #[test]
    fn clone_and_slice_share_backing() {
        let b = TupleBatch::from_vec((1..=8).map(stable).collect());
        let c = b.clone();
        let s = b.slice(2..6);
        assert!(b.shares_backing(&c));
        assert!(b.shares_backing(&s));
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].id, TupleId(3));
        assert_eq!(s.slice(1..3)[0].id, TupleId(4));
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let b = TupleBatch::from_vec((1..=7).map(stable).collect());
        let chunks: Vec<TupleBatch> = b.chunks_shared(3).collect();
        assert_eq!(
            chunks.iter().map(TupleBatch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let ids: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(ids, (1..=7).collect::<Vec<_>>());
        assert!(chunks.iter().all(|c| c.shares_backing(&b)));
    }

    #[test]
    fn scans_find_tentative_and_count_data() {
        let mut v: Vec<Tuple> = (1..=3).map(stable).collect();
        v.push(Tuple::boundary(TupleId::NONE, Time::from_secs(1)));
        v.push(Tuple::tentative(TupleId(4), Time::from_secs(1), vec![]));
        let b = TupleBatch::from_vec(v);
        assert_eq!(b.first_tentative(), Some(4));
        assert_eq!(b.data_count(), 4);
        assert_eq!(b.slice(0..3).first_tentative(), None);
    }

    #[test]
    fn equality_ignores_backing_identity() {
        let a = TupleBatch::from_vec(vec![stable(1), stable(2)]);
        let b = TupleBatch::from_vec(vec![stable(1), stable(2)]);
        assert_eq!(a, b);
        assert!(!a.shares_backing(&b));
        assert_ne!(a, a.slice(0..1));
    }

    #[test]
    fn batch_views_outlive_log_truncation_semantics() {
        // A view taken before the source of the data is dropped stays
        // valid: ownership is shared, not borrowed.
        let view;
        {
            let b = TupleBatch::from_vec((1..=4).map(stable).collect());
            view = b.slice(1..3);
        }
        assert_eq!(view.len(), 2);
        assert_eq!(view[1].id, TupleId(3));
    }

    #[test]
    fn log_positions_and_replay_views() {
        let mut log = BatchLog::new();
        for i in 1..=3 {
            log.push(stable(i));
        }
        log.push_batch(TupleBatch::from_vec(vec![stable(4), stable(5)]));
        log.push(stable(6));
        assert_eq!(log.len(), 6);

        let all = log.batches_from(0);
        let ids: Vec<u64> = all.iter().flat_map(|b| b.iter().map(|t| t.id.0)).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);

        // Mid-segment position slices, later segments pass through whole.
        let suffix = log.batches_from(1);
        let ids: Vec<u64> = suffix
            .iter()
            .flat_map(|b| b.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(ids, vec![2, 3, 4, 5, 6]);

        assert_eq!(log.position_after_stable(TupleId(4)), 4);
        assert_eq!(log.position_after_stable(TupleId::NONE), 0);
        assert_eq!(log.batches_from(6), Vec::<TupleBatch>::new());

        // The backward scan sees the unsealed tail too, and boundaries
        // interleaved with data do not confuse the resume position.
        log.push(Tuple::boundary(TupleId::NONE, Time::from_secs(1)));
        log.push(stable(7));
        assert_eq!(log.position_after_stable(TupleId(7)), 8, "tail tuple found");
        assert_eq!(
            log.position_after_stable(TupleId(6)),
            6,
            "sealed tuple found"
        );
        assert_eq!(
            log.position_after_stable(TupleId(100)),
            8,
            "clamps to last stable"
        );
    }

    #[test]
    fn log_replay_shares_storage_with_the_log() {
        let mut log = BatchLog::new();
        for i in 1..=4 {
            log.push(stable(i));
        }
        let a = log.batches_from(0);
        let b = log.batches_from(2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(
            a[0].shares_backing(&b[0]),
            "two replay cursors share one allocation"
        );
    }
}
