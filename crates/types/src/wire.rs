//! The binary wire format shared by every socket link.
//!
//! The TCP transport moves [`Tuple`]s and protocol messages between OS
//! processes as length-prefixed binary **frames**. This module owns the
//! protocol-agnostic half: primitive little-endian put/get helpers over a
//! reusable byte buffer, the frame header, the tuple/value payload layout,
//! and the decode-side [`WireError`] (corrupted input is rejected, never a
//! panic). The `NetMsg`-specific codec lives in `borealis-dpc`.
//!
//! ## Frame layout
//!
//! ```text
//! +----------+----------+----------+--------+=============+
//! | len: u32 | from:u32 | to: u32  | kind:u8|   payload   |
//! +----------+----------+----------+--------+=============+
//!  `len` counts every byte after itself (from + to + kind + payload),
//!  so a frame occupies `4 + len` bytes on the wire. All integers are
//!  little-endian. `from`/`to` are the [`NodeId`]s of the sending and
//!  receiving actor; `kind` selects the payload codec.
//! ```
//!
//! ## Tuple layout
//!
//! ```text
//! tuple   := kind:u8  id:u64  stime:u64(µs)  origin:u16  nvalues:u32  value*
//! value   := 0x00 i64          (Int, two's complement)
//!          | 0x01 u64          (Float, IEEE-754 bit pattern — bit-exact)
//!          | 0x02 u8           (Bool, 0 or 1)
//!          | 0x03 len:u32 utf8 (Str)
//! batch   := count:u32 tuple*
//! ```
//!
//! Floats travel as raw bit patterns so a round trip is bit-identical
//! (including NaN payloads) — the same totality [`Value`]'s `Eq`/`Ord`
//! rely on.

use crate::batch::TupleBatch;
use crate::ids::NodeId;
use crate::time::Time;
use crate::tuple::{Tuple, TupleId, TupleKind};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Bytes of frame header that follow the length prefix: from (4) + to (4)
/// + kind (1).
pub const FRAME_OVERHEAD: usize = 9;

/// Hard ceiling on the `len` prefix. A frame longer than this is treated
/// as corruption (a desynchronized or malicious stream), not as a request
/// to allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Why a decode was rejected. Decoding never panics on foreign bytes: any
/// truncation, bad tag, or over-long length comes back as one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced structure did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`] or is shorter than the
    /// frame header it must contain.
    BadLength(usize),
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// Which tag space the byte came from ("frame kind", "tuple
        /// kind", "value").
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A payload decoded cleanly but left unconsumed bytes behind.
    Trailing(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadLength(n) => write!(f, "bad frame length {n}"),
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string payload is not UTF-8"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Encode side: append-only little-endian writers over a plain Vec<u8>.
// The Vec is caller-owned and reused flush to flush, so the steady state
// allocates nothing.
// ---------------------------------------------------------------------

/// Appends a `u8`.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u16`.
#[inline]
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (`len:u32` + bytes).
#[inline]
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Opens a frame: writes a length placeholder plus the `from`/`to`/`kind`
/// header and returns the mark to pass to [`end_frame`]. The payload is
/// appended to `buf` between the two calls — straight from the source
/// structures, with no intermediate allocation.
#[inline]
pub fn begin_frame(buf: &mut Vec<u8>, from: NodeId, to: NodeId, kind: u8) -> usize {
    let mark = buf.len();
    put_u32(buf, 0); // patched by end_frame
    put_u32(buf, from.0);
    put_u32(buf, to.0);
    put_u8(buf, kind);
    mark
}

/// Closes the frame opened at `mark`, patching the length prefix.
#[inline]
pub fn end_frame(buf: &mut [u8], mark: usize) {
    let len = (buf.len() - mark - 4) as u32;
    buf[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes one attribute value (see the module docs for the layout).
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(buf, 0x00);
            put_u64(buf, *i as u64);
        }
        Value::Float(x) => {
            put_u8(buf, 0x01);
            put_u64(buf, x.to_bits());
        }
        Value::Bool(b) => {
            put_u8(buf, 0x02);
            put_u8(buf, *b as u8);
        }
        Value::Str(s) => {
            put_u8(buf, 0x03);
            put_str(buf, s);
        }
    }
}

/// Encodes one tuple.
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    let kind = match t.kind {
        TupleKind::Insertion => 0u8,
        TupleKind::Tentative => 1,
        TupleKind::Boundary => 2,
        TupleKind::Undo => 3,
        TupleKind::RecDone => 4,
    };
    put_u8(buf, kind);
    put_u64(buf, t.id.0);
    put_u64(buf, t.stime.as_micros());
    put_u16(buf, t.origin);
    put_u32(buf, t.values.len() as u32);
    for v in &t.values {
        put_value(buf, v);
    }
}

/// Encodes a batch **view**: only the tuples visible through the view's
/// `[start, end)` window, iterated in place from the `Arc`'d backing slice
/// — the batch is never copied or re-collected before encoding.
pub fn put_batch(buf: &mut Vec<u8>, b: &TupleBatch) {
    put_u32(buf, b.len() as u32);
    for t in b.as_slice() {
        put_tuple(buf, t);
    }
}

/// Encodes a selection view straight into the write buffer — the count
/// header then each selected run's tuples in order. Wire-compatible with
/// [`put_batch`]/[`Reader::batch`]: the receiver decodes a contiguous
/// batch, so a fragmented selection is never materialized on the sender.
pub fn put_view(buf: &mut Vec<u8>, v: &crate::batch::BatchView) {
    put_u32(buf, v.len() as u32);
    for run in v.runs() {
        for t in run {
            put_tuple(buf, t);
        }
    }
}

// ---------------------------------------------------------------------
// Decode side: a bounds-checked cursor. Every read that would run off the
// end returns WireError::Truncated instead of slicing out of range.
// ---------------------------------------------------------------------

/// A bounds-checked decode cursor over a byte slice.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `n` raw bytes — the escape hatch for nested records (the
    /// durable snapshot format length-prefixes each operator's state so a
    /// decoder can skip or sandbox it).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)
    }

    /// Reads one attribute value.
    pub fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0x00 => Ok(Value::Int(self.u64()? as i64)),
            0x01 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            0x02 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                tag => Err(WireError::BadTag { what: "bool", tag }),
            },
            0x03 => Ok(Value::Str(Arc::from(self.str()?))),
            tag => Err(WireError::BadTag { what: "value", tag }),
        }
    }

    /// Reads one tuple.
    pub fn tuple(&mut self) -> Result<Tuple, WireError> {
        let kind = match self.u8()? {
            0 => TupleKind::Insertion,
            1 => TupleKind::Tentative,
            2 => TupleKind::Boundary,
            3 => TupleKind::Undo,
            4 => TupleKind::RecDone,
            tag => {
                return Err(WireError::BadTag {
                    what: "tuple kind",
                    tag,
                })
            }
        };
        let id = TupleId(self.u64()?);
        let stime = Time(self.u64()?);
        let origin = self.u16()?;
        let nvalues = self.u32()? as usize;
        // A tuple value is at least 2 bytes on the wire; cap the
        // pre-allocation by what the buffer could actually hold so a
        // corrupted count cannot force a huge reservation.
        if nvalues > self.remaining() / 2 + 1 {
            return Err(WireError::Truncated);
        }
        let mut values = Vec::with_capacity(nvalues);
        for _ in 0..nvalues {
            values.push(self.value()?);
        }
        Ok(Tuple {
            kind,
            id,
            stime,
            origin,
            values,
        })
    }

    /// Reads a tuple batch.
    pub fn batch(&mut self) -> Result<TupleBatch, WireError> {
        let count = self.u32()? as usize;
        // A wire tuple is at least 23 bytes; reject counts the buffer
        // cannot possibly satisfy before allocating for them.
        if count > self.remaining() / 23 + 1 {
            return Err(WireError::Truncated);
        }
        let mut tuples = Vec::with_capacity(count);
        for _ in 0..count {
            tuples.push(self.tuple()?);
        }
        Ok(TupleBatch::from_vec(tuples))
    }

    /// Asserts the payload was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::Trailing(n)),
        }
    }
}

/// Splits the next complete frame off `bytes`, if one has fully arrived.
///
/// Returns `Ok(None)` when more bytes are needed, and
/// `Ok(Some((from, to, kind, payload, consumed)))` for a complete frame —
/// `payload` borrows from `bytes` and `consumed` is the total frame size
/// to drain from the receive buffer. A length prefix outside
/// `[FRAME_OVERHEAD, MAX_FRAME_LEN]` is corruption ([`WireError::BadLength`]).
#[allow(clippy::type_complexity)]
pub fn split_frame(bytes: &[u8]) -> Result<Option<(NodeId, NodeId, u8, &[u8], usize)>, WireError> {
    if bytes.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    if !(FRAME_OVERHEAD..=MAX_FRAME_LEN).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    if bytes.len() < 4 + len {
        return Ok(None);
    }
    let from = NodeId(u32::from_le_bytes(bytes[4..8].try_into().expect("4")));
    let to = NodeId(u32::from_le_bytes(bytes[8..12].try_into().expect("4")));
    let kind = bytes[12];
    Ok(Some((from, to, kind, &bytes[13..4 + len], 4 + len)))
}

// ---------------------------------------------------------------------
// Wire gauges.
// ---------------------------------------------------------------------

/// Point-in-time counters of the socket transport, surfaced next to
/// [`FlowGauges`](crate::FlowGauges) and [`SchedGauges`](crate::SchedGauges)
/// so wire behavior — bytes moved, how many frames each flush syscall
/// carried, grant traffic — is measurable, never silent.
///
/// All counters are cumulative over the run, summed across every
/// connection of the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireGauges {
    /// Connections currently established.
    pub conns: u64,
    /// Payload bytes written to sockets.
    pub bytes_sent: u64,
    /// Payload bytes read from sockets.
    pub bytes_recv: u64,
    /// Frames encoded and written.
    pub frames_sent: u64,
    /// Frames decoded from the receive stream.
    pub frames_recv: u64,
    /// Writer flushes (one gathered `write_vectored` pass over the swap
    /// buffer; `frames_sent / flushes` is the coalescing ratio).
    pub flushes: u64,
    /// `CreditGrant` frames sent (the wire replacement of the in-process
    /// `Replenish` path).
    pub grants_sent: u64,
    /// `CreditGrant` frames received.
    pub grants_recv: u64,
    /// `StallReport` frames received (remote credit stall telemetry).
    pub stall_reports: u64,
    /// Frames purged from send queues when a connection reset (counted as
    /// delivery drops, exactly like an in-process crash purge).
    pub purged_frames: u64,
    /// Connections torn down by reset or EOF.
    pub resets: u64,
}

impl WireGauges {
    /// Average frames carried per flush syscall (0 if nothing flushed).
    pub fn frames_per_flush(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.flushes as f64
        }
    }

    /// Adds `other`'s counters into `self` (summing per-connection gauges
    /// into a process-wide snapshot).
    pub fn absorb(&mut self, other: &WireGauges) {
        self.conns += other.conns;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
        self.flushes += other.flushes;
        self.grants_sent += other.grants_sent;
        self.grants_recv += other.grants_recv;
        self.stall_reports += other.stall_reports;
        self.purged_frames += other.purged_frames;
        self.resets += other.resets;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "héllo");
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn values_round_trip_bit_exact() {
        let vals = [
            Value::Int(-42),
            Value::Float(f64::from_bits(0x7FF8_0000_DEAD_BEEF)), // NaN payload
            Value::Float(-0.0),
            Value::Bool(true),
            Value::str("stream"),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            // Eq on Value already compares floats by bits.
            assert_eq!(*v, r.value().unwrap());
        }
        r.finish().unwrap();
    }

    #[test]
    fn batch_view_encodes_only_the_window() {
        let tuples: Vec<Tuple> = (0..10)
            .map(|i| Tuple::insertion(TupleId(i), Time::from_millis(i), vec![Value::Int(i as i64)]))
            .collect();
        let full = TupleBatch::from_vec(tuples);
        let view = full.slice(3..7);
        let mut buf = Vec::new();
        put_batch(&mut buf, &view);
        let mut r = Reader::new(&buf);
        let back = r.batch().unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.as_slice(), view.as_slice());
    }

    #[test]
    fn frame_header_round_trips() {
        let mut buf = Vec::new();
        let mark = begin_frame(&mut buf, NodeId(3), NodeId(9), 0x42);
        put_u64(&mut buf, 77);
        end_frame(&mut buf, mark);
        let (from, to, kind, payload, consumed) = split_frame(&buf).unwrap().unwrap();
        assert_eq!((from, to, kind), (NodeId(3), NodeId(9), 0x42));
        assert_eq!(consumed, buf.len());
        let mut r = Reader::new(payload);
        assert_eq!(r.u64().unwrap(), 77);
        r.finish().unwrap();
    }

    #[test]
    fn partial_frames_wait_and_bad_lengths_reject() {
        let mut buf = Vec::new();
        let mark = begin_frame(&mut buf, NodeId(1), NodeId(2), 7);
        put_u32(&mut buf, 5);
        end_frame(&mut buf, mark);
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
        let mut corrupt = buf.clone();
        corrupt[..4].copy_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(matches!(
            split_frame(&corrupt),
            Err(WireError::BadLength(_))
        ));
        let mut short = buf;
        short[..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(split_frame(&short), Err(WireError::BadLength(3))));
    }

    #[test]
    fn truncated_tuple_rejects_without_panic() {
        let t = Tuple::insertion(TupleId(5), Time::from_secs(1), vec![Value::str("abc")]);
        let mut buf = Vec::new();
        put_tuple(&mut buf, &t);
        for cut in 0..buf.len() {
            assert!(Reader::new(&buf[..cut]).tuple().is_err(), "cut at {cut}");
        }
        let mut r = Reader::new(&buf);
        assert_eq!(r.tuple().unwrap(), t);
        r.finish().unwrap();
    }

    #[test]
    fn wire_gauges_absorb_and_ratio() {
        let mut a = WireGauges {
            frames_sent: 30,
            flushes: 10,
            ..WireGauges::default()
        };
        let b = WireGauges {
            frames_sent: 10,
            flushes: 10,
            bytes_sent: 100,
            ..WireGauges::default()
        };
        a.absorb(&b);
        assert_eq!(a.frames_sent, 40);
        assert_eq!(a.bytes_sent, 100);
        assert_eq!(a.frames_per_flush(), 2.0);
        assert_eq!(WireGauges::default().frames_per_flush(), 0.0);
    }
}
