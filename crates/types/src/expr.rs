//! A small, deterministic expression language over tuple attributes.
//!
//! DPC restricts query diagrams to *deterministic* operators (§2.1): results
//! may depend on input data and order, but never on arrival times, timeouts,
//! or randomness. Encoding predicates and projections as [`Expr`] trees —
//! rather than arbitrary closures — makes operator specifications cloneable
//! across replicas, comparable in tests, and deterministic by construction.

use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Binary operators usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression evaluated against a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The `i`-th attribute of the tuple.
    Field(usize),
    /// The tuple's `stime`, in microseconds, as an integer.
    STime,
    /// A literal.
    Const(Value),
    /// A binary operation.
    Bin(BinOp, Arc<Expr>, Arc<Expr>),
    /// Logical negation.
    Not(Arc<Expr>),
}

/// Errors produced by expression evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Referenced a field index past the end of the tuple.
    MissingField(usize),
    /// Operator applied to values of an unsupported type combination.
    TypeMismatch(&'static str),
    /// Integer division or modulo by zero.
    DivideByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingField(i) => write!(f, "tuple has no field {i}"),
            EvalError::TypeMismatch(op) => write!(f, "type mismatch in {op}"),
            EvalError::DivideByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Convenience constructor: `Field(i)`.
    pub fn field(i: usize) -> Expr {
        Expr::Field(i)
    }

    /// Convenience constructor: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Convenience constructor: float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Const(Value::Float(v))
    }

    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Arc::new(lhs), Arc::new(rhs))
    }

    /// `lhs op rhs` comparison and arithmetic helpers.
    #[allow(missing_docs)]
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, lhs, rhs)
    }
    #[allow(missing_docs, clippy::should_implement_trait)]
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, lhs, rhs)
    }
    #[allow(missing_docs, clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, lhs, rhs)
    }
    #[allow(missing_docs, clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, lhs, rhs)
    }
    #[allow(missing_docs)]
    pub fn modulo(lhs: Expr, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, lhs, rhs)
    }

    /// Evaluates the expression against `tuple`.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, EvalError> {
        match self {
            Expr::Field(i) => tuple
                .values
                .get(*i)
                .cloned()
                .ok_or(EvalError::MissingField(*i)),
            Expr::STime => Ok(Value::Int(tuple.stime.as_micros() as i64)),
            Expr::Const(v) => Ok(v.clone()),
            Expr::Not(e) => match e.eval(tuple)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(EvalError::TypeMismatch("not")),
            },
            Expr::Bin(op, lhs, rhs) => {
                let l = lhs.eval(tuple)?;
                let r = rhs.eval(tuple)?;
                eval_bin(*op, l, r)
            }
        }
    }

    /// Evaluates the expression and coerces the result to a boolean;
    /// non-boolean results are an error.
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool, EvalError> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            _ => Err(EvalError::TypeMismatch("predicate")),
        }
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => arith(op, l, r),
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => Ok(Value::Bool(l < r)),
        Le => Ok(Value::Bool(l <= r)),
        Gt => Ok(Value::Bool(l > r)),
        Ge => Ok(Value::Bool(l >= r)),
        And | Or => match (l, r) {
            (Value::Bool(a), Value::Bool(b)) => {
                Ok(Value::Bool(if op == And { a && b } else { a || b }))
            }
            _ => Err(EvalError::TypeMismatch("logical operator")),
        },
    }
}

fn arith(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Ok(Value::Int(a.wrapping_add(b))),
            Sub => Ok(Value::Int(a.wrapping_sub(b))),
            Mul => Ok(Value::Int(a.wrapping_mul(b))),
            Div => {
                if b == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            Mod => {
                if b == 0 {
                    Err(EvalError::DivideByZero)
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!("non-arithmetic op routed to arith"),
        },
        (a, b) => {
            let (x, y) = (
                a.as_f64().ok_or(EvalError::TypeMismatch("arith"))?,
                b.as_f64().ok_or(EvalError::TypeMismatch("arith"))?,
            );
            let v = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Mod => x % y,
                _ => unreachable!("non-arithmetic op routed to arith"),
            };
            Ok(Value::Float(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;
    use crate::tuple::TupleId;

    fn tup(values: Vec<Value>) -> Tuple {
        Tuple::insertion(TupleId(1), Time::from_millis(42), values)
    }

    #[test]
    fn field_access_and_missing_field() {
        let t = tup(vec![Value::Int(10), Value::str("x")]);
        assert_eq!(Expr::field(0).eval(&t), Ok(Value::Int(10)));
        assert_eq!(Expr::field(1).eval(&t), Ok(Value::str("x")));
        assert_eq!(Expr::field(2).eval(&t), Err(EvalError::MissingField(2)));
    }

    #[test]
    fn integer_arithmetic() {
        let t = tup(vec![Value::Int(7)]);
        let e = Expr::add(Expr::field(0), Expr::int(5));
        assert_eq!(e.eval(&t), Ok(Value::Int(12)));
        let e = Expr::modulo(Expr::field(0), Expr::int(4));
        assert_eq!(e.eval(&t), Ok(Value::Int(3)));
        let e = Expr::bin(BinOp::Div, Expr::field(0), Expr::int(0));
        assert_eq!(e.eval(&t), Err(EvalError::DivideByZero));
    }

    #[test]
    fn mixed_arithmetic_widens_to_float() {
        let t = tup(vec![Value::Int(3), Value::Float(0.5)]);
        let e = Expr::mul(Expr::field(0), Expr::field(1));
        assert_eq!(e.eval(&t), Ok(Value::Float(1.5)));
    }

    #[test]
    fn comparisons_and_logic() {
        let t = tup(vec![Value::Int(3)]);
        let gt = Expr::gt(Expr::field(0), Expr::int(2));
        assert_eq!(gt.eval_bool(&t), Ok(true));
        let conj = Expr::and(gt.clone(), Expr::lt(Expr::field(0), Expr::int(3)));
        assert_eq!(conj.eval_bool(&t), Ok(false));
        let neg = Expr::Not(Arc::new(conj));
        assert_eq!(neg.eval_bool(&t), Ok(true));
    }

    #[test]
    fn stime_is_exposed_in_micros() {
        let t = tup(vec![]);
        assert_eq!(Expr::STime.eval(&t), Ok(Value::Int(42_000)));
    }

    #[test]
    fn non_bool_predicate_is_an_error() {
        let t = tup(vec![Value::Int(1)]);
        assert_eq!(
            Expr::field(0).eval_bool(&t),
            Err(EvalError::TypeMismatch("predicate"))
        );
    }
}
