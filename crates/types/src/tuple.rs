//! The DPC data model (§4.1, Table I of the paper).
//!
//! A Borealis stream is an append-only sequence of tuples
//! `(tuple_type, tuple_id, tuple_stime, a1, ..., am)`. DPC extends the
//! traditional insertion-only model with four additional tuple types:
//!
//! * **TENTATIVE** — result of processing a subset of inputs; may later be
//!   amended with a stable version.
//! * **BOUNDARY** — punctuation + heartbeat: no later tuple on the stream
//!   will carry an `stime` smaller than the boundary's.
//! * **UNDO** — instructs consumers to roll back the suffix of the stream
//!   that follows the identified tuple.
//! * **REC_DONE** — marks the end of a reconciliation's correction sequence.

use crate::time::Time;
use crate::value::Value;
use std::fmt;

/// Identifies a tuple uniquely within its stream.
///
/// The paper relies on reliable in-order transport so that a single tuple id
/// describes an exact stream position (§2.2); ids are assigned by the
/// producing source or operator from a monotone per-stream counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TupleId(pub u64);

impl TupleId {
    /// Sentinel meaning "before the first tuple of the stream"; used in
    /// subscriptions and undo targets for an empty stable prefix.
    pub const NONE: TupleId = TupleId(0);

    /// The next id after `self`.
    pub fn next(self) -> TupleId {
        TupleId(self.0 + 1)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The tuple type tag (Table I, data streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TupleKind {
    /// Regular stable tuple.
    Insertion,
    /// Best-effort tuple produced from a subset of inputs.
    Tentative,
    /// Punctuation/heartbeat: all following tuples have `stime >=` this one's.
    Boundary,
    /// Roll back the stream suffix after [`Tuple::undo_target`].
    Undo,
    /// End of a reconciliation's corrections.
    RecDone,
}

impl TupleKind {
    /// True for the two data-carrying kinds (stable or tentative insertions).
    pub fn is_data(self) -> bool {
        matches!(self, TupleKind::Insertion | TupleKind::Tentative)
    }
}

/// A stream tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Type tag.
    pub kind: TupleKind,
    /// Unique id within the producing stream.
    pub id: TupleId,
    /// Serialization timestamp (`tuple_stime`, §4.1): the attribute SUnion
    /// buckets and orders on. Assigned by data sources from their (loosely
    /// synchronized) clocks, and propagated deterministically by operators.
    pub stime: Time,
    /// Tag identifying which input stream of the upstream SUnion this tuple
    /// arrived on. SUnion sets it when serializing multiple streams into one
    /// so that a following SJoin can tell its two logical inputs apart.
    pub origin: u16,
    /// Attribute values `a1, ..., am`.
    pub values: Vec<Value>,
}

impl Tuple {
    /// A stable insertion.
    pub fn insertion(id: TupleId, stime: Time, values: Vec<Value>) -> Tuple {
        Tuple {
            kind: TupleKind::Insertion,
            id,
            stime,
            origin: 0,
            values,
        }
    }

    /// A tentative insertion.
    pub fn tentative(id: TupleId, stime: Time, values: Vec<Value>) -> Tuple {
        Tuple {
            kind: TupleKind::Tentative,
            id,
            stime,
            origin: 0,
            values,
        }
    }

    /// A boundary tuple promising that no later tuple on the stream carries
    /// `stime < stime`.
    pub fn boundary(id: TupleId, stime: Time) -> Tuple {
        Tuple {
            kind: TupleKind::Boundary,
            id,
            stime,
            origin: 0,
            values: Vec::new(),
        }
    }

    /// An undo tuple: everything after `last_kept` (exclusive) is rolled
    /// back. `last_kept == TupleId::NONE` undoes the entire stream.
    pub fn undo(id: TupleId, last_kept: TupleId) -> Tuple {
        Tuple {
            kind: TupleKind::Undo,
            id,
            stime: Time::ZERO,
            origin: 0,
            values: vec![Value::Int(last_kept.0 as i64)],
        }
    }

    /// A reconciliation-done marker.
    pub fn rec_done(id: TupleId, stime: Time) -> Tuple {
        Tuple {
            kind: TupleKind::RecDone,
            id,
            stime,
            origin: 0,
            values: Vec::new(),
        }
    }

    /// For [`TupleKind::Undo`] tuples, the id of the last tuple *not* undone.
    pub fn undo_target(&self) -> Option<TupleId> {
        if self.kind != TupleKind::Undo {
            return None;
        }
        self.values
            .first()
            .and_then(Value::as_int)
            .map(|v| TupleId(v as u64))
    }

    /// True if this is a stable insertion.
    pub fn is_stable_data(&self) -> bool {
        self.kind == TupleKind::Insertion
    }

    /// True if this is a tentative insertion.
    pub fn is_tentative(&self) -> bool {
        self.kind == TupleKind::Tentative
    }

    /// True for the data-carrying kinds.
    pub fn is_data(&self) -> bool {
        self.kind.is_data()
    }

    /// Returns a copy relabelled tentative (used by operators that process a
    /// subset of inputs, §4.1: tentative in, tentative out — and any output
    /// produced while the node's state has diverged).
    pub fn as_tentative(&self) -> Tuple {
        let mut t = self.clone();
        t.kind = TupleKind::Tentative;
        t
    }

    /// Returns a copy relabelled stable.
    pub fn as_stable(&self) -> Tuple {
        let mut t = self.clone();
        t.kind = TupleKind::Insertion;
        t
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.kind {
            TupleKind::Insertion => "S",
            TupleKind::Tentative => "T",
            TupleKind::Boundary => "B",
            TupleKind::Undo => "U",
            TupleKind::RecDone => "R",
        };
        write!(f, "{tag}{}@{}", self.id, self.stime)?;
        if let Some(target) = self.undo_target() {
            write!(f, "->{target}")?;
        }
        Ok(())
    }
}

/// Control signals sent by SUnion and SOutput operators to the node's
/// Consistency Manager (Table I, control streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlSignal {
    /// An SUnion entered an inconsistent state (produced or passed tentative
    /// data, or timed out waiting for a missing input).
    UpFailure,
    /// An SUnion on an input stream received corrections for all previously
    /// tentative data: the node may reconcile its state.
    RecRequest,
    /// An SOutput saw reconciliation complete on its output stream.
    RecDone,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        let t = Tuple::insertion(TupleId(1), Time::from_millis(5), vec![Value::Int(9)]);
        assert!(t.is_stable_data() && t.is_data() && !t.is_tentative());
        let t = Tuple::tentative(TupleId(2), Time::ZERO, vec![]);
        assert!(t.is_tentative() && t.is_data());
        let b = Tuple::boundary(TupleId(3), Time::from_secs(1));
        assert_eq!(b.kind, TupleKind::Boundary);
        assert!(!b.is_data());
    }

    #[test]
    fn undo_round_trips_target() {
        let u = Tuple::undo(TupleId(10), TupleId(7));
        assert_eq!(u.undo_target(), Some(TupleId(7)));
        let not_undo = Tuple::insertion(TupleId(1), Time::ZERO, vec![]);
        assert_eq!(not_undo.undo_target(), None);
    }

    #[test]
    fn relabelling_preserves_payload() {
        let t = Tuple::insertion(TupleId(4), Time::from_millis(10), vec![Value::Int(1)]);
        let tt = t.as_tentative();
        assert_eq!(tt.kind, TupleKind::Tentative);
        assert_eq!(tt.values, t.values);
        assert_eq!(tt.id, t.id);
        let back = tt.as_stable();
        assert_eq!(back, t);
    }

    #[test]
    fn tuple_id_ordering_and_next() {
        assert!(TupleId(1) < TupleId(2));
        assert_eq!(TupleId(1).next(), TupleId(2));
        assert_eq!(TupleId::NONE.next(), TupleId(1));
    }
}
