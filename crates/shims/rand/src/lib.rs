//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides exactly the `rand` 0.8 API surface the workspace uses: a
//! seedable deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`]
//! constructor, and [`Rng::gen_range`] over primitive ranges.
//!
//! The generator is SplitMix64 (Steele, Lea, Flood: "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — not the real `StdRng`
//! stream, but the simulator only requires *determinism per seed*, which
//! this provides: two generators created from the same seed produce
//! identical sequences.

#![warn(missing_docs)]

use std::ops::Range;

/// Seeded construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers over a raw `u64` stream, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 significant bits, the standard bit-twiddling construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange: Copy + PartialOrd {
    /// Uniform sample from `range` using `rng`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased `[0, n)` sample via rejection (Lemire-style threshold).
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= threshold {
            return v % n;
        }
    }
}

impl SampleRange for usize {
    fn sample<R: Rng>(rng: &mut R, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + below(rng, (range.end - range.start) as u64) as usize
    }
}

impl SampleRange for u64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + below(rng, range.end - range.start)
    }
}

impl SampleRange for u32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + below(rng, (range.end - range.start) as u64) as u32
    }
}

impl SampleRange for i64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(below(rng, span) as i64)
    }
}

impl SampleRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.gen_f64() * (range.end - range.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Named `StdRng` to match
    /// the real crate's import paths.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
