//! Offline shim for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this in-tree crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], [`criterion_group!`]/[`criterion_main!`],
//! benchmark groups with throughput annotation, and the two `Bencher`
//! iteration styles (`iter`, `iter_batched`).
//!
//! Measurement model: a short warm-up, then timed passes until either the
//! sample target or a wall-clock budget is reached. Results print both a
//! human-readable line and a stable machine-readable `BENCHJSON` line that
//! tooling (e.g. `BENCH_PR1.json` baselining) can grep and parse.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup allocations. The shim runs every
/// variant one setup per measured routine call, which is the conservative
/// interpretation (and exactly what `PerIteration` means).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup cost is negligible relative to the routine.
    SmallInput,
    /// Large inputs: setup dominates; criterion batches differently, the
    /// shim does not distinguish.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    /// Accumulated measured time across iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Target number of measured iterations for this pass.
    target_iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.target_iters;
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += self.target_iters;
    }
}

/// One benchmark's collected result.
#[derive(Debug, Clone)]
struct Sample {
    ns_per_iter: f64,
    iters: u64,
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, target_iters: u64) -> Sample {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        target_iters,
    };
    f(&mut b);
    let iters = b.iters.max(1);
    Sample {
        ns_per_iter: b.elapsed.as_nanos() as f64 / iters as f64,
        iters,
    }
}

fn measure<F: FnMut(&mut Bencher)>(mut f: F, sample_size: u64) -> Sample {
    // Warm-up pass (also calibrates how many iterations a pass needs).
    let warm = run_once(&mut f, 1);
    // Aim each measured pass at ~20 ms of work, capped for slow benches.
    let per_pass = ((20_000_000.0 / warm.ns_per_iter.max(1.0)) as u64).clamp(1, 10_000);
    let passes = sample_size.clamp(3, 25);
    let budget = Duration::from_secs(3);
    let started = Instant::now();
    let mut best = f64::MAX;
    let mut total_iters = 0;
    for _ in 0..passes {
        let s = run_once(&mut f, per_pass);
        best = best.min(s.ns_per_iter);
        total_iters += s.iters;
        if started.elapsed() > budget {
            break;
        }
    }
    // Report the fastest pass: the standard noise-robust point estimate.
    Sample {
        ns_per_iter: best,
        iters: total_iters,
    }
}

fn report(name: &str, s: &Sample, throughput: Option<Throughput>) {
    let human_time = if s.ns_per_iter >= 1e9 {
        format!("{:.3} s", s.ns_per_iter / 1e9)
    } else if s.ns_per_iter >= 1e6 {
        format!("{:.3} ms", s.ns_per_iter / 1e6)
    } else if s.ns_per_iter >= 1e3 {
        format!("{:.3} µs", s.ns_per_iter / 1e3)
    } else {
        format!("{:.1} ns", s.ns_per_iter)
    };
    let mut extra = String::new();
    let mut rate = None;
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_s = n as f64 * 1e9 / s.ns_per_iter;
        rate = Some((per_s, unit));
        extra = format!("  thrpt: {:.3} M{unit}", per_s / 1e6);
    }
    println!("{name:<48} time: {human_time:>12}{extra}");
    match rate {
        Some((per_s, unit)) => println!(
            "BENCHJSON {{\"name\":\"{name}\",\"ns_per_iter\":{:.1},\"iters\":{},\"throughput\":{per_s:.1},\"throughput_unit\":\"{unit}\"}}",
            s.ns_per_iter, s.iters
        ),
        None => println!(
            "BENCHJSON {{\"name\":\"{name}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
            s.ns_per_iter, s.iters
        ),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the measured sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let s = measure(f, self.sample_size);
        report(&full, &s, self.throughput);
        self
    }

    /// Ends the group (cosmetic; matches the criterion API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Harness with default settings (mirrors `Criterion::default()` in
    /// the real crate; the derive provides the trait impl).
    pub fn new() -> Criterion {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let s = measure(f, 10);
        report(id.as_ref(), &s, None);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_iterations() {
        let mut calls = 0u64;
        let s = measure(
            |b| {
                b.iter(|| {
                    calls += 1;
                })
            },
            3,
        );
        assert!(s.iters > 0);
        assert!(calls >= s.iters);
        assert!(s.ns_per_iter >= 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: 5,
        };
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| {
                runs += 1;
            },
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(runs, 5);
        assert_eq!(b.iters, 5);
    }
}
