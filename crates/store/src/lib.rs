//! # borealis-store
//!
//! The durability layer behind disk-based crash recovery: a restarted node
//! loads its last checkpoint and replays a bounded input-log suffix instead
//! of rebuilding from an empty state plus unbounded upstream replay (the
//! paper's §4.5 story, ROADMAP open item 2).
//!
//! The on-disk design follows the accepted-plane pattern (SNIPPETS.md
//! snippet 1): all bulk state lives in **immutable, content-addressed
//! objects**, and the only mutable file is a **small `HEAD` pointer** that
//! is flipped atomically (write temp → fsync → rename). A crash at any
//! instant therefore leaves one of three recoverable states:
//!
//! * `HEAD` intact → load the object it names, verify its checksum;
//! * `HEAD` missing or its object corrupt (torn write) → fall back to
//!   `HEAD.prev`, the pointer that was current before the in-flight flip;
//! * neither pointer present → cold start (empty state + upstream replay).
//!
//! Layout under one [`NodeStore`] root:
//!
//! ```text
//! objects/<fnv64-hex>.obj    immutable checkpoint payloads (content-addressed)
//! HEAD, HEAD.prev            pointer files: {snapshot id, object hash, length}
//! log/<first-seq>.log        append-only input log, checksummed records
//! <name>.marker              small atomic marker files (e.g. last_recovery)
//! ```
//!
//! The input log is a sequence of fixed-header records
//! `[len u32][fnv64 of body][body = seq u64 + payload]`; a torn tail is
//! detected by length or checksum and the valid prefix survives. Whole
//! segments are pruned once a published snapshot covers them
//! (snapshot-id-scoped truncation). Warm-standby seeding ([`NodeStore::
//! seed_from`]) is the same primitive sequence: copy missing objects, then
//! flip `HEAD`.

#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use borealis_types::wire::{self, Reader, WireError};

/// Magic prefix of a `HEAD` pointer file.
const HEAD_MAGIC: u32 = 0x4252_4844; // "BRHD"
/// Maximum bytes in one log segment before the writer rotates.
pub const DEFAULT_SEGMENT_BYTES: u64 = 256 * 1024;

/// Typed durability errors. Corruption is always reported as
/// [`StoreError::Corrupt`] — never a panic, never silently-wrong state —
/// mirroring the decode-side [`WireError`] contract.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A pointer, object, or log record failed validation.
    Corrupt {
        /// Which on-disk structure was bad.
        what: &'static str,
        /// Human-readable detail (lengths, hashes, decode error).
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> StoreError {
        StoreError::Corrupt {
            what: "wire record",
            detail: e.to_string(),
        }
    }
}

/// FNV-1a 64 — the content address and record checksum. Not cryptographic;
/// it guards against torn writes and bit rot, not adversaries.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded `HEAD` pointer: which snapshot is current and which object
/// holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadPointer {
    /// Monotonic snapshot id assigned by the publisher.
    pub snapshot_id: u64,
    /// Content address (FNV-1a 64) of the object file.
    pub object: u64,
    /// Payload length in bytes, double-checked against the object file.
    pub len: u64,
}

/// A snapshot loaded back from disk.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Snapshot id recorded in the pointer that validated.
    pub snapshot_id: u64,
    /// The verified payload bytes.
    pub payload: Vec<u8>,
    /// If `HEAD` itself was unusable, the typed error that forced the fall
    /// back to `HEAD.prev`. `None` means `HEAD` loaded cleanly.
    pub fell_back: Option<StoreError>,
}

/// One decoded input-log record: `(sequence number, payload bytes)`.
pub type LogRecord = (u64, Vec<u8>);

/// One node's durable state root: checkpoint objects + HEAD pointers +
/// input log + markers.
#[derive(Debug)]
pub struct NodeStore {
    root: PathBuf,
}

impl NodeStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<NodeStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("objects"))?;
        fs::create_dir_all(root.join("log"))?;
        Ok(NodeStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, hash: u64) -> PathBuf {
        self.root.join("objects").join(format!("{hash:016x}.obj"))
    }

    fn head_path(&self) -> PathBuf {
        self.root.join("HEAD")
    }

    fn prev_path(&self) -> PathBuf {
        self.root.join("HEAD.prev")
    }

    /// Directory holding the input-log segments.
    pub fn log_dir(&self) -> PathBuf {
        self.root.join("log")
    }

    /// Publishes `payload` as snapshot `snapshot_id`: writes the
    /// content-addressed object (temp + fsync + rename), then flips `HEAD`
    /// atomically, demoting the previous pointer to `HEAD.prev`. Returns
    /// the object's content address.
    pub fn publish(&self, snapshot_id: u64, payload: &[u8]) -> Result<u64, StoreError> {
        let hash = fnv64(payload);
        let obj = self.object_path(hash);
        if !obj.exists() {
            write_atomic(&obj, payload)?;
        }
        let mut head = Vec::with_capacity(40);
        wire::put_u32(&mut head, HEAD_MAGIC);
        wire::put_u64(&mut head, snapshot_id);
        wire::put_u64(&mut head, hash);
        wire::put_u64(&mut head, payload.len() as u64);
        let check = fnv64(&head);
        wire::put_u64(&mut head, check);
        // Demote the current pointer first: if we crash between the two
        // renames, recovery finds no HEAD and falls back to HEAD.prev.
        if self.head_path().exists() {
            fs::rename(self.head_path(), self.prev_path())?;
        }
        write_atomic(&self.head_path(), &head)?;
        sync_dir(&self.root)?;
        Ok(hash)
    }

    fn load_pointer(&self, path: &Path) -> Result<Option<HeadPointer>, StoreError> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut r = Reader::new(&bytes);
        let magic = r.u32()?;
        if magic != HEAD_MAGIC {
            return Err(StoreError::Corrupt {
                what: "HEAD pointer",
                detail: format!("bad magic {magic:#x}"),
            });
        }
        let snapshot_id = r.u64()?;
        let object = r.u64()?;
        let len = r.u64()?;
        let check = r.u64()?;
        r.finish()?;
        if check != fnv64(&bytes[..bytes.len() - 8]) {
            return Err(StoreError::Corrupt {
                what: "HEAD pointer",
                detail: "checksum mismatch".into(),
            });
        }
        Ok(Some(HeadPointer {
            snapshot_id,
            object,
            len,
        }))
    }

    fn load_via(&self, ptr: HeadPointer) -> Result<Vec<u8>, StoreError> {
        let payload = fs::read(self.object_path(ptr.object))?;
        if payload.len() as u64 != ptr.len {
            return Err(StoreError::Corrupt {
                what: "snapshot object",
                detail: format!("length {} != pointer {}", payload.len(), ptr.len),
            });
        }
        if fnv64(&payload) != ptr.object {
            return Err(StoreError::Corrupt {
                what: "snapshot object",
                detail: "content hash mismatch".into(),
            });
        }
        Ok(payload)
    }

    /// Loads the newest recoverable snapshot: `HEAD` first, falling back to
    /// `HEAD.prev` (with the typed error that disqualified `HEAD` reported
    /// in [`LoadedSnapshot::fell_back`]). `Ok(None)` means a cold store.
    pub fn load_latest(&self) -> Result<Option<LoadedSnapshot>, StoreError> {
        let head_err = match self.try_load(&self.head_path()) {
            Ok(Some(snap)) => return Ok(Some(snap)),
            Ok(None) => None,
            Err(e) => Some(e),
        };
        match self.try_load(&self.prev_path()) {
            Ok(Some(mut snap)) => {
                snap.fell_back = Some(head_err.unwrap_or(StoreError::Corrupt {
                    what: "HEAD pointer",
                    detail: "missing (crash mid-flip)".into(),
                }));
                Ok(Some(snap))
            }
            Ok(None) => match head_err {
                // HEAD was corrupt and there is no fallback: surface it.
                Some(e) => Err(e),
                None => Ok(None),
            },
            Err(e) => Err(head_err.unwrap_or(e)),
        }
    }

    fn try_load(&self, path: &Path) -> Result<Option<LoadedSnapshot>, StoreError> {
        match self.load_pointer(path)? {
            None => Ok(None),
            Some(ptr) => {
                let payload = self.load_via(ptr)?;
                Ok(Some(LoadedSnapshot {
                    snapshot_id: ptr.snapshot_id,
                    payload,
                    fell_back: None,
                }))
            }
        }
    }

    /// Current `HEAD` pointer, if one validates (no object read).
    pub fn head(&self) -> Result<Option<HeadPointer>, StoreError> {
        self.load_pointer(&self.head_path())
    }

    /// Warm-standby seeding: copy every object `other` has that we lack,
    /// then adopt its `HEAD` pointer (atomic flip). The axiograph
    /// accepted-plane sync in miniature.
    pub fn seed_from(&self, other: &NodeStore) -> Result<(), StoreError> {
        for entry in fs::read_dir(other.root.join("objects"))? {
            let entry = entry?;
            let dst = self.root.join("objects").join(entry.file_name());
            if !dst.exists() {
                let bytes = fs::read(entry.path())?;
                write_atomic(&dst, &bytes)?;
            }
        }
        if let Some(ptr) = other.head()? {
            // Validate the copied object before flipping our pointer.
            self.load_via(ptr)?;
            let head = fs::read(other.head_path())?;
            if self.head_path().exists() {
                fs::rename(self.head_path(), self.prev_path())?;
            }
            write_atomic(&self.head_path(), &head)?;
            sync_dir(&self.root)?;
        }
        Ok(())
    }

    /// Writes a small named marker file atomically (e.g. `last_recovery`).
    pub fn write_marker(&self, name: &str, contents: &[u8]) -> Result<(), StoreError> {
        write_atomic(&self.root.join(format!("{name}.marker")), contents)
    }

    /// Reads a marker written by [`NodeStore::write_marker`].
    pub fn read_marker(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.root.join(format!("{name}.marker"))) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Reads every log record with `seq > after`, in order. A torn or
    /// corrupt tail stops the scan; the valid prefix is returned together
    /// with the typed error that ended it.
    pub fn read_log(&self, after: u64) -> Result<(Vec<LogRecord>, Option<StoreError>), StoreError> {
        let mut out = Vec::new();
        let mut tail_err = None;
        for seg in sorted_segments(&self.log_dir())? {
            let bytes = fs::read(&seg)?;
            let mut off = 0usize;
            while off < bytes.len() {
                match decode_record(&bytes[off..]) {
                    Ok((seq, payload, used)) => {
                        if seq > after {
                            out.push((seq, payload.to_vec()));
                        }
                        off += used;
                    }
                    Err(e) => {
                        tail_err = Some(e);
                        break;
                    }
                }
            }
            if tail_err.is_some() {
                break;
            }
        }
        Ok((out, tail_err))
    }

    /// Deletes every log segment fully covered by `covered_seq` (all its
    /// records have `seq <= covered_seq`) — the snapshot-id-scoped
    /// truncation: pruning is driven by what the published snapshot covers,
    /// never by wall-clock retention.
    pub fn prune_log(&self, covered_seq: u64) -> Result<usize, StoreError> {
        let segs = sorted_segments(&self.log_dir())?;
        let firsts: Vec<u64> = segs.iter().filter_map(|p| segment_first_seq(p)).collect();
        let mut removed = 0;
        for i in 0..segs.len() {
            // A segment is disposable iff the NEXT segment starts at or
            // below covered_seq + 1 — then every record here is covered.
            if i + 1 < firsts.len() && firsts[i + 1] <= covered_seq.saturating_add(1) {
                fs::remove_file(&segs[i])?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Append side of the input log: rotating, checksummed segments.
#[derive(Debug)]
pub struct LogWriter {
    dir: PathBuf,
    file: Option<fs::File>,
    seg_bytes: u64,
    max_seg_bytes: u64,
    next_seq: u64,
    sync_each: bool,
}

impl LogWriter {
    /// Opens the log under `store`, resuming after the last durable record.
    /// `sync_each` forces an fsync per append (tests / strict mode); the
    /// default is OS-buffered appends — a crash may lose the un-synced
    /// tail, which upstream replay then covers.
    pub fn open(store: &NodeStore, sync_each: bool) -> Result<LogWriter, StoreError> {
        let dir = store.log_dir();
        let (records, _torn) = store.read_log(0)?;
        let next_seq = records.last().map(|(s, _)| s + 1).unwrap_or(1);
        Ok(LogWriter {
            dir,
            file: None,
            seg_bytes: 0,
            max_seg_bytes: DEFAULT_SEGMENT_BYTES,
            next_seq,
            sync_each,
        })
    }

    /// Overrides the rotation threshold (tests use tiny segments).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.max_seg_bytes = bytes.max(1);
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended record (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Appends one record, returning its sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut body = Vec::with_capacity(8 + payload.len());
        wire::put_u64(&mut body, seq);
        body.extend_from_slice(payload);
        let mut rec = Vec::with_capacity(12 + body.len());
        wire::put_u32(&mut rec, body.len() as u32);
        wire::put_u64(&mut rec, fnv64(&body));
        rec.extend_from_slice(&body);

        if self.file.is_none() || self.seg_bytes >= self.max_seg_bytes {
            let path = self.dir.join(format!("{seq:020}.log"));
            self.file = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            );
            self.seg_bytes = 0;
        }
        let f = self.file.as_mut().expect("segment just opened");
        f.write_all(&rec)?;
        if self.sync_each {
            f.sync_data()?;
        }
        self.seg_bytes += rec.len() as u64;
        Ok(seq)
    }

    /// Flushes (and fsyncs) the current segment — called when a snapshot is
    /// published so the covered prefix is durable before pruning.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(f) = self.file.as_mut() {
            f.sync_data()?;
        }
        Ok(())
    }
}

fn decode_record(bytes: &[u8]) -> Result<(u64, &[u8], usize), StoreError> {
    if bytes.len() < 12 {
        return Err(StoreError::Corrupt {
            what: "log record",
            detail: format!("truncated header ({} bytes)", bytes.len()),
        });
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let crc = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    if len < 8 || bytes.len() < 12 + len {
        return Err(StoreError::Corrupt {
            what: "log record",
            detail: format!(
                "torn body (want {len}, have {})",
                bytes.len().saturating_sub(12)
            ),
        });
    }
    let body = &bytes[12..12 + len];
    if fnv64(body) != crc {
        return Err(StoreError::Corrupt {
            what: "log record",
            detail: "checksum mismatch".into(),
        });
    }
    let seq = u64::from_le_bytes(body[0..8].try_into().unwrap());
    Ok((seq, &body[8..], 12 + len))
}

fn sorted_segments(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "log").unwrap_or(false))
        .collect();
    segs.sort();
    Ok(segs)
}

fn segment_first_seq(path: &Path) -> Option<u64> {
    path.file_stem()?.to_str()?.parse().ok()
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().expect("store paths always have a parent");
    let tmp = dir.join(format!(
        ".tmp-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("obj")
    ));
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    sync_dir(dir)?;
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    // Directory fsync is best-effort on platforms where opening a directory
    // fails; Linux (the deployment target) supports it.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Truncates `path` to `len` bytes — torn-write fault injection for tests.
pub fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    Ok(())
}

/// Flips one byte at `offset` in `path` — bit-rot fault injection for tests.
pub fn corrupt_byte(path: &Path, offset: u64) -> Result<(), StoreError> {
    let mut f = fs::OpenOptions::new().read(true).write(true).open(path)?;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("borealis-store-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_and_load_round_trip() {
        let store = NodeStore::open(scratch("round-trip")).unwrap();
        assert!(store.load_latest().unwrap().is_none(), "cold store is None");
        store.publish(1, b"first state").unwrap();
        store.publish(2, b"second state").unwrap();
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.snapshot_id, 2);
        assert_eq!(snap.payload, b"second state");
        assert!(snap.fell_back.is_none());
    }

    #[test]
    fn crash_mid_flip_falls_back_to_prev() {
        let store = NodeStore::open(scratch("mid-flip")).unwrap();
        store.publish(1, b"one").unwrap();
        store.publish(2, b"two").unwrap();
        // Simulate a crash after HEAD -> HEAD.prev but before the new HEAD
        // landed: remove HEAD entirely.
        fs::remove_file(store.root().join("HEAD")).unwrap();
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.snapshot_id, 1, "previous pointer wins");
        assert_eq!(snap.payload, b"one");
        assert!(matches!(
            snap.fell_back,
            Some(StoreError::Corrupt {
                what: "HEAD pointer",
                ..
            })
        ));
    }

    /// Satellite: torn-write recovery. Truncate or flip bytes of the newest
    /// checkpoint object at random offsets; recovery must fall back to the
    /// previous HEAD with a typed [`StoreError::Corrupt`] — never load the
    /// damaged object, never panic. Same harness style as the PR 7
    /// `WireError` corruption-rejection tests.
    #[test]
    fn torn_checkpoint_object_falls_back_to_prev_head() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for trial in 0..20u64 {
            let store = NodeStore::open(scratch(&format!("torn-obj-{trial}"))).unwrap();
            let old: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
            let new: Vec<u8> = (0..300).map(|i| (i * 13 + 1) as u8).collect();
            store.publish(10, &old).unwrap();
            let hash = store.publish(11, &new).unwrap();
            let obj = store
                .root()
                .join("objects")
                .join(format!("{hash:016x}.obj"));
            if trial % 2 == 0 {
                let cut = rng.gen_range(0..new.len() as u64);
                truncate_file(&obj, cut).unwrap();
            } else {
                let off = rng.gen_range(0..new.len() as u64);
                corrupt_byte(&obj, off).unwrap();
            }
            let snap = store.load_latest().unwrap().unwrap();
            assert_eq!(snap.snapshot_id, 10, "trial {trial}: fell back to prev");
            assert_eq!(snap.payload, old);
            assert!(
                matches!(snap.fell_back, Some(StoreError::Corrupt { .. })),
                "trial {trial}: typed corruption error reported"
            );
        }
    }

    #[test]
    fn corrupt_head_pointer_is_a_typed_error_not_a_panic() {
        let store = NodeStore::open(scratch("bad-head")).unwrap();
        store.publish(1, b"alpha").unwrap();
        store.publish(2, b"beta").unwrap();
        corrupt_byte(&store.root().join("HEAD"), 6).unwrap();
        let snap = store.load_latest().unwrap().unwrap();
        assert_eq!(snap.payload, b"alpha");
        assert!(matches!(snap.fell_back, Some(StoreError::Corrupt { .. })));
    }

    #[test]
    fn log_appends_read_back_in_order_and_survive_reopen() {
        let store = NodeStore::open(scratch("log-basic")).unwrap();
        let mut w = LogWriter::open(&store, true).unwrap();
        for i in 0..10u8 {
            w.append(&[i; 3]).unwrap();
        }
        drop(w);
        let (records, torn) = store.read_log(0).unwrap();
        assert!(torn.is_none());
        assert_eq!(records.len(), 10);
        assert_eq!(records[0], (1, vec![0u8; 3]));
        assert_eq!(records[9], (10, vec![9u8; 3]));
        // Reopen resumes the sequence.
        let mut w2 = LogWriter::open(&store, true).unwrap();
        assert_eq!(w2.next_seq(), 11);
        w2.append(b"more").unwrap();
        let (records, _) = store.read_log(10).unwrap();
        assert_eq!(records, vec![(11, b"more".to_vec())]);
    }

    /// Satellite: torn log tail at random offsets — the valid prefix
    /// survives and the scan reports a typed error for the tail.
    #[test]
    fn torn_log_tail_keeps_valid_prefix_with_typed_error() {
        let mut rng = StdRng::seed_from_u64(0x1061);
        for trial in 0..20u64 {
            let store = NodeStore::open(scratch(&format!("torn-log-{trial}"))).unwrap();
            let mut w = LogWriter::open(&store, true).unwrap();
            for i in 0..8u8 {
                w.append(&[i; 16]).unwrap();
            }
            drop(w);
            let segs = sorted_segments(&store.log_dir()).unwrap();
            let seg = segs.last().unwrap();
            let full = fs::metadata(seg).unwrap().len();
            // Damage somewhere inside the last record.
            let rec = 12 + 8 + 16; // header + seq + payload
            let tail_start = full - rec as u64;
            if trial % 2 == 0 {
                let cut = rng.gen_range(tail_start + 1..full);
                truncate_file(seg, cut).unwrap();
            } else {
                let off = rng.gen_range(tail_start..full);
                corrupt_byte(seg, off).unwrap();
            }
            let (records, torn) = store.read_log(0).unwrap();
            assert_eq!(records.len(), 7, "trial {trial}: prefix intact");
            assert!(
                matches!(
                    torn,
                    Some(StoreError::Corrupt {
                        what: "log record",
                        ..
                    })
                ),
                "trial {trial}: typed tail error"
            );
        }
    }

    #[test]
    fn snapshot_scoped_pruning_removes_covered_segments_only() {
        let store = NodeStore::open(scratch("prune")).unwrap();
        let mut w = LogWriter::open(&store, true).unwrap();
        w.set_segment_bytes(1); // one record per segment
        for i in 0..6u8 {
            w.append(&[i]).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        assert_eq!(sorted_segments(&store.log_dir()).unwrap().len(), 6);
        // Snapshot covers seqs 1..=4: segments 1..=4 become prunable except
        // the rule keeps a segment until its successor proves coverage.
        let removed = store.prune_log(4).unwrap();
        assert_eq!(removed, 4);
        let (records, _) = store.read_log(0).unwrap();
        assert_eq!(
            records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5, 6],
            "uncovered suffix survives"
        );
        // Nothing newly covered: no-op.
        assert_eq!(store.prune_log(4).unwrap(), 0);
    }

    #[test]
    fn seed_from_copies_objects_and_flips_head() {
        let primary = NodeStore::open(scratch("seed-src")).unwrap();
        let standby = NodeStore::open(scratch("seed-dst")).unwrap();
        primary.publish(1, b"gen-1").unwrap();
        primary.publish(2, b"gen-2").unwrap();
        standby.seed_from(&primary).unwrap();
        let snap = standby.load_latest().unwrap().unwrap();
        assert_eq!(snap.snapshot_id, 2);
        assert_eq!(snap.payload, b"gen-2");
        // Seeding again is idempotent (objects content-addressed).
        standby.seed_from(&primary).unwrap();
        assert_eq!(standby.load_latest().unwrap().unwrap().snapshot_id, 2);
    }

    #[test]
    fn markers_round_trip() {
        let store = NodeStore::open(scratch("markers")).unwrap();
        assert!(store.read_marker("last_recovery").unwrap().is_none());
        store
            .write_marker("last_recovery", b"snap=3 replayed=17")
            .unwrap();
        assert_eq!(
            store.read_marker("last_recovery").unwrap().unwrap(),
            b"snap=3 replayed=17"
        );
    }
}
