//! Durable snapshot codec round trips: for every stateful operator, a
//! checkpoint serialized through its [`SnapshotCodec`] and decoded into a
//! **fresh** operator instance must continue the stream exactly like the
//! original — same outputs for the same subsequent input. This is the
//! contract disk recovery rests on: a restarted process holds only bytes.

use borealis_ops::{AggFn, BatchEmitter, Operator, SnapshotCodec};
use borealis_ops::{OperatorSpec, SUnionConfig};
use borealis_types::wire::Reader;
use borealis_types::{Duration, Expr, Time, Tuple, TupleId, Value};

/// Encode op A's checkpoint, decode into a fresh instance of `spec`, and
/// return that instance.
fn reload(op: &dyn Operator, spec: &OperatorSpec) -> Box<dyn Operator> {
    let codec: SnapshotCodec = op.snapshot_codec();
    let snap = op.checkpoint();
    let mut bytes = Vec::new();
    (codec.encode)(&snap, &mut bytes);
    let mut r = Reader::new(&bytes);
    let decoded = (codec.decode)(&mut r).expect("durable bytes decode");
    r.finish().expect("codec consumed all bytes");
    let mut fresh = spec.instantiate();
    fresh.restore(&decoded);
    fresh
}

fn drive(op: &mut dyn Operator, tuples: &[(usize, Tuple)], now: Time) -> Vec<Tuple> {
    let mut out = BatchEmitter::new();
    for (port, t) in tuples {
        op.process(*port, t, now, &mut out);
    }
    op.tick(now, true, &mut out);
    let (tuples, _) = out.take_tuples();
    tuples
}

fn data(id: u64, ms: u64, v: i64) -> Tuple {
    Tuple::insertion(TupleId(id), Time::from_millis(ms), vec![Value::Int(v)])
}

fn boundary(ms: u64) -> Tuple {
    Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
}

/// Feed `warmup`, round-trip through the codec, then assert `probe`
/// produces identical output from the original and the reloaded clone.
fn assert_equivalent_after_reload(
    spec: OperatorSpec,
    warmup: Vec<(usize, Tuple)>,
    probe: Vec<(usize, Tuple)>,
    now: Time,
) {
    let mut original = spec.instantiate();
    drive(original.as_mut(), &warmup, now);
    let mut reloaded = reload(original.as_ref(), &spec);
    let later = Time(now.0 + Duration::from_millis(500).as_micros());
    let a = drive(original.as_mut(), &probe, later);
    let b = drive(reloaded.as_mut(), &probe, later);
    assert_eq!(a, b, "{spec:?}: reloaded operator diverged");
    assert!(
        !a.is_empty() || !probe.is_empty(),
        "probe should exercise the operator"
    );
}

#[test]
fn union_codec_round_trips() {
    assert_equivalent_after_reload(
        OperatorSpec::Union { n_inputs: 2 },
        vec![(0, data(1, 10, 7)), (1, data(2, 12, 8)), (0, boundary(20))],
        vec![(1, boundary(30)), (0, data(9, 25, 1))],
        Time::from_millis(40),
    );
}

#[test]
fn aggregate_codec_round_trips() {
    let spec = OperatorSpec::Aggregate(borealis_ops::AggregateSpec {
        window: Duration::from_millis(100),
        slide: Duration::from_millis(100),
        group_by: vec![Expr::field(0)],
        aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
    });
    assert_equivalent_after_reload(
        spec,
        vec![
            (0, data(1, 10, 1)),
            (0, data(2, 40, 2)),
            (0, data(3, 110, 1)),
        ],
        vec![(0, data(4, 130, 2)), (0, boundary(250))],
        Time::from_millis(150),
    );
}

#[test]
fn sjoin_codec_round_trips() {
    let spec = OperatorSpec::SJoin(borealis_ops::SJoinSpec {
        window: Duration::from_millis(200),
        left_key: Expr::field(0),
        right_key: Expr::field(0),
        max_state: Some(64),
        left_split: 1,
    });
    let mut left = data(1, 10, 42);
    left.origin = 0;
    let mut right = data(2, 20, 42);
    right.origin = 1;
    let mut probe_right = data(3, 30, 42);
    probe_right.origin = 1;
    assert_equivalent_after_reload(
        spec,
        vec![(0, left), (1, right)],
        vec![(1, probe_right)],
        Time::from_millis(50),
    );
}

#[test]
fn sunion_codec_round_trips_with_buffered_buckets() {
    let cfg = SUnionConfig {
        n_inputs: 2,
        bucket: Duration::from_millis(100),
        detect_delay: Duration::from_millis(300),
        delay_budget: Duration::from_millis(100),
        tentative_wait: Duration::from_millis(100),
        failure_mode: borealis_ops::DelayMode::Delay,
        stabilization_mode: borealis_ops::DelayMode::Delay,
        is_input: true,
    };
    // Warmup leaves data buffered in open buckets (no boundaries beyond
    // 100 ms), so the codec must carry non-trivial bucket state.
    assert_equivalent_after_reload(
        OperatorSpec::SUnion(cfg),
        vec![
            (0, data(1, 10, 1)),
            (1, data(2, 20, 2)),
            (0, data(3, 120, 3)),
            (0, boundary(100)),
            (1, boundary(100)),
        ],
        vec![(1, data(4, 150, 4)), (0, boundary(200)), (1, boundary(200))],
        Time::from_millis(130),
    );
}

#[test]
fn soutput_codec_round_trips_dedup_memory() {
    let spec = OperatorSpec::SOutput;
    let mut original = spec.instantiate();
    let now = Time::from_millis(10);
    drive(
        original.as_mut(),
        &[(0, data(1, 1, 0)), (0, data(2, 2, 0))],
        now,
    );
    let mut reloaded = reload(original.as_ref(), &spec);
    let so = reloaded.as_soutput().expect("soutput downcast");
    assert_eq!(
        so.last_stable(),
        TupleId(2),
        "duplicate-suppression memory survives the byte round trip"
    );
    // A restarted node replaying its input log must drop regenerated
    // duplicates exactly like a live stabilization replay would.
    reloaded
        .as_soutput_mut()
        .expect("soutput downcast")
        .begin_stabilization();
    let out = drive(
        reloaded.as_mut(),
        &[(0, data(2, 2, 0)), (0, data(3, 3, 0))],
        now,
    );
    let ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
    assert_eq!(
        ids,
        vec![3],
        "replayed duplicate suppressed, fresh tuple kept"
    );
}

#[test]
fn stateless_ops_use_the_unit_codec() {
    for spec in [
        OperatorSpec::Filter {
            predicate: Expr::ge(Expr::int(1), Expr::int(0)),
        },
        OperatorSpec::Map {
            outputs: vec![Expr::field(0)],
        },
    ] {
        let op = spec.instantiate();
        let codec = op.snapshot_codec();
        let mut bytes = Vec::new();
        (codec.encode)(&op.checkpoint(), &mut bytes);
        assert!(
            bytes.is_empty(),
            "{spec:?}: stateless encode writes nothing"
        );
        let mut r = Reader::new(&bytes);
        (codec.decode)(&mut r).expect("unit decode");
    }
}
