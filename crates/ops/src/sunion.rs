//! SUnion: the data-serializing operator at the core of DPC (§4.2).
//!
//! SUnion takes one or more input streams and orders all their tuples into a
//! single deterministic sequence so that every replica of a query-diagram
//! fragment processes identical input in identical order. It buffers tuples
//! in **buckets** — fixed, disjoint intervals of `tuple_stime` — and uses
//! **boundary tuples** to decide when a bucket is *stable* (eq. 1 of the
//! paper): a bucket `[kB, (k+1)B)` is stable once every input stream has
//! delivered a boundary with stime ≥ `(k+1)B`.
//!
//! Because it already buffers tuples, SUnion is also where DPC implements
//! the availability/consistency trade-off (§4.3, §6):
//!
//! * While **stable**, buckets are emitted in order as they become stable,
//!   followed by an output boundary.
//! * When a bucket overruns its **detection delay** (the assigned initial
//!   suspend, §6.3) without becoming stable, the SUnion declares an upstream
//!   failure, asks the fragment to checkpoint (§4.4.1), and emits the
//!   bucket's available tuples as **tentative**.
//! * While failed, subsequent buckets are released according to the
//!   configured [`DelayMode`] — `Process` (almost immediately), `Delay`
//!   (each bucket held up to the delay budget), or `Suspend` (held
//!   indefinitely) — the six §6.1 variants are combinations of these for the
//!   UP_FAILURE and STABILIZATION phases.
//!
//! SUnions placed on a node's *input streams* additionally record a replay
//! log of everything received since the last checkpoint; reconciliation
//! replays that log through the restored fragment (§4.4.1). They also
//! consume UNDO / REC_DONE tuples arriving from stabilizing upstream
//! neighbors, replacing undone tentative input with its stable corrections
//! (§4.4.2).
//!
//! # Batch-native buffering
//!
//! Every tuple in the system crosses an SUnion, so its buffering is the
//! serialization hot path. Ingestion is **clone-free**: an arriving
//! [`TupleBatch`] is split into maximal same-bucket runs and each run is
//! buffered as an O(1) shared *view* of the arrival batch (a bucket
//! segment); the port tag lives on the segment, not on copied tuples. The
//! replay log likewise records shared batch ranges, not per-tuple clones.
//! The only copy happens at emission, where the protocol *requires* new
//! tuples (the canonical renumbering that makes replicas identical): one
//! sealed output batch per stabilization, not one clone per tuple per hop.
//! Buckets track a `sorted` flag so the common in-order case skips the
//! stabilization sort entirely.
//!
//! Checkpoints are copy-on-write: the whole operator state lives behind an
//! `Arc`, [`crate::Operator::checkpoint`] is a reference-count bump, and the
//! first post-checkpoint mutation clones containers-of-views (cheap), never
//! tuples. See [`crate::snapshot`] for the contract.

use crate::snapshot::{put_bool, put_opt_u64, read_bool, read_opt_u64, SnapshotCodec};
use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::wire::{self, Reader, WireError};
use borealis_types::{ControlSignal, Duration, Time, Tuple, TupleBatch, TupleId, TupleKind};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How an SUnion treats buckets that cannot (yet) be emitted stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Hold new tuples indefinitely (consistency over availability; only
    /// viable for failures shorter than the delay bound, §6.1).
    Suspend,
    /// Hold each bucket up to the delay budget before emitting tentatively
    /// ("running on the verge of breaking the availability requirement").
    Delay,
    /// Emit buckets almost as they arrive, after a short minimum wait (the
    /// paper's 300 ms: without tentative boundaries an SUnion cannot know
    /// how soon a tentative bucket is complete, footnote 5).
    Process,
}

/// Static + policy configuration of an [`SUnion`].
#[derive(Debug, Clone)]
pub struct SUnionConfig {
    /// Number of input streams to serialize.
    pub n_inputs: usize,
    /// Bucket granularity (§4.2.1).
    pub bucket: Duration,
    /// Failure-detection threshold and initial suspend: a bucket older than
    /// this that is still unstable triggers UP_FAILURE. §6.3 shows this
    /// should be the application's full incremental latency budget (minus a
    /// queueing safety margin) at *every* SUnion.
    pub detect_delay: Duration,
    /// Per-bucket delay used by [`DelayMode::Delay`] after detection.
    pub delay_budget: Duration,
    /// Minimum wait before releasing a tentative bucket in
    /// [`DelayMode::Process`].
    pub tentative_wait: Duration,
    /// Policy while an upstream failure is in progress (UP_FAILURE).
    pub failure_mode: DelayMode,
    /// Policy after the failure healed but before this node reconciled
    /// (STABILIZATION of this node or its replica).
    pub stabilization_mode: DelayMode,
    /// True if this SUnion sits on a node input stream: it then keeps the
    /// reconciliation replay log and consumes UNDO/REC_DONE from upstream.
    pub is_input: bool,
}

impl SUnionConfig {
    /// A reasonable starting configuration for `n` inputs: 100 ms buckets,
    /// 3 s detection delay, Process & Process policies.
    pub fn new(n_inputs: usize) -> SUnionConfig {
        SUnionConfig {
            n_inputs,
            bucket: Duration::from_millis(100),
            detect_delay: Duration::from_secs(3),
            delay_budget: Duration::from_secs(3),
            tentative_wait: Duration::from_millis(300),
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            is_input: false,
        }
    }
}

/// Consistency phase of one SUnion (a per-operator shadow of the node state
/// machine in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// All inputs stable; emitting stable buckets.
    Stable,
    /// An upstream failure is in progress: some input is missing boundaries
    /// or carries uncorrected tentative data.
    Failure,
    /// All inputs corrected; awaiting fragment reconciliation.
    Healed,
}

/// One arrival-ordered run of buffered tuples: a shared view of the batch
/// they arrived in, tagged with the input port it arrived on (the port tag
/// lives here so ingestion never copies tuples to stamp `origin`).
#[derive(Debug, Clone)]
struct BucketSeg {
    port: u16,
    batch: TupleBatch,
}

#[derive(Debug, Clone)]
struct Bucket {
    /// Buffered tuples, as arrival-ordered shared segments.
    segs: Vec<BucketSeg>,
    /// Total buffered tuples (sum of segment lengths).
    len: usize,
    /// Earliest arrival time of any tuple in the bucket; deadlines are
    /// measured from here ("within D time-units of their arrival", §2.3.1).
    first_arrival: Time,
    /// Tentative-release deadline, frozen under the delay policy in force
    /// when the bucket was created. Freezing is what produces the paper's
    /// §6.1 trade-off: a bucket still unexpired when reconciliation
    /// replaces it is never emitted tentatively (the Delay savings), while
    /// a long stabilization lets deadlines expire and the data flows
    /// tentatively anyway (why delaying stops helping for long failures,
    /// Fig. 18).
    deadline: Time,
    /// True while every appended tuple extended the canonical
    /// `(stime, port, id)` order — the common no-failure case; emission
    /// then skips the stabilization sort entirely.
    sorted: bool,
    /// Canonical key of the most recently appended tuple — while `sorted`,
    /// an upper bound on every key in the bucket. Removals (UNDO) may leave
    /// it above the remaining maximum; that only clears `sorted`
    /// conservatively on a later append, never wrongly keeps it.
    last_key: (Time, u16, TupleId),
}

impl Bucket {
    fn new(now: Time, deadline: Time) -> Bucket {
        Bucket {
            segs: Vec::new(),
            len: 0,
            first_arrival: now,
            deadline,
            sorted: true,
            last_key: (Time::ZERO, 0, TupleId::NONE),
        }
    }

    /// Appends one same-bucket run by shared view, maintaining the sorted
    /// flag (comparisons on borrowed tuples; no copies).
    fn append_run(&mut self, port: u16, run: TupleBatch) {
        if self.sorted {
            for t in run.as_slice() {
                let key = (t.stime, port, t.id);
                if key < self.last_key {
                    self.sorted = false;
                    break;
                }
                self.last_key = key;
            }
        }
        self.len += run.len();
        self.segs.push(BucketSeg { port, batch: run });
    }
}

/// One entry of the reconciliation replay log: (arrival time, input port,
/// shared batch range). Arrival times are preserved so replayed buckets
/// keep their original deadlines; the batch shares its backing allocation
/// with the arrival message — recording costs a range, not a copy.
pub type ReplayEntry = (Time, usize, TupleBatch);

#[derive(Clone)]
struct SUnionState {
    buckets: BTreeMap<u64, Bucket>,
    /// Latest boundary stime per port.
    watermarks: Vec<Option<Time>>,
    /// Highest bucket index emitted (stably or tentatively).
    emitted_through: Option<u64>,
    /// Stable-boundary frontier already announced downstream.
    announced_wm: Option<Time>,
    phase: Phase,
    /// Ports that delivered tentative tuples not yet corrected by an
    /// UNDO + REC_DONE sequence.
    awaiting_correction: Vec<bool>,
    /// REC_DONE merge tracking for mid-diagram SUnions.
    rec_done_seen: Vec<bool>,
    /// Output id generator.
    next_id: u64,
}

/// The serializing union. See the module docs for the full protocol role.
pub struct SUnion {
    cfg: SUnionConfig,
    /// Copy-on-write state: checkpoints share this `Arc`; mutation paths go
    /// through [`Arc::make_mut`], so the first post-checkpoint mutation
    /// clones containers of shared views (never tuples).
    state: Arc<SUnionState>,
    /// Reconciliation replay log (input SUnions only); *not* part of the
    /// checkpointed state — it is the data replayed after a restore.
    replay_log: Vec<ReplayEntry>,
    recording: bool,
}

impl SUnion {
    /// Builds an SUnion from its configuration.
    ///
    /// # Panics
    /// Panics on a zero bucket size or zero inputs (configuration errors).
    pub fn new(cfg: SUnionConfig) -> SUnion {
        assert!(cfg.n_inputs >= 1, "sunion needs at least one input");
        assert!(cfg.bucket.as_micros() > 0, "bucket size must be positive");
        let n = cfg.n_inputs;
        SUnion {
            cfg,
            state: Arc::new(SUnionState {
                buckets: BTreeMap::new(),
                watermarks: vec![None; n],
                emitted_through: None,
                announced_wm: None,
                phase: Phase::Stable,
                awaiting_correction: vec![false; n],
                rec_done_seen: vec![false; n],
                next_id: 1,
            }),
            replay_log: Vec::new(),
            recording: false,
        }
    }

    /// Current consistency phase.
    pub fn phase(&self) -> Phase {
        self.state.phase
    }

    /// Configuration access.
    pub fn config(&self) -> &SUnionConfig {
        &self.cfg
    }

    /// Mutable configuration access (the Consistency Manager adjusts delay
    /// policies at deployment time).
    pub fn config_mut(&mut self) -> &mut SUnionConfig {
        &mut self.cfg
    }

    /// Number of buffered (unemitted) tuples, for buffer accounting.
    pub fn buffered_tuples(&self) -> usize {
        self.state.buckets.values().map(|b| b.len).sum()
    }

    /// Tuples held in the reconciliation replay log, for buffer accounting
    /// (§8.1).
    pub fn replay_log_len(&self) -> usize {
        self.replay_log.iter().map(|(_, _, b)| b.len()).sum()
    }

    /// Starts (or stops) recording arrivals into the replay log. The
    /// fragment enables recording when it takes its pre-failure checkpoint.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.replay_log.clear();
        }
    }

    /// True if recording arrivals for replay.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Takes the replay log for reconciliation, leaving recording off. The
    /// entries are shared batch ranges in arrival order.
    pub fn take_replay_log(&mut self) -> Vec<ReplayEntry> {
        self.recording = false;
        std::mem::take(&mut self.replay_log)
    }

    /// True when this (input) SUnion's failed inputs have all been
    /// corrected: every tentative port saw its REC_DONE and boundaries cover
    /// every bucket emitted so far. This is the per-stream part of the
    /// node's "can reconcile" condition (§4.4).
    pub fn corrected_now(&self) -> bool {
        if self.state.phase == Phase::Stable {
            return true;
        }
        self.conditions_for_healed()
    }

    /// Emits the REC_DONE marker at the end of a reconciliation replay
    /// (§4.4.2) — called by the fragment on input SUnions.
    pub fn emit_rec_done(&mut self, now: Time, out: &mut BatchEmitter) {
        out.push(Tuple::rec_done(TupleId::NONE, now));
    }

    /// Surfaces a transport-level credit stall on this SUnion's input: the
    /// upstream's data sits queued awaiting credit because this node (or a
    /// consumer behind it) cannot keep up.
    ///
    /// A stall that has outlasted the detection delay is handled exactly
    /// like a missing-boundary failure (§4.3): enter UP_FAILURE, so the
    /// buckets that do trickle in are released as *delayed* tentative data
    /// under the configured [`DelayMode`] and the overload is visible
    /// downstream — bounded delay governed by the delay budget, never
    /// silent unbounded buffering. When the stall clears and boundaries
    /// catch up, the standard heal → REC_REQUEST → reconciliation path
    /// corrects everything, so stable output is unaffected.
    ///
    /// Shorter stalls are ignored: transient backpressure at saturation is
    /// normal queueing, not a failure.
    pub fn note_input_stall(&mut self, stalled_for: Duration, out: &mut BatchEmitter) {
        if stalled_for >= self.cfg.detect_delay {
            self.enter_failure(out);
        }
    }

    fn bucket_index(&self, stime: Time) -> u64 {
        stime.as_micros() / self.cfg.bucket.as_micros()
    }

    fn bucket_end(&self, index: u64) -> Time {
        Time((index + 1) * self.cfg.bucket.as_micros())
    }

    fn min_watermark(&self) -> Option<Time> {
        let mut min = Time::MAX;
        for wm in &self.state.watermarks {
            match wm {
                Some(t) => min = min.min(*t),
                None => return None,
            }
        }
        Some(min)
    }

    /// The delay a given [`DelayMode`] grants an unstable bucket; `None`
    /// means hold indefinitely.
    fn mode_delay(&self, mode: DelayMode) -> Option<Duration> {
        match mode {
            DelayMode::Suspend => None,
            DelayMode::Delay => Some(self.cfg.delay_budget),
            DelayMode::Process => Some(self.cfg.tentative_wait),
        }
    }

    /// The delay applied to the next unstable bucket in the current phase;
    /// `None` means hold indefinitely.
    fn phase_delay(&self) -> Option<Duration> {
        let mode = match self.state.phase {
            Phase::Stable => return Some(self.cfg.detect_delay),
            Phase::Failure => self.cfg.failure_mode,
            Phase::Healed => self.cfg.stabilization_mode,
        };
        self.mode_delay(mode)
    }

    /// Earliest tentative-release deadline over all buffered buckets.
    fn oldest_deadline(&self) -> Option<Time> {
        self.state
            .buckets
            .values()
            .map(|b| b.deadline)
            .filter(|&d| d != Time::MAX)
            .min()
    }

    fn conditions_for_healed(&self) -> bool {
        if self.state.awaiting_correction.iter().any(|&w| w) {
            return false;
        }
        let Some(min_wm) = self.min_watermark() else {
            return false;
        };
        match self.state.emitted_through {
            Some(et) => min_wm >= self.bucket_end(et),
            None => true,
        }
    }

    /// Re-evaluates the phase from current facts; signals REC_REQUEST on the
    /// Failure → Healed edge (Table I, control streams).
    fn recheck_phase(&mut self, out: &mut BatchEmitter) {
        match self.state.phase {
            Phase::Stable => {}
            Phase::Failure => {
                if self.conditions_for_healed() {
                    Arc::make_mut(&mut self.state).phase = Phase::Healed;
                    out.signal(ControlSignal::RecRequest);
                }
            }
            Phase::Healed => {
                if !self.conditions_for_healed() {
                    Arc::make_mut(&mut self.state).phase = Phase::Failure;
                }
            }
        }
    }

    fn enter_failure(&mut self, out: &mut BatchEmitter) {
        if self.state.phase == Phase::Stable {
            // The initial suspend is over: the buffered backlog follows the
            // UP_FAILURE policy from here ("after the initial delay, nodes
            // process subsequent tuples without any delay" for Process).
            let delay = self.mode_delay(self.cfg.failure_mode);
            let st = Arc::make_mut(&mut self.state);
            st.phase = Phase::Failure;
            for b in st.buckets.values_mut() {
                b.deadline = match delay {
                    Some(d) => b.deadline.min(b.first_arrival + d),
                    None => Time::MAX,
                };
            }
            out.signal(ControlSignal::UpFailure);
        } else if self.state.phase == Phase::Healed {
            Arc::make_mut(&mut self.state).phase = Phase::Failure;
        }
    }

    /// Buffers one same-bucket run of data tuples by shared view.
    fn insert_run(&mut self, idx: u64, port: usize, run: TupleBatch, now: Time) {
        let delay = self.phase_delay();
        let st = Arc::make_mut(&mut self.state);
        let entry = st.buckets.entry(idx).or_insert_with(|| {
            Bucket::new(
                now,
                match delay {
                    Some(d) => now + d,
                    None => Time::MAX,
                },
            )
        });
        entry.first_arrival = entry.first_arrival.min(now);
        entry.append_run(port as u16, run);
    }

    /// Buffers the data run `[start, end)` of `batch`, splitting it into
    /// maximal same-bucket sub-runs; each sub-run is an O(1) shared view.
    /// Late tuples for already-emitted buckets are dropped (under stable
    /// operation the boundary contract makes this impossible; during
    /// failures it happens — e.g. right after an upstream switch — and
    /// reconciliation replays them from the log, paper footnote 6).
    fn ingest_data_run(
        &mut self,
        port: usize,
        batch: &TupleBatch,
        start: usize,
        end: usize,
        now: Time,
    ) {
        let slice = batch.as_slice();
        let mut i = start;
        while i < end {
            let idx = self.bucket_index(slice[i].stime);
            let mut j = i + 1;
            while j < end && self.bucket_index(slice[j].stime) == idx {
                j += 1;
            }
            if self.state.emitted_through.is_none_or(|et| idx > et) {
                self.insert_run(idx, port, batch.slice(i..j), now);
            }
            i = j;
        }
    }

    /// Handles one non-data tuple (boundary / undo / rec-done) — shared by
    /// the batch and per-tuple paths.
    fn process_control(&mut self, port: usize, tuple: &Tuple, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Boundary => {
                {
                    let st = Arc::make_mut(&mut self.state);
                    let wm = &mut st.watermarks[port];
                    *wm = Some(wm.map_or(tuple.stime, |w| w.max(tuple.stime)));
                }
                if self.state.phase == Phase::Stable {
                    self.emit_stable_ready(out);
                } else {
                    self.recheck_phase(out);
                }
            }
            TupleKind::Undo => {
                if self.cfg.is_input {
                    self.apply_undo(port);
                } else {
                    out.push(tuple.clone());
                }
            }
            TupleKind::RecDone => {
                if self.cfg.is_input {
                    // Upstream finished stabilizing this stream: the stream
                    // is fully corrected from here (§4.4: tentative tuples
                    // after the REC_DONE belong to a *new* failure).
                    self.apply_undo(port);
                    Arc::make_mut(&mut self.state).awaiting_correction[port] = false;
                    self.recheck_phase(out);
                } else {
                    // Mid-diagram merge: forward one REC_DONE once every
                    // input port has delivered one (§4.4.2).
                    let st = Arc::make_mut(&mut self.state);
                    st.rec_done_seen[port] = true;
                    if st.rec_done_seen.iter().all(|&b| b) {
                        st.rec_done_seen.iter_mut().for_each(|b| *b = false);
                        st.awaiting_correction.iter_mut().for_each(|b| *b = false);
                        out.push(tuple.clone());
                    }
                }
            }
            TupleKind::Insertion | TupleKind::Tentative => {
                unreachable!("data kinds are handled by the run path")
            }
        }
    }

    /// Emits every bucket that the boundary frontier now covers, stably, in
    /// index order; then announces the new frontier downstream. Only valid
    /// in the Stable phase — after a failure all output must stay tentative
    /// until reconciliation (stable output is a prefix property). All
    /// released buckets and the trailing boundary seal into one shared
    /// output batch.
    fn emit_stable_ready(&mut self, out: &mut BatchEmitter) {
        debug_assert_eq!(self.state.phase, Phase::Stable);
        let Some(frontier) = self.min_watermark() else {
            return;
        };
        let bucket_us = self.cfg.bucket.as_micros();
        let frontier_idx = frontier.as_micros() / bucket_us; // buckets < this are covered
        if frontier_idx == 0 {
            return;
        }
        let covered_through = frontier_idx - 1;
        if self
            .state
            .emitted_through
            .is_some_and(|et| et >= covered_through)
        {
            return;
        }
        let announce = self.bucket_end(covered_through);
        let mut outv: Vec<Tuple> = Vec::new();
        let st = Arc::make_mut(&mut self.state);
        while let Some((&idx, _)) = st.buckets.iter().next() {
            if idx > covered_through {
                break;
            }
            let bucket = st.buckets.remove(&idx).expect("bucket key just read");
            Self::emit_bucket_into(&mut st.next_id, bucket, false, &mut outv);
        }
        st.emitted_through = Some(
            st.emitted_through
                .map_or(covered_through, |et| et.max(covered_through)),
        );
        // Announce the covered frontier downstream (§4.2.1: operators
        // produce boundaries with monotonically increasing values).
        if st.announced_wm.is_none_or(|w| announce > w) {
            st.announced_wm = Some(announce);
            outv.push(Tuple::boundary(TupleId::NONE, announce));
        }
        out.push_batch(TupleBatch::from_vec(outv));
    }

    /// Serializes one bucket into `outv` in the canonical deterministic
    /// order. This is the single copy on the data path: the protocol
    /// requires fresh tuples here (renumbered ids, the port as `origin`),
    /// so the bucket's shared views are materialized once into the output
    /// batch. The common in-order case skips the sort.
    fn emit_bucket_into(
        next_id: &mut u64,
        bucket: Bucket,
        force_tentative: bool,
        outv: &mut Vec<Tuple>,
    ) {
        let renumber = |t: &Tuple, port: u16, next_id: &mut u64| {
            let mut t = t.clone();
            t.origin = port;
            t.id = TupleId(*next_id);
            *next_id += 1;
            if force_tentative {
                t.kind = TupleKind::Tentative;
            }
            t
        };
        outv.reserve(bucket.len);
        if bucket.sorted {
            for seg in &bucket.segs {
                for t in seg.batch.as_slice() {
                    outv.push(renumber(t, seg.port, next_id));
                }
            }
        } else {
            let mut order: Vec<(&Tuple, u16)> = Vec::with_capacity(bucket.len);
            for seg in &bucket.segs {
                for t in seg.batch.as_slice() {
                    order.push((t, seg.port));
                }
            }
            // Stable sort: ties keep arrival order, exactly as per-tuple
            // insertion into one vector would.
            order.sort_by_key(|&(t, port)| (t.stime, port, t.id));
            for (t, port) in order {
                outv.push(renumber(t, port, next_id));
            }
        }
    }

    /// Releases expired buckets tentatively (availability path). Buckets
    /// whose frozen deadlines have not passed stay buffered — if a
    /// reconciliation replaces them first, they are emitted stably instead
    /// (the Delay-mode savings).
    fn emit_overdue(&mut self, now: Time, out: &mut BatchEmitter) {
        loop {
            let expired: Option<u64> = self
                .state
                .buckets
                .iter()
                .find(|(_, b)| b.deadline <= now)
                .map(|(&k, _)| k);
            let Some(idx) = expired else {
                return;
            };
            // Release is a failure event if we were stable (this also
            // re-deadlines the backlog under the UP_FAILURE policy, so keep
            // looping: more buckets may now be expired).
            self.enter_failure(out);
            if self.state.buckets[&idx].deadline > now {
                continue;
            }
            let st = Arc::make_mut(&mut self.state);
            let bucket = st.buckets.remove(&idx).expect("bucket key just read");
            let mut outv: Vec<Tuple> = Vec::new();
            Self::emit_bucket_into(&mut st.next_id, bucket, true, &mut outv);
            st.emitted_through = Some(st.emitted_through.map_or(idx, |et| et.max(idx)));
            out.push_batch(TupleBatch::from_vec(outv));
        }
    }

    /// The maximal non-tentative sub-runs of a batch. Survivors covering at
    /// least half the *backing allocation* stay O(1) shared slices; a small
    /// survivor set is compacted into a fresh allocation instead, so an
    /// UNDO can never leave a sliver pinning a large arrival batch in
    /// memory (the §8.1 buffer accounting counts tuples, and resident
    /// memory must track it).
    fn stable_runs(batch: &TupleBatch) -> Vec<TupleBatch> {
        let slice = batch.as_slice();
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut survivors = 0;
        let mut i = 0;
        while i < slice.len() {
            if slice[i].is_tentative() {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < slice.len() && !slice[j].is_tentative() {
                j += 1;
            }
            survivors += j - i;
            runs.push((i, j));
            i = j;
        }
        if survivors * 2 < batch.backing_len() {
            if survivors == 0 {
                return Vec::new();
            }
            let mut v = Vec::with_capacity(survivors);
            for &(i, j) in &runs {
                v.extend_from_slice(&slice[i..j]);
            }
            return vec![TupleBatch::from_vec(v)];
        }
        runs.into_iter().map(|(i, j)| batch.slice(i..j)).collect()
    }

    /// Handles an UNDO arriving from a stabilizing upstream neighbor: drop
    /// the uncorrected tentative input of that port from the replay log and
    /// from unemitted buckets; stable corrections follow on the stream.
    /// Edits are range splits on the shared views while survivors dominate
    /// their backing batch; mostly-undone batches are compacted instead
    /// (one copy of the survivors), so the undone arrivals are actually
    /// reclaimed rather than pinned by slivers.
    fn apply_undo(&mut self, port: usize) {
        // Every entry of the undone port goes through `stable_runs`, even
        // pure-stable ones: the compaction decision is per backing
        // allocation, and because a delivery batch arrives on exactly one
        // port, one UNDO pass visits every view of that batch this SUnion
        // holds (bucket segments and log entries alike) — compacting them
        // together is what releases the backing.
        let old = std::mem::take(&mut self.replay_log);
        self.replay_log.reserve(old.len());
        for (at, p, batch) in old {
            if p != port {
                self.replay_log.push((at, p, batch));
                continue;
            }
            self.replay_log
                .extend(Self::stable_runs(&batch).into_iter().map(|b| (at, p, b)));
        }
        let p16 = port as u16;
        let st = Arc::make_mut(&mut self.state);
        for bucket in st.buckets.values_mut() {
            if !bucket.segs.iter().any(|s| s.port == p16) {
                continue;
            }
            let mut segs = Vec::with_capacity(bucket.segs.len());
            let mut len = 0;
            for seg in &bucket.segs {
                if seg.port != p16 {
                    len += seg.batch.len();
                    segs.push(seg.clone());
                    continue;
                }
                for run in Self::stable_runs(&seg.batch) {
                    len += run.len();
                    segs.push(BucketSeg {
                        port: seg.port,
                        batch: run,
                    });
                }
            }
            // Removal keeps relative order, so a sorted bucket stays
            // sorted (`last_key` remains an upper bound on what is left).
            bucket.segs = segs;
            bucket.len = len;
        }
        st.buckets.retain(|_, b| b.len > 0);
    }
}

impl Operator for SUnion {
    fn name(&self) -> &'static str {
        "sunion"
    }

    fn n_inputs(&self) -> usize {
        self.cfg.n_inputs
    }

    fn process(&mut self, port: usize, tuple: &Tuple, now: Time, out: &mut BatchEmitter) {
        // Compat shim for per-tuple producers: the batch path is canonical.
        self.process_batch(port, &TupleBatch::single(tuple.clone()), now, out);
    }

    /// Batch-native ingestion — the serialization hot path. Data runs are
    /// buffered (and recorded for replay) as O(1) shared views of `batch`;
    /// control tuples are handled in place. Semantically identical to
    /// tuple-at-a-time delivery.
    fn process_batch(
        &mut self,
        port: usize,
        batch: &TupleBatch,
        now: Time,
        out: &mut BatchEmitter,
    ) {
        assert!(port < self.cfg.n_inputs, "port out of range");
        let record = self.recording && self.cfg.is_input;
        let slice = batch.as_slice();
        let mut i = 0;
        while i < slice.len() {
            let kind = slice[i].kind;
            match kind {
                TupleKind::Insertion | TupleKind::Tentative => {
                    let mut j = i + 1;
                    while j < slice.len() && slice[j].kind == kind {
                        j += 1;
                    }
                    // Data is recorded for replay as a shared range; UNDO
                    // and REC_DONE are not — they *edit* the log (replacing
                    // undone input with its corrections) rather than
                    // belonging to it.
                    if record {
                        self.replay_log.push((now, port, batch.slice(i..j)));
                    }
                    if kind == TupleKind::Tentative {
                        Arc::make_mut(&mut self.state).awaiting_correction[port] = true;
                        self.enter_failure(out);
                    }
                    self.ingest_data_run(port, batch, i, j, now);
                    i = j;
                }
                TupleKind::Boundary => {
                    if record {
                        self.replay_log.push((now, port, batch.slice(i..i + 1)));
                    }
                    self.process_control(port, &slice[i], out);
                    i += 1;
                }
                TupleKind::Undo | TupleKind::RecDone => {
                    self.process_control(port, &slice[i], out);
                    i += 1;
                }
            }
        }
    }

    fn tick(&mut self, now: Time, tentative_permitted: bool, out: &mut BatchEmitter) {
        if self.state.phase == Phase::Stable {
            self.emit_stable_ready(out);
        }
        if tentative_permitted {
            self.emit_overdue(now, out);
        }
        self.recheck_phase(out);
    }

    fn next_deadline(&self) -> Option<Time> {
        self.oldest_deadline()
    }

    fn wants_tentative(&self, now: Time) -> bool {
        self.oldest_deadline().is_some_and(|d| now >= d)
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::share(&self.state)
    }

    fn restore(&mut self, snap: &OpSnapshot) {
        self.state = snap.shared::<SUnionState>();
    }

    fn as_sunion_mut(&mut self) -> Option<&mut SUnion> {
        Some(self)
    }

    fn as_sunion(&self) -> Option<&SUnion> {
        Some(self)
    }

    // The reconciliation replay log is deliberately NOT part of the durable
    // image: durable checkpoints are only taken while the fragment is
    // untainted, and recording starts strictly after the taint checkpoint.
    fn snapshot_codec(&self) -> SnapshotCodec {
        fn put_bucket(buf: &mut Vec<u8>, idx: u64, b: &Bucket) {
            wire::put_u64(buf, idx);
            wire::put_u32(buf, b.segs.len() as u32);
            for seg in &b.segs {
                wire::put_u16(buf, seg.port);
                wire::put_batch(buf, &seg.batch);
            }
            wire::put_u64(buf, b.len as u64);
            wire::put_u64(buf, b.first_arrival.0);
            wire::put_u64(buf, b.deadline.0);
            put_bool(buf, b.sorted);
            wire::put_u64(buf, b.last_key.0 .0);
            wire::put_u16(buf, b.last_key.1);
            wire::put_u64(buf, b.last_key.2 .0);
        }
        fn read_bucket(r: &mut Reader<'_>) -> Result<(u64, Bucket), WireError> {
            let idx = r.u64()?;
            let n_segs = r.u32()? as usize;
            let mut segs = Vec::with_capacity(n_segs.min(1024));
            for _ in 0..n_segs {
                let port = r.u16()?;
                let batch = r.batch()?;
                segs.push(BucketSeg { port, batch });
            }
            let len = r.u64()? as usize;
            let first_arrival = Time(r.u64()?);
            let deadline = Time(r.u64()?);
            let sorted = read_bool(r)?;
            let last_key = (Time(r.u64()?), r.u16()?, TupleId(r.u64()?));
            Ok((
                idx,
                Bucket {
                    segs,
                    len,
                    first_arrival,
                    deadline,
                    sorted,
                    last_key,
                },
            ))
        }
        fn put_bools(buf: &mut Vec<u8>, v: &[bool]) {
            wire::put_u32(buf, v.len() as u32);
            for &b in v {
                put_bool(buf, b);
            }
        }
        fn read_bools(r: &mut Reader<'_>) -> Result<Vec<bool>, WireError> {
            let n = r.u32()? as usize;
            let mut v = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                v.push(read_bool(r)?);
            }
            Ok(v)
        }
        SnapshotCodec {
            encode: |snap, buf| {
                let st = snap.get::<SUnionState>();
                wire::put_u32(buf, st.buckets.len() as u32);
                for (idx, b) in &st.buckets {
                    put_bucket(buf, *idx, b);
                }
                wire::put_u32(buf, st.watermarks.len() as u32);
                for wm in &st.watermarks {
                    put_opt_u64(buf, wm.map(|t| t.0));
                }
                put_opt_u64(buf, st.emitted_through);
                put_opt_u64(buf, st.announced_wm.map(|t| t.0));
                wire::put_u8(
                    buf,
                    match st.phase {
                        Phase::Stable => 0,
                        Phase::Failure => 1,
                        Phase::Healed => 2,
                    },
                );
                put_bools(buf, &st.awaiting_correction);
                put_bools(buf, &st.rec_done_seen);
                wire::put_u64(buf, st.next_id);
            },
            decode: |r| {
                let n_buckets = r.u32()? as usize;
                let mut buckets = BTreeMap::new();
                for _ in 0..n_buckets {
                    let (idx, b) = read_bucket(r)?;
                    buckets.insert(idx, b);
                }
                let n_wm = r.u32()? as usize;
                let mut watermarks = Vec::with_capacity(n_wm.min(1024));
                for _ in 0..n_wm {
                    watermarks.push(read_opt_u64(r)?.map(Time));
                }
                let emitted_through = read_opt_u64(r)?;
                let announced_wm = read_opt_u64(r)?.map(Time);
                let phase = match r.u8()? {
                    0 => Phase::Stable,
                    1 => Phase::Failure,
                    2 => Phase::Healed,
                    tag => return Err(WireError::BadTag { what: "phase", tag }),
                };
                let awaiting_correction = read_bools(r)?;
                let rec_done_seen = read_bools(r)?;
                let next_id = r.u64()?;
                Ok(OpSnapshot::new(SUnionState {
                    buckets,
                    watermarks,
                    emitted_through,
                    announced_wm,
                    phase,
                    awaiting_correction,
                    rec_done_seen,
                    next_id,
                }))
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Value;

    fn cfg(n: usize) -> SUnionConfig {
        SUnionConfig {
            n_inputs: n,
            bucket: Duration::from_millis(100),
            detect_delay: Duration::from_secs(2),
            delay_budget: Duration::from_secs(2),
            tentative_wait: Duration::from_millis(300),
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            is_input: true,
        }
    }

    fn data(id: u64, ms: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(ms),
            vec![Value::Int(id as i64)],
        )
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    /// Feeds the same tuples in two different arrival interleavings and
    /// checks the emitted order is identical — the core §4.2 guarantee.
    #[test]
    fn serialization_is_order_insensitive() {
        let run = |swap: bool| {
            let mut s = SUnion::new(cfg(2));
            let mut out = BatchEmitter::new();
            let now = Time::from_millis(1);
            let a = data(1, 30);
            let b = data(1, 10);
            if swap {
                s.process(1, &b, now, &mut out);
                s.process(0, &a, now, &mut out);
            } else {
                s.process(0, &a, now, &mut out);
                s.process(1, &b, now, &mut out);
            }
            s.process(0, &boundary(100), now, &mut out);
            s.process(1, &boundary(100), now, &mut out);
            out.tuples()
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.stime.as_millis(), t.origin))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(false), vec![(10, 1), (30, 0)]);
    }

    #[test]
    fn stable_emission_waits_for_all_ports() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        let now = Time::from_millis(1);
        s.process(0, &data(1, 50), now, &mut out);
        s.process(0, &boundary(200), now, &mut out);
        assert!(out.tuples().is_empty(), "port 1 has no boundary yet");
        s.process(1, &boundary(200), now, &mut out);
        let kinds: Vec<TupleKind> = out.tuples().iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![TupleKind::Insertion, TupleKind::Boundary]);
        assert_eq!(out.tuples()[1].stime, Time::from_millis(200));
    }

    #[test]
    fn out_of_order_within_bucket_is_sorted() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let now = Time::from_millis(1);
        s.process(0, &data(1, 80), now, &mut out);
        s.process(0, &data(2, 20), now, &mut out);
        s.process(0, &boundary(100), now, &mut out);
        let stimes: Vec<u64> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert_eq!(stimes, vec![20, 80]);
    }

    #[test]
    fn detection_fires_after_detect_delay_and_signals_up_failure() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        let arrival = Time::from_millis(100);
        s.process(0, &data(1, 50), arrival, &mut out);
        // Port 1 never delivers a boundary: the bucket cannot stabilize.
        assert!(!s.wants_tentative(Time::from_millis(2099)));
        assert!(s.wants_tentative(Time::from_millis(2100)));
        s.tick(Time::from_millis(2100), true, &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        assert_eq!(out.signals(), vec![ControlSignal::UpFailure]);
        let emitted: Vec<TupleKind> = out.tuples().iter().map(|t| t.kind).collect();
        assert_eq!(emitted, vec![TupleKind::Tentative]);
    }

    #[test]
    fn tentative_release_respects_permission() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        // Overdue but the fragment has not checkpointed yet.
        s.tick(Time::from_secs(10), false, &mut out);
        assert!(out.tuples().is_empty());
        s.tick(Time::from_secs(10), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
    }

    #[test]
    fn process_mode_emits_subsequent_buckets_after_short_wait() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        // Next bucket arrives at t=2200; in Process mode it is released
        // after tentative_wait (300 ms), not after detect_delay.
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        assert!(!s.wants_tentative(Time::from_millis(2499)));
        assert!(s.wants_tentative(Time::from_millis(2500)));
        s.tick(Time::from_millis(2500), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn delay_mode_holds_each_bucket_for_the_budget() {
        let mut c = cfg(2);
        c.failure_mode = DelayMode::Delay;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        s.tick(Time::from_millis(2500), true, &mut out);
        assert!(out.tuples().is_empty(), "delay mode holds the full budget");
        s.tick(Time::from_millis(4200), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
    }

    #[test]
    fn suspend_mode_never_releases() {
        let mut c = cfg(2);
        c.failure_mode = DelayMode::Suspend;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection releases 1st
        out.take();
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        s.tick(Time::from_secs(100), true, &mut out);
        assert!(out.tuples().is_empty());
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn heal_signals_rec_request() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        // Failure heals: both ports deliver boundaries covering everything
        // emitted so far.
        s.process(0, &boundary(100), Time::from_millis(2200), &mut out);
        s.process(1, &boundary(100), Time::from_millis(2200), &mut out);
        assert_eq!(s.phase(), Phase::Healed);
        assert!(out.signals().contains(&ControlSignal::RecRequest));
        assert!(s.corrected_now());
    }

    #[test]
    fn tentative_input_triggers_failure_and_requires_rec_done() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(1), Time::from_millis(10), vec![]);
        s.process(0, &t, Time::from_millis(20), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        assert_eq!(out.signals(), vec![ControlSignal::UpFailure]);
        // Boundary alone does not heal: the tentative input is uncorrected.
        s.process(0, &boundary(100), Time::from_millis(30), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        // UNDO + corrections + REC_DONE heal it.
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(40),
            &mut out,
        );
        s.process(0, &data(1, 10), Time::from_millis(40), &mut out);
        s.process(
            0,
            &Tuple::rec_done(TupleId::NONE, Time::from_millis(40)),
            Time::from_millis(40),
            &mut out,
        );
        assert_eq!(s.phase(), Phase::Healed);
    }

    #[test]
    fn undo_drops_tentative_from_log_and_buckets() {
        let mut s = SUnion::new(cfg(1));
        s.set_recording(true);
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(5), Time::from_millis(10), vec![]);
        s.process(0, &t, Time::from_millis(20), &mut out);
        s.process(0, &data(9, 15), Time::from_millis(21), &mut out);
        assert_eq!(s.replay_log_len(), 2);
        assert_eq!(s.buffered_tuples(), 2);
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(30),
            &mut out,
        );
        assert_eq!(s.replay_log_len(), 1, "stable entry kept");
        assert_eq!(s.buffered_tuples(), 1);
    }

    #[test]
    fn undo_splits_mixed_batches_by_range() {
        // One arrival batch carries a stable majority and a tentative
        // suffix; the UNDO must strip only the tentative tuples, keeping
        // the surviving stable run as a shared range view (no copies: the
        // survivors dominate the backing allocation).
        let mut s = SUnion::new(cfg(1));
        s.set_recording(true);
        let mut out = BatchEmitter::new();
        let arrivals = TupleBatch::from_vec(vec![
            data(1, 10),
            data(2, 20),
            data(3, 30),
            Tuple::tentative(TupleId(4), Time::from_millis(40), vec![]),
            Tuple::tentative(TupleId(5), Time::from_millis(50), vec![]),
        ]);
        s.process_batch(0, &arrivals, Time::from_millis(60), &mut out);
        assert_eq!(s.buffered_tuples(), 5);
        assert_eq!(s.replay_log_len(), 5);
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(70),
            &mut out,
        );
        assert_eq!(s.buffered_tuples(), 3);
        assert_eq!(s.replay_log_len(), 3);
        // The surviving log entry still shares the arrival backing.
        let log = s.take_replay_log();
        assert!(log.iter().all(|(_, _, b)| b.shares_backing(&arrivals)));
        // And release (tentative, we are in UP_FAILURE) serializes exactly
        // the survivors.
        s.tick(Time::from_secs(10), true, &mut out);
        let stimes: Vec<u64> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert_eq!(stimes, vec![10, 20, 30]);
    }

    #[test]
    fn undo_compacts_sliver_survivors_instead_of_pinning_the_batch() {
        // 1 stable survivor out of 8: keeping a shared view would pin the
        // whole 8-tuple arrival allocation; the UNDO must compact instead.
        let mut s = SUnion::new(cfg(1));
        s.set_recording(true);
        let mut out = BatchEmitter::new();
        let mut v: Vec<Tuple> = (1..8)
            .map(|i| Tuple::tentative(TupleId(i), Time::from_millis(10 + i), vec![]))
            .collect();
        v.insert(3, data(8, 14));
        let arrivals = TupleBatch::from_vec(v);
        s.process_batch(0, &arrivals, Time::from_millis(50), &mut out);
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(60),
            &mut out,
        );
        assert_eq!(s.buffered_tuples(), 1);
        assert_eq!(s.replay_log_len(), 1);
        let log = s.take_replay_log();
        assert!(
            log.iter().all(|(_, _, b)| !b.shares_backing(&arrivals)),
            "a sliver survivor must be compacted, not pin the arrival batch"
        );
        let kept = s
            .state
            .buckets
            .values()
            .flat_map(|b| b.segs.iter())
            .all(|seg| !seg.batch.shares_backing(&arrivals));
        assert!(kept, "bucket survivors compacted too");
    }

    #[test]
    fn input_stall_outlasting_detection_enters_failure() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        // A short stall is normal queueing: ignored.
        s.note_input_stall(Duration::from_millis(500), &mut out);
        assert_eq!(s.phase(), Phase::Stable);
        assert!(out.signals().is_empty());
        // A stall past the detection delay is an upstream failure: the
        // buffered bucket is re-deadlined under the failure mode and the
        // UP_FAILURE signal is raised.
        s.note_input_stall(Duration::from_secs(3), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        assert_eq!(out.signals(), vec![ControlSignal::UpFailure]);
        // The bucket now releases after the (Process-mode) tentative wait,
        // not the full detection delay.
        s.tick(Time::from_millis(401), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
        // Repeated stall reports while already failed are no-ops.
        s.note_input_stall(Duration::from_secs(9), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
    }

    #[test]
    fn mid_diagram_sunion_merges_rec_done() {
        let mut c = cfg(2);
        c.is_input = false;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        let rd = Tuple::rec_done(TupleId::NONE, Time::ZERO);
        s.process(0, &rd, Time::ZERO, &mut out);
        assert!(out.tuples().is_empty(), "waits for all ports");
        s.process(1, &rd, Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::RecDone);
    }

    #[test]
    fn checkpoint_restore_resets_serialization_but_keeps_replay_log() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let snap = s.checkpoint();
        s.set_recording(true);
        s.process(0, &data(1, 50), Time::from_millis(60), &mut out);
        s.tick(Time::from_secs(10), true, &mut out); // tentative release
        assert_eq!(s.phase(), Phase::Failure);
        s.restore(&snap);
        assert_eq!(s.phase(), Phase::Stable);
        assert_eq!(s.buffered_tuples(), 0);
        assert_eq!(s.replay_log_len(), 1, "replay log survives restore");
    }

    #[test]
    fn replay_regenerates_identical_stable_output() {
        let run = |mut s: SUnion| {
            let mut out = BatchEmitter::new();
            s.process(0, &data(1, 10), Time::from_millis(20), &mut out);
            s.process(0, &data(2, 60), Time::from_millis(70), &mut out);
            s.process(0, &boundary(100), Time::from_millis(110), &mut out);
            out.tuples()
        };
        let first = run(SUnion::new(cfg(1)));
        // Restore-from-checkpoint then replay produces identical ids/kinds.
        let mut s = SUnion::new(cfg(1));
        let snap = s.checkpoint();
        s.restore(&snap);
        let second = run(s);
        assert_eq!(first, second);
    }

    #[test]
    fn cow_checkpoint_is_isolated_from_later_mutation() {
        // The snapshot is a shared capture: processing more data after the
        // checkpoint must copy-on-write the live state, never the capture —
        // and the capture stays restorable multiple times (Fig. 11(b)).
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(60), &mut out);
        let snap = s.checkpoint();
        s.process(0, &data(2, 70), Time::from_millis(80), &mut out);
        s.process(0, &data(3, 150), Time::from_millis(160), &mut out);
        assert_eq!(s.buffered_tuples(), 3);
        s.restore(&snap);
        assert_eq!(s.buffered_tuples(), 1, "capture predates the mutations");
        s.process(0, &data(2, 70), Time::from_millis(80), &mut out);
        s.restore(&snap);
        assert_eq!(s.buffered_tuples(), 1, "capture restorable repeatedly");
    }

    #[test]
    fn batch_ingestion_matches_per_tuple_ingestion() {
        // The batch path buffers shared views; the per-tuple path wraps
        // singles. Output sequences (data, boundaries, signals) must be
        // byte-identical.
        let mixed = vec![
            data(1, 20),
            data(2, 80),
            data(3, 150),
            boundary(100),
            data(4, 170),
            data(5, 60), // late for bucket 0 once emitted: dropped
            boundary(200),
        ];
        let per_tuple = {
            let mut s = SUnion::new(cfg(1));
            let mut out = BatchEmitter::new();
            for t in &mixed {
                s.process(0, t, Time::from_millis(1), &mut out);
            }
            out.take_tuples()
        };
        let batched = {
            let mut s = SUnion::new(cfg(1));
            let mut out = BatchEmitter::new();
            s.process_batch(
                0,
                &TupleBatch::from_vec(mixed.clone()),
                Time::from_millis(1),
                &mut out,
            );
            out.take_tuples()
        };
        assert_eq!(per_tuple, batched);
    }

    #[test]
    fn in_order_buckets_skip_the_stabilization_sort() {
        // White-box: a bucket fed in canonical order keeps sorted=true; one
        // fed out of order flips it. Both must emit correctly either way.
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process_batch(
            0,
            &TupleBatch::from_vec(vec![data(1, 10), data(2, 20), data(3, 30)]),
            Time::from_millis(1),
            &mut out,
        );
        assert!(s.state.buckets.values().all(|b| b.sorted));
        s.process(0, &data(4, 15), Time::from_millis(2), &mut out);
        assert!(!s.state.buckets.values().all(|b| b.sorted));
        s.process(0, &boundary(100), Time::from_millis(3), &mut out);
        let stimes: Vec<u64> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert_eq!(stimes, vec![10, 15, 20, 30]);
    }

    #[test]
    fn buffered_runs_share_the_arrival_backing() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let arrivals = TupleBatch::from_vec(vec![data(1, 10), data(2, 20), data(3, 120)]);
        s.process_batch(0, &arrivals, Time::from_millis(1), &mut out);
        assert_eq!(s.buffered_tuples(), 3);
        let all_shared = s
            .state
            .buckets
            .values()
            .all(|b| b.segs.iter().all(|seg| seg.batch.shares_backing(&arrivals)));
        assert!(all_shared, "ingestion must buffer views, not copies");
    }

    #[test]
    fn late_tuple_for_emitted_bucket_is_dropped() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(60), &mut out);
        s.process(0, &boundary(100), Time::from_millis(110), &mut out);
        let n = out.tuples().len();
        // stime 30 belongs to the already-emitted bucket 0.
        s.process(0, &data(2, 30), Time::from_millis(120), &mut out);
        s.process(0, &boundary(200), Time::from_millis(210), &mut out);
        let data_after: Vec<u64> = out.tuples()[n..]
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert!(data_after.is_empty(), "late tuple dropped: {data_after:?}");
    }

    #[test]
    fn empty_buckets_advance_frontier_with_boundaries_only() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process(0, &boundary(500), Time::from_millis(510), &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Boundary);
        assert_eq!(out.tuples()[0].stime, Time::from_millis(500));
    }
}
