//! SUnion: the data-serializing operator at the core of DPC (§4.2).
//!
//! SUnion takes one or more input streams and orders all their tuples into a
//! single deterministic sequence so that every replica of a query-diagram
//! fragment processes identical input in identical order. It buffers tuples
//! in **buckets** — fixed, disjoint intervals of `tuple_stime` — and uses
//! **boundary tuples** to decide when a bucket is *stable* (eq. 1 of the
//! paper): a bucket `[kB, (k+1)B)` is stable once every input stream has
//! delivered a boundary with stime ≥ `(k+1)B`.
//!
//! Because it already buffers tuples, SUnion is also where DPC implements
//! the availability/consistency trade-off (§4.3, §6):
//!
//! * While **stable**, buckets are emitted in order as they become stable,
//!   followed by an output boundary.
//! * When a bucket overruns its **detection delay** (the assigned initial
//!   suspend, §6.3) without becoming stable, the SUnion declares an upstream
//!   failure, asks the fragment to checkpoint (§4.4.1), and emits the
//!   bucket's available tuples as **tentative**.
//! * While failed, subsequent buckets are released according to the
//!   configured [`DelayMode`] — `Process` (almost immediately), `Delay`
//!   (each bucket held up to the delay budget), or `Suspend` (held
//!   indefinitely) — the six §6.1 variants are combinations of these for the
//!   UP_FAILURE and STABILIZATION phases.
//!
//! SUnions placed on a node's *input streams* additionally record a replay
//! log of everything received since the last checkpoint; reconciliation
//! replays that log through the restored fragment (§4.4.1). They also
//! consume UNDO / REC_DONE tuples arriving from stabilizing upstream
//! neighbors, replacing undone tentative input with its stable corrections
//! (§4.4.2).

use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::{ControlSignal, Duration, Time, Tuple, TupleId, TupleKind};
use std::collections::BTreeMap;

/// How an SUnion treats buckets that cannot (yet) be emitted stably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayMode {
    /// Hold new tuples indefinitely (consistency over availability; only
    /// viable for failures shorter than the delay bound, §6.1).
    Suspend,
    /// Hold each bucket up to the delay budget before emitting tentatively
    /// ("running on the verge of breaking the availability requirement").
    Delay,
    /// Emit buckets almost as they arrive, after a short minimum wait (the
    /// paper's 300 ms: without tentative boundaries an SUnion cannot know
    /// how soon a tentative bucket is complete, footnote 5).
    Process,
}

/// Static + policy configuration of an [`SUnion`].
#[derive(Debug, Clone)]
pub struct SUnionConfig {
    /// Number of input streams to serialize.
    pub n_inputs: usize,
    /// Bucket granularity (§4.2.1).
    pub bucket: Duration,
    /// Failure-detection threshold and initial suspend: a bucket older than
    /// this that is still unstable triggers UP_FAILURE. §6.3 shows this
    /// should be the application's full incremental latency budget (minus a
    /// queueing safety margin) at *every* SUnion.
    pub detect_delay: Duration,
    /// Per-bucket delay used by [`DelayMode::Delay`] after detection.
    pub delay_budget: Duration,
    /// Minimum wait before releasing a tentative bucket in
    /// [`DelayMode::Process`].
    pub tentative_wait: Duration,
    /// Policy while an upstream failure is in progress (UP_FAILURE).
    pub failure_mode: DelayMode,
    /// Policy after the failure healed but before this node reconciled
    /// (STABILIZATION of this node or its replica).
    pub stabilization_mode: DelayMode,
    /// True if this SUnion sits on a node input stream: it then keeps the
    /// reconciliation replay log and consumes UNDO/REC_DONE from upstream.
    pub is_input: bool,
}

impl SUnionConfig {
    /// A reasonable starting configuration for `n` inputs: 100 ms buckets,
    /// 3 s detection delay, Process & Process policies.
    pub fn new(n_inputs: usize) -> SUnionConfig {
        SUnionConfig {
            n_inputs,
            bucket: Duration::from_millis(100),
            detect_delay: Duration::from_secs(3),
            delay_budget: Duration::from_secs(3),
            tentative_wait: Duration::from_millis(300),
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            is_input: false,
        }
    }
}

/// Consistency phase of one SUnion (a per-operator shadow of the node state
/// machine in Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// All inputs stable; emitting stable buckets.
    Stable,
    /// An upstream failure is in progress: some input is missing boundaries
    /// or carries uncorrected tentative data.
    Failure,
    /// All inputs corrected; awaiting fragment reconciliation.
    Healed,
}

#[derive(Debug, Clone)]
struct Bucket {
    tuples: Vec<Tuple>,
    /// Earliest arrival time of any tuple in the bucket; deadlines are
    /// measured from here ("within D time-units of their arrival", §2.3.1).
    first_arrival: Time,
    /// Tentative-release deadline, frozen under the delay policy in force
    /// when the bucket was created. Freezing is what produces the paper's
    /// §6.1 trade-off: a bucket still unexpired when reconciliation
    /// replaces it is never emitted tentatively (the Delay savings), while
    /// a long stabilization lets deadlines expire and the data flows
    /// tentatively anyway (why delaying stops helping for long failures,
    /// Fig. 18).
    deadline: Time,
}

/// One entry of the reconciliation replay log: (arrival time, input port,
/// tuple). Arrival times are preserved so replayed buckets keep their
/// original deadlines.
pub type ReplayEntry = (Time, usize, Tuple);

#[derive(Clone)]
struct SUnionState {
    buckets: BTreeMap<u64, Bucket>,
    /// Latest boundary stime per port.
    watermarks: Vec<Option<Time>>,
    /// Highest bucket index emitted (stably or tentatively).
    emitted_through: Option<u64>,
    /// Stable-boundary frontier already announced downstream.
    announced_wm: Option<Time>,
    phase: Phase,
    /// Ports that delivered tentative tuples not yet corrected by an
    /// UNDO + REC_DONE sequence.
    awaiting_correction: Vec<bool>,
    /// REC_DONE merge tracking for mid-diagram SUnions.
    rec_done_seen: Vec<bool>,
    /// Output id generator.
    next_id: u64,
}

/// The serializing union. See the module docs for the full protocol role.
pub struct SUnion {
    cfg: SUnionConfig,
    state: SUnionState,
    /// Reconciliation replay log (input SUnions only); *not* part of the
    /// checkpointed state — it is the data replayed after a restore.
    replay_log: Vec<ReplayEntry>,
    recording: bool,
}

impl SUnion {
    /// Builds an SUnion from its configuration.
    ///
    /// # Panics
    /// Panics on a zero bucket size or zero inputs (configuration errors).
    pub fn new(cfg: SUnionConfig) -> SUnion {
        assert!(cfg.n_inputs >= 1, "sunion needs at least one input");
        assert!(cfg.bucket.as_micros() > 0, "bucket size must be positive");
        let n = cfg.n_inputs;
        SUnion {
            cfg,
            state: SUnionState {
                buckets: BTreeMap::new(),
                watermarks: vec![None; n],
                emitted_through: None,
                announced_wm: None,
                phase: Phase::Stable,
                awaiting_correction: vec![false; n],
                rec_done_seen: vec![false; n],
                next_id: 1,
            },
            replay_log: Vec::new(),
            recording: false,
        }
    }

    /// Current consistency phase.
    pub fn phase(&self) -> Phase {
        self.state.phase
    }

    /// Configuration access.
    pub fn config(&self) -> &SUnionConfig {
        &self.cfg
    }

    /// Mutable configuration access (the Consistency Manager adjusts delay
    /// policies at deployment time).
    pub fn config_mut(&mut self) -> &mut SUnionConfig {
        &mut self.cfg
    }

    /// Number of buffered (unemitted) tuples, for buffer accounting.
    pub fn buffered_tuples(&self) -> usize {
        self.state.buckets.values().map(|b| b.tuples.len()).sum()
    }

    /// Length of the reconciliation replay log, for buffer accounting
    /// (§8.1).
    pub fn replay_log_len(&self) -> usize {
        self.replay_log.len()
    }

    /// Starts (or stops) recording arrivals into the replay log. The
    /// fragment enables recording when it takes its pre-failure checkpoint.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.replay_log.clear();
        }
    }

    /// True if recording arrivals for replay.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Takes the replay log for reconciliation, leaving recording off.
    pub fn take_replay_log(&mut self) -> Vec<ReplayEntry> {
        self.recording = false;
        std::mem::take(&mut self.replay_log)
    }

    /// True when this (input) SUnion's failed inputs have all been
    /// corrected: every tentative port saw its REC_DONE and boundaries cover
    /// every bucket emitted so far. This is the per-stream part of the
    /// node's "can reconcile" condition (§4.4).
    pub fn corrected_now(&self) -> bool {
        if self.state.phase == Phase::Stable {
            return true;
        }
        self.conditions_for_healed()
    }

    /// Emits the REC_DONE marker at the end of a reconciliation replay
    /// (§4.4.2) — called by the fragment on input SUnions.
    pub fn emit_rec_done(&mut self, now: Time, out: &mut BatchEmitter) {
        out.push(Tuple::rec_done(TupleId::NONE, now));
    }

    fn bucket_index(&self, stime: Time) -> u64 {
        stime.as_micros() / self.cfg.bucket.as_micros()
    }

    fn bucket_end(&self, index: u64) -> Time {
        Time((index + 1) * self.cfg.bucket.as_micros())
    }

    fn min_watermark(&self) -> Option<Time> {
        let mut min = Time::MAX;
        for wm in &self.state.watermarks {
            match wm {
                Some(t) => min = min.min(*t),
                None => return None,
            }
        }
        Some(min)
    }

    /// The delay applied to the next unstable bucket in the current phase;
    /// `None` means hold indefinitely.
    fn phase_delay(&self) -> Option<Duration> {
        let mode = match self.state.phase {
            Phase::Stable => return Some(self.cfg.detect_delay),
            Phase::Failure => self.cfg.failure_mode,
            Phase::Healed => self.cfg.stabilization_mode,
        };
        match mode {
            DelayMode::Suspend => None,
            DelayMode::Delay => Some(self.cfg.delay_budget),
            DelayMode::Process => Some(self.cfg.tentative_wait),
        }
    }

    /// Earliest tentative-release deadline over all buffered buckets.
    fn oldest_deadline(&self) -> Option<Time> {
        self.state
            .buckets
            .values()
            .map(|b| b.deadline)
            .filter(|&d| d != Time::MAX)
            .min()
    }

    fn conditions_for_healed(&self) -> bool {
        if self.state.awaiting_correction.iter().any(|&w| w) {
            return false;
        }
        let Some(min_wm) = self.min_watermark() else {
            return false;
        };
        match self.state.emitted_through {
            Some(et) => min_wm >= self.bucket_end(et),
            None => true,
        }
    }

    /// Re-evaluates the phase from current facts; signals REC_REQUEST on the
    /// Failure → Healed edge (Table I, control streams).
    fn recheck_phase(&mut self, out: &mut BatchEmitter) {
        match self.state.phase {
            Phase::Stable => {}
            Phase::Failure => {
                if self.conditions_for_healed() {
                    self.state.phase = Phase::Healed;
                    out.signal(ControlSignal::RecRequest);
                }
            }
            Phase::Healed => {
                if !self.conditions_for_healed() {
                    self.state.phase = Phase::Failure;
                }
            }
        }
    }

    fn enter_failure(&mut self, out: &mut BatchEmitter) {
        if self.state.phase == Phase::Stable {
            self.state.phase = Phase::Failure;
            // The initial suspend is over: the buffered backlog follows the
            // UP_FAILURE policy from here ("after the initial delay, nodes
            // process subsequent tuples without any delay" for Process).
            let delay = self.phase_delay();
            for b in self.state.buckets.values_mut() {
                b.deadline = match delay {
                    Some(d) => b.deadline.min(b.first_arrival + d),
                    None => Time::MAX,
                };
            }
            out.signal(ControlSignal::UpFailure);
        } else if self.state.phase == Phase::Healed {
            self.state.phase = Phase::Failure;
        }
    }

    fn insert_data(&mut self, port: usize, tuple: &Tuple, now: Time) {
        let idx = self.bucket_index(tuple.stime);
        if self.state.emitted_through.is_some_and(|et| idx <= et) {
            // Late tuple for an already-emitted bucket. Under stable
            // operation the boundary contract makes this impossible; during
            // failures it happens (e.g. right after an upstream switch) and
            // the tuple is dropped tentatively — reconciliation replays it
            // from the log (paper footnote 6).
            return;
        }
        let mut t = tuple.clone();
        t.origin = port as u16;
        let delay = self.phase_delay();
        let entry = self.state.buckets.entry(idx).or_insert_with(|| Bucket {
            tuples: Vec::new(),
            first_arrival: now,
            deadline: match delay {
                Some(d) => now + d,
                None => Time::MAX,
            },
        });
        entry.first_arrival = entry.first_arrival.min(now);
        entry.tuples.push(t);
    }

    /// Emits every bucket that the boundary frontier now covers, stably, in
    /// index order; then announces the new frontier downstream. Only valid
    /// in the Stable phase — after a failure all output must stay tentative
    /// until reconciliation (stable output is a prefix property).
    fn emit_stable_ready(&mut self, out: &mut BatchEmitter) {
        debug_assert_eq!(self.state.phase, Phase::Stable);
        let Some(frontier) = self.min_watermark() else {
            return;
        };
        let bucket_us = self.cfg.bucket.as_micros();
        let frontier_idx = frontier.as_micros() / bucket_us; // buckets < this are covered
        if frontier_idx == 0 {
            return;
        }
        let covered_through = frontier_idx - 1;
        if self
            .state
            .emitted_through
            .is_some_and(|et| et >= covered_through)
        {
            return;
        }
        while let Some((&idx, _)) = self.state.buckets.iter().next() {
            if idx > covered_through {
                break;
            }
            let bucket = self
                .state
                .buckets
                .remove(&idx)
                .expect("bucket key just read");
            self.emit_bucket(bucket, false, out);
        }
        self.state.emitted_through = Some(
            self.state
                .emitted_through
                .map_or(covered_through, |et| et.max(covered_through)),
        );
        // Announce the covered frontier downstream (§4.2.1: operators
        // produce boundaries with monotonically increasing values).
        let announce = self.bucket_end(covered_through);
        if self.state.announced_wm.is_none_or(|w| announce > w) {
            self.state.announced_wm = Some(announce);
            out.push(Tuple::boundary(TupleId::NONE, announce));
        }
    }

    /// Emits one bucket's tuples in the canonical deterministic order.
    fn emit_bucket(&mut self, mut bucket: Bucket, force_tentative: bool, out: &mut BatchEmitter) {
        bucket.tuples.sort_by_key(|t| (t.stime, t.origin, t.id));
        for mut t in bucket.tuples {
            t.id = TupleId(self.state.next_id);
            self.state.next_id += 1;
            if force_tentative {
                t.kind = TupleKind::Tentative;
            }
            out.push(t);
        }
    }

    /// Releases expired buckets tentatively (availability path). Buckets
    /// whose frozen deadlines have not passed stay buffered — if a
    /// reconciliation replaces them first, they are emitted stably instead
    /// (the Delay-mode savings).
    fn emit_overdue(&mut self, now: Time, out: &mut BatchEmitter) {
        loop {
            let expired: Option<u64> = self
                .state
                .buckets
                .iter()
                .find(|(_, b)| b.deadline <= now)
                .map(|(&k, _)| k);
            let Some(idx) = expired else {
                return;
            };
            // Release is a failure event if we were stable (this also
            // re-deadlines the backlog under the UP_FAILURE policy, so keep
            // looping: more buckets may now be expired).
            self.enter_failure(out);
            if self.state.buckets[&idx].deadline > now {
                continue;
            }
            let bucket = self
                .state
                .buckets
                .remove(&idx)
                .expect("bucket key just read");
            self.emit_bucket(bucket, true, out);
            self.state.emitted_through =
                Some(self.state.emitted_through.map_or(idx, |et| et.max(idx)));
        }
    }

    /// Handles an UNDO arriving from a stabilizing upstream neighbor: drop
    /// the uncorrected tentative input of that port from the replay log and
    /// from unemitted buckets; stable corrections follow on the stream.
    fn apply_undo(&mut self, port: usize) {
        self.replay_log
            .retain(|(_, p, t)| *p != port || !t.is_tentative());
        for bucket in self.state.buckets.values_mut() {
            bucket
                .tuples
                .retain(|t| t.origin as usize != port || !t.is_tentative());
        }
        self.state.buckets.retain(|_, b| !b.tuples.is_empty());
    }
}

impl Operator for SUnion {
    fn name(&self) -> &'static str {
        "sunion"
    }

    fn n_inputs(&self) -> usize {
        self.cfg.n_inputs
    }

    fn process(&mut self, port: usize, tuple: &Tuple, now: Time, out: &mut BatchEmitter) {
        assert!(port < self.cfg.n_inputs, "port out of range");
        // Data and boundaries are recorded for replay; UNDO and REC_DONE are
        // not — they *edit* the log (replacing undone input with its
        // corrections) rather than belonging to it.
        if self.recording
            && self.cfg.is_input
            && matches!(
                tuple.kind,
                TupleKind::Insertion | TupleKind::Tentative | TupleKind::Boundary
            )
        {
            self.replay_log.push((now, port, tuple.clone()));
        }
        match tuple.kind {
            TupleKind::Insertion => self.insert_data(port, tuple, now),
            TupleKind::Tentative => {
                self.state.awaiting_correction[port] = true;
                self.enter_failure(out);
                self.insert_data(port, tuple, now);
            }
            TupleKind::Boundary => {
                let wm = &mut self.state.watermarks[port];
                *wm = Some(wm.map_or(tuple.stime, |w| w.max(tuple.stime)));
                if self.state.phase == Phase::Stable {
                    self.emit_stable_ready(out);
                } else {
                    self.recheck_phase(out);
                }
            }
            TupleKind::Undo => {
                if self.cfg.is_input {
                    self.apply_undo(port);
                } else {
                    out.push(tuple.clone());
                }
            }
            TupleKind::RecDone => {
                if self.cfg.is_input {
                    // Upstream finished stabilizing this stream: the stream
                    // is fully corrected from here (§4.4: tentative tuples
                    // after the REC_DONE belong to a *new* failure).
                    self.apply_undo(port);
                    self.state.awaiting_correction[port] = false;
                    self.recheck_phase(out);
                } else {
                    // Mid-diagram merge: forward one REC_DONE once every
                    // input port has delivered one (§4.4.2).
                    self.state.rec_done_seen[port] = true;
                    if self.state.rec_done_seen.iter().all(|&b| b) {
                        self.state.rec_done_seen.iter_mut().for_each(|b| *b = false);
                        self.state
                            .awaiting_correction
                            .iter_mut()
                            .for_each(|b| *b = false);
                        out.push(tuple.clone());
                    }
                }
            }
        }
    }

    fn tick(&mut self, now: Time, tentative_permitted: bool, out: &mut BatchEmitter) {
        if self.state.phase == Phase::Stable {
            self.emit_stable_ready(out);
        }
        if tentative_permitted {
            self.emit_overdue(now, out);
        }
        self.recheck_phase(out);
    }

    fn next_deadline(&self) -> Option<Time> {
        self.oldest_deadline()
    }

    fn wants_tentative(&self, now: Time) -> bool {
        self.oldest_deadline().is_some_and(|d| now >= d)
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::new(self.state.clone())
    }

    fn restore(&mut self, snap: &OpSnapshot) {
        self.state = snap.get::<SUnionState>().clone();
    }

    fn as_sunion_mut(&mut self) -> Option<&mut SUnion> {
        Some(self)
    }

    fn as_sunion(&self) -> Option<&SUnion> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Value;

    fn cfg(n: usize) -> SUnionConfig {
        SUnionConfig {
            n_inputs: n,
            bucket: Duration::from_millis(100),
            detect_delay: Duration::from_secs(2),
            delay_budget: Duration::from_secs(2),
            tentative_wait: Duration::from_millis(300),
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            is_input: true,
        }
    }

    fn data(id: u64, ms: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(ms),
            vec![Value::Int(id as i64)],
        )
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    /// Feeds the same tuples in two different arrival interleavings and
    /// checks the emitted order is identical — the core §4.2 guarantee.
    #[test]
    fn serialization_is_order_insensitive() {
        let run = |swap: bool| {
            let mut s = SUnion::new(cfg(2));
            let mut out = BatchEmitter::new();
            let now = Time::from_millis(1);
            let a = data(1, 30);
            let b = data(1, 10);
            if swap {
                s.process(1, &b, now, &mut out);
                s.process(0, &a, now, &mut out);
            } else {
                s.process(0, &a, now, &mut out);
                s.process(1, &b, now, &mut out);
            }
            s.process(0, &boundary(100), now, &mut out);
            s.process(1, &boundary(100), now, &mut out);
            out.tuples()
                .iter()
                .filter(|t| t.is_data())
                .map(|t| (t.stime.as_millis(), t.origin))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(false), vec![(10, 1), (30, 0)]);
    }

    #[test]
    fn stable_emission_waits_for_all_ports() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        let now = Time::from_millis(1);
        s.process(0, &data(1, 50), now, &mut out);
        s.process(0, &boundary(200), now, &mut out);
        assert!(out.tuples().is_empty(), "port 1 has no boundary yet");
        s.process(1, &boundary(200), now, &mut out);
        let kinds: Vec<TupleKind> = out.tuples().iter().map(|t| t.kind).collect();
        assert_eq!(kinds, vec![TupleKind::Insertion, TupleKind::Boundary]);
        assert_eq!(out.tuples()[1].stime, Time::from_millis(200));
    }

    #[test]
    fn out_of_order_within_bucket_is_sorted() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let now = Time::from_millis(1);
        s.process(0, &data(1, 80), now, &mut out);
        s.process(0, &data(2, 20), now, &mut out);
        s.process(0, &boundary(100), now, &mut out);
        let stimes: Vec<u64> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert_eq!(stimes, vec![20, 80]);
    }

    #[test]
    fn detection_fires_after_detect_delay_and_signals_up_failure() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        let arrival = Time::from_millis(100);
        s.process(0, &data(1, 50), arrival, &mut out);
        // Port 1 never delivers a boundary: the bucket cannot stabilize.
        assert!(!s.wants_tentative(Time::from_millis(2099)));
        assert!(s.wants_tentative(Time::from_millis(2100)));
        s.tick(Time::from_millis(2100), true, &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        assert_eq!(out.signals(), vec![ControlSignal::UpFailure]);
        let emitted: Vec<TupleKind> = out.tuples().iter().map(|t| t.kind).collect();
        assert_eq!(emitted, vec![TupleKind::Tentative]);
    }

    #[test]
    fn tentative_release_respects_permission() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        // Overdue but the fragment has not checkpointed yet.
        s.tick(Time::from_secs(10), false, &mut out);
        assert!(out.tuples().is_empty());
        s.tick(Time::from_secs(10), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
    }

    #[test]
    fn process_mode_emits_subsequent_buckets_after_short_wait() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        // Next bucket arrives at t=2200; in Process mode it is released
        // after tentative_wait (300 ms), not after detect_delay.
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        assert!(!s.wants_tentative(Time::from_millis(2499)));
        assert!(s.wants_tentative(Time::from_millis(2500)));
        s.tick(Time::from_millis(2500), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn delay_mode_holds_each_bucket_for_the_budget() {
        let mut c = cfg(2);
        c.failure_mode = DelayMode::Delay;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        s.tick(Time::from_millis(2500), true, &mut out);
        assert!(out.tuples().is_empty(), "delay mode holds the full budget");
        s.tick(Time::from_millis(4200), true, &mut out);
        assert_eq!(out.tuples().len(), 1);
    }

    #[test]
    fn suspend_mode_never_releases() {
        let mut c = cfg(2);
        c.failure_mode = DelayMode::Suspend;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection releases 1st
        out.take();
        s.process(0, &data(2, 2150), Time::from_millis(2200), &mut out);
        s.tick(Time::from_secs(100), true, &mut out);
        assert!(out.tuples().is_empty());
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn heal_signals_rec_request() {
        let mut s = SUnion::new(cfg(2));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(100), &mut out);
        s.tick(Time::from_millis(2100), true, &mut out); // detection
        out.take();
        // Failure heals: both ports deliver boundaries covering everything
        // emitted so far.
        s.process(0, &boundary(100), Time::from_millis(2200), &mut out);
        s.process(1, &boundary(100), Time::from_millis(2200), &mut out);
        assert_eq!(s.phase(), Phase::Healed);
        assert!(out.signals().contains(&ControlSignal::RecRequest));
        assert!(s.corrected_now());
    }

    #[test]
    fn tentative_input_triggers_failure_and_requires_rec_done() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(1), Time::from_millis(10), vec![]);
        s.process(0, &t, Time::from_millis(20), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        assert_eq!(out.signals(), vec![ControlSignal::UpFailure]);
        // Boundary alone does not heal: the tentative input is uncorrected.
        s.process(0, &boundary(100), Time::from_millis(30), &mut out);
        assert_eq!(s.phase(), Phase::Failure);
        // UNDO + corrections + REC_DONE heal it.
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(40),
            &mut out,
        );
        s.process(0, &data(1, 10), Time::from_millis(40), &mut out);
        s.process(
            0,
            &Tuple::rec_done(TupleId::NONE, Time::from_millis(40)),
            Time::from_millis(40),
            &mut out,
        );
        assert_eq!(s.phase(), Phase::Healed);
    }

    #[test]
    fn undo_drops_tentative_from_log_and_buckets() {
        let mut s = SUnion::new(cfg(1));
        s.set_recording(true);
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(5), Time::from_millis(10), vec![]);
        s.process(0, &t, Time::from_millis(20), &mut out);
        s.process(0, &data(9, 15), Time::from_millis(21), &mut out);
        assert_eq!(s.replay_log_len(), 2);
        assert_eq!(s.buffered_tuples(), 2);
        s.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId::NONE),
            Time::from_millis(30),
            &mut out,
        );
        assert_eq!(s.replay_log_len(), 1, "stable entry kept");
        assert_eq!(s.buffered_tuples(), 1);
    }

    #[test]
    fn mid_diagram_sunion_merges_rec_done() {
        let mut c = cfg(2);
        c.is_input = false;
        let mut s = SUnion::new(c);
        let mut out = BatchEmitter::new();
        let rd = Tuple::rec_done(TupleId::NONE, Time::ZERO);
        s.process(0, &rd, Time::ZERO, &mut out);
        assert!(out.tuples().is_empty(), "waits for all ports");
        s.process(1, &rd, Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::RecDone);
    }

    #[test]
    fn checkpoint_restore_resets_serialization_but_keeps_replay_log() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        let snap = s.checkpoint();
        s.set_recording(true);
        s.process(0, &data(1, 50), Time::from_millis(60), &mut out);
        s.tick(Time::from_secs(10), true, &mut out); // tentative release
        assert_eq!(s.phase(), Phase::Failure);
        s.restore(&snap);
        assert_eq!(s.phase(), Phase::Stable);
        assert_eq!(s.buffered_tuples(), 0);
        assert_eq!(s.replay_log_len(), 1, "replay log survives restore");
    }

    #[test]
    fn replay_regenerates_identical_stable_output() {
        let run = |mut s: SUnion| {
            let mut out = BatchEmitter::new();
            s.process(0, &data(1, 10), Time::from_millis(20), &mut out);
            s.process(0, &data(2, 60), Time::from_millis(70), &mut out);
            s.process(0, &boundary(100), Time::from_millis(110), &mut out);
            out.tuples()
        };
        let first = run(SUnion::new(cfg(1)));
        // Restore-from-checkpoint then replay produces identical ids/kinds.
        let mut s = SUnion::new(cfg(1));
        let snap = s.checkpoint();
        s.restore(&snap);
        let second = run(s);
        assert_eq!(first, second);
    }

    #[test]
    fn late_tuple_for_emitted_bucket_is_dropped() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process(0, &data(1, 50), Time::from_millis(60), &mut out);
        s.process(0, &boundary(100), Time::from_millis(110), &mut out);
        let n = out.tuples().len();
        // stime 30 belongs to the already-emitted bucket 0.
        s.process(0, &data(2, 30), Time::from_millis(120), &mut out);
        s.process(0, &boundary(200), Time::from_millis(210), &mut out);
        let data_after: Vec<u64> = out.tuples()[n..]
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.stime.as_millis())
            .collect();
        assert!(data_after.is_empty(), "late tuple dropped: {data_after:?}");
    }

    #[test]
    fn empty_buckets_advance_frontier_with_boundaries_only() {
        let mut s = SUnion::new(cfg(1));
        let mut out = BatchEmitter::new();
        s.process(0, &boundary(500), Time::from_millis(510), &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Boundary);
        assert_eq!(out.tuples()[0].stime, Time::from_millis(500));
    }
}
