//! Aggregate: computes aggregate functions over sliding windows of data
//! (§2.1), possibly grouping tuples first.
//!
//! Windows are aligned to multiples of the slide from time zero — the
//! paper's *independent-window-alignment* requirement (§2.1), which keeps
//! window boundaries independent of the first tuple processed and therefore
//! keeps the operator deterministic across replicas.
//!
//! Window closing has two paths, mirroring DPC's two operating regimes:
//!
//! * **Stable close** — a boundary tuple with stime `W` closes every window
//!   ending at or before `W`; outputs are stable (unless the window absorbed
//!   tentative data).
//! * **Tentative close** — during failures boundaries stop flowing (upstream
//!   SUnions do not produce tentative boundaries), so a *tentative* data
//!   tuple with stime `s` closes windows ending at or before `s`. This is
//!   sound because SUnion emits tuples in stime order; the results are
//!   labelled tentative and corrected during reconciliation.

use crate::snapshot::{
    put_bool, put_f64, put_opt_u64, read_bool, read_f64, read_opt_u64, SnapshotCodec,
};
use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::wire::{self, Reader, WireError};
use borealis_types::{Duration, Expr, Time, Tuple, TupleId, TupleKind, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The aggregate functions supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFnKind {
    /// Number of tuples in the window.
    Count,
    /// Sum of the input expression.
    Sum,
    /// Arithmetic mean of the input expression.
    Avg,
    /// Minimum of the input expression (by canonical value order).
    Min,
    /// Maximum of the input expression.
    Max,
}

/// One aggregate column: a function applied to an expression.
#[derive(Debug, Clone)]
pub struct AggFn {
    /// Which function.
    pub kind: AggFnKind,
    /// Input expression (ignored by `Count`).
    pub input: Expr,
}

impl AggFn {
    /// `COUNT(*)`.
    pub fn count() -> AggFn {
        AggFn {
            kind: AggFnKind::Count,
            input: Expr::int(0),
        }
    }
    /// `SUM(input)`.
    pub fn sum(input: Expr) -> AggFn {
        AggFn {
            kind: AggFnKind::Sum,
            input,
        }
    }
    /// `AVG(input)`.
    pub fn avg(input: Expr) -> AggFn {
        AggFn {
            kind: AggFnKind::Avg,
            input,
        }
    }
    /// `MIN(input)`.
    pub fn min(input: Expr) -> AggFn {
        AggFn {
            kind: AggFnKind::Min,
            input,
        }
    }
    /// `MAX(input)`.
    pub fn max(input: Expr) -> AggFn {
        AggFn {
            kind: AggFnKind::Max,
            input,
        }
    }
}

/// Static configuration of an [`Aggregate`].
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// Window length.
    pub window: Duration,
    /// Distance between consecutive window starts; `slide == window` gives
    /// tumbling windows.
    pub slide: Duration,
    /// Grouping expressions (empty for a single global group).
    pub group_by: Vec<Expr>,
    /// Aggregate columns.
    pub aggs: Vec<AggFn>,
}

/// Per-aggregate-column accumulator.
#[derive(Debug, Clone)]
enum Accum {
    Count(u64),
    SumInt(i64),
    SumFloat(f64),
    Avg { sum: f64, count: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accum {
    fn new(kind: AggFnKind) -> Accum {
        match kind {
            AggFnKind::Count => Accum::Count(0),
            AggFnKind::Sum => Accum::SumInt(0),
            AggFnKind::Avg => Accum::Avg { sum: 0.0, count: 0 },
            AggFnKind::Min => Accum::Min(None),
            AggFnKind::Max => Accum::Max(None),
        }
    }

    fn update(&mut self, v: &Value) {
        match self {
            Accum::Count(c) => *c += 1,
            Accum::SumInt(s) => match v {
                Value::Int(i) => *s = s.wrapping_add(*i),
                other => {
                    // Promote to float on the first non-integer input.
                    let f = *s as f64 + other.as_f64().unwrap_or(0.0);
                    *self = Accum::SumFloat(f);
                }
            },
            Accum::SumFloat(s) => *s += v.as_f64().unwrap_or(0.0),
            Accum::Avg { sum, count } => {
                *sum += v.as_f64().unwrap_or(0.0);
                *count += 1;
            }
            Accum::Min(m) => {
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            Accum::Max(m) => {
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            Accum::Count(c) => Value::Int(*c as i64),
            Accum::SumInt(s) => Value::Int(*s),
            Accum::SumFloat(s) => Value::Float(*s),
            Accum::Avg { sum, count } => Value::Float(if *count == 0 {
                0.0
            } else {
                sum / *count as f64
            }),
            Accum::Min(m) | Accum::Max(m) => m.clone().unwrap_or(Value::Int(0)),
        }
    }
}

#[derive(Debug, Clone)]
struct WindowState {
    accums: Vec<Accum>,
    saw_tentative: bool,
}

/// Key ordering `(window_start_micros, group_values)` makes stable emission
/// order deterministic across replicas.
type WindowKey = (u64, Vec<Value>);

#[derive(Clone)]
struct AggState {
    windows: BTreeMap<WindowKey, WindowState>,
    /// Highest boundary stime seen (stable close frontier).
    stable_wm: Option<Time>,
    /// Output id generator.
    next_id: u64,
}

/// The windowed, grouped aggregate operator.
pub struct Aggregate {
    spec: AggregateSpec,
    /// Copy-on-write state: checkpoints share this `Arc` (see
    /// [`crate::snapshot`] for the contract).
    state: Arc<AggState>,
}

impl Aggregate {
    /// Builds an aggregate from its spec.
    ///
    /// # Panics
    /// Panics if the window or slide is zero, or if no aggregate columns are
    /// configured — all construction-time configuration errors.
    pub fn new(spec: AggregateSpec) -> Aggregate {
        assert!(spec.window.as_micros() > 0, "window must be positive");
        assert!(spec.slide.as_micros() > 0, "slide must be positive");
        assert!(!spec.aggs.is_empty(), "aggregate needs at least one column");
        Aggregate {
            spec,
            state: Arc::new(AggState {
                windows: BTreeMap::new(),
                stable_wm: None,
                next_id: 1,
            }),
        }
    }

    /// Number of currently open windows (for tests and buffer accounting).
    pub fn open_windows(&self) -> usize {
        self.state.windows.len()
    }

    /// Window starts (aligned to the slide grid) whose window contains `s`.
    fn window_starts(&self, s: Time) -> Vec<u64> {
        let slide = self.spec.slide.as_micros();
        let size = self.spec.window.as_micros();
        let s = s.as_micros();
        let last = (s / slide) * slide;
        let mut starts = Vec::new();
        let mut w = last;
        loop {
            if w + size > s {
                starts.push(w);
            } else {
                break;
            }
            if w < slide {
                break;
            }
            w -= slide;
        }
        starts.reverse();
        starts
    }

    fn add_tuple(&mut self, tuple: &Tuple) {
        let key: Vec<Value> = self
            .spec
            .group_by
            .iter()
            .map(|e| e.eval(tuple).unwrap_or(Value::Int(0)))
            .collect();
        let tentative = tuple.is_tentative();
        for w in self.window_starts(tuple.stime) {
            let st = Arc::make_mut(&mut self.state);
            let entry = st
                .windows
                .entry((w, key.clone()))
                .or_insert_with(|| WindowState {
                    accums: self.spec.aggs.iter().map(|a| Accum::new(a.kind)).collect(),
                    saw_tentative: false,
                });
            entry.saw_tentative |= tentative;
            for (acc, agg) in entry.accums.iter_mut().zip(&self.spec.aggs) {
                let v = agg.input.eval(tuple).unwrap_or(Value::Int(0));
                acc.update(&v);
            }
        }
    }

    /// Closes every window ending at or before `frontier`. `stable` selects
    /// the output label for windows without tentative content.
    fn close_through(&mut self, frontier: Time, stable: bool, out: &mut BatchEmitter) {
        let size = self.spec.window.as_micros();
        let cutoff = frontier.as_micros();
        // BTreeMap iterates keys in (window_start, group) order: the
        // deterministic emission order the paper requires.
        let closed: Vec<WindowKey> = self
            .state
            .windows
            .keys()
            .take_while(|(w, _)| w + size <= cutoff)
            .cloned()
            .collect();
        for key in closed {
            let st = Arc::make_mut(&mut self.state);
            let win = st.windows.remove(&key).expect("window key just listed");
            let (start, group) = key;
            let mut values = group;
            values.extend(win.accums.iter().map(Accum::finish));
            let end = Time(start + size);
            let id = TupleId(st.next_id);
            st.next_id += 1;
            let t = if stable && !win.saw_tentative {
                Tuple::insertion(id, end, values)
            } else {
                Tuple::tentative(id, end, values)
            };
            out.push(t);
        }
    }
}

impl Operator for Aggregate {
    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn process(&mut self, _port: usize, tuple: &Tuple, _now: Time, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Insertion => self.add_tuple(tuple),
            TupleKind::Tentative => {
                // Tentative data also closes overdue windows: boundaries have
                // stopped, and SUnion's emission order guarantees stime order.
                self.close_through(tuple.stime, false, out);
                self.add_tuple(tuple);
            }
            TupleKind::Boundary => {
                let advanced = self.state.stable_wm.is_none_or(|w| tuple.stime > w);
                if advanced {
                    Arc::make_mut(&mut self.state).stable_wm = Some(tuple.stime);
                    self.close_through(tuple.stime, true, out);
                    out.push(Tuple::boundary(TupleId::NONE, tuple.stime));
                }
            }
            TupleKind::Undo | TupleKind::RecDone => out.push(tuple.clone()),
        }
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::share(&self.state)
    }

    fn restore(&mut self, snap: &OpSnapshot) {
        self.state = snap.shared::<AggState>();
    }

    fn snapshot_codec(&self) -> SnapshotCodec {
        fn put_accum(buf: &mut Vec<u8>, a: &Accum) {
            match a {
                Accum::Count(n) => {
                    wire::put_u8(buf, 0);
                    wire::put_u64(buf, *n);
                }
                Accum::SumInt(v) => {
                    wire::put_u8(buf, 1);
                    wire::put_u64(buf, *v as u64);
                }
                Accum::SumFloat(v) => {
                    wire::put_u8(buf, 2);
                    put_f64(buf, *v);
                }
                Accum::Avg { sum, count } => {
                    wire::put_u8(buf, 3);
                    put_f64(buf, *sum);
                    wire::put_u64(buf, *count);
                }
                Accum::Min(v) => {
                    wire::put_u8(buf, 4);
                    put_opt_value(buf, v);
                }
                Accum::Max(v) => {
                    wire::put_u8(buf, 5);
                    put_opt_value(buf, v);
                }
            }
        }
        fn put_opt_value(buf: &mut Vec<u8>, v: &Option<Value>) {
            match v {
                None => wire::put_u8(buf, 0),
                Some(v) => {
                    wire::put_u8(buf, 1);
                    wire::put_value(buf, v);
                }
            }
        }
        fn read_opt_value(r: &mut Reader<'_>) -> Result<Option<Value>, WireError> {
            match r.u8()? {
                0 => Ok(None),
                1 => Ok(Some(r.value()?)),
                tag => Err(WireError::BadTag {
                    what: "option",
                    tag,
                }),
            }
        }
        fn read_accum(r: &mut Reader<'_>) -> Result<Accum, WireError> {
            Ok(match r.u8()? {
                0 => Accum::Count(r.u64()?),
                1 => Accum::SumInt(r.u64()? as i64),
                2 => Accum::SumFloat(read_f64(r)?),
                3 => Accum::Avg {
                    sum: read_f64(r)?,
                    count: r.u64()?,
                },
                4 => Accum::Min(read_opt_value(r)?),
                5 => Accum::Max(read_opt_value(r)?),
                tag => return Err(WireError::BadTag { what: "accum", tag }),
            })
        }
        SnapshotCodec {
            encode: |snap, buf| {
                let st = snap.get::<AggState>();
                wire::put_u32(buf, st.windows.len() as u32);
                for ((start, group), win) in &st.windows {
                    wire::put_u64(buf, *start);
                    wire::put_u32(buf, group.len() as u32);
                    for v in group {
                        wire::put_value(buf, v);
                    }
                    wire::put_u32(buf, win.accums.len() as u32);
                    for a in &win.accums {
                        put_accum(buf, a);
                    }
                    put_bool(buf, win.saw_tentative);
                }
                put_opt_u64(buf, st.stable_wm.map(|t| t.0));
                wire::put_u64(buf, st.next_id);
            },
            decode: |r| {
                let n_windows = r.u32()? as usize;
                let mut windows = BTreeMap::new();
                for _ in 0..n_windows {
                    let start = r.u64()?;
                    let n_group = r.u32()? as usize;
                    let mut group = Vec::with_capacity(n_group.min(1024));
                    for _ in 0..n_group {
                        group.push(r.value()?);
                    }
                    let n_accums = r.u32()? as usize;
                    let mut accums = Vec::with_capacity(n_accums.min(1024));
                    for _ in 0..n_accums {
                        accums.push(read_accum(r)?);
                    }
                    let saw_tentative = read_bool(r)?;
                    windows.insert(
                        (start, group),
                        WindowState {
                            accums,
                            saw_tentative,
                        },
                    );
                }
                let stable_wm = read_opt_u64(r)?.map(Time);
                let next_id = r.u64()?;
                Ok(OpSnapshot::new(AggState {
                    windows,
                    stable_wm,
                    next_id,
                }))
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_tumbling(ms: u64) -> AggregateSpec {
        AggregateSpec {
            window: Duration::from_millis(ms),
            slide: Duration::from_millis(ms),
            group_by: vec![],
            aggs: vec![AggFn::count(), AggFn::sum(Expr::field(0))],
        }
    }

    fn data(id: u64, ms: u64, v: i64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(ms), vec![Value::Int(v)])
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    #[test]
    fn tumbling_window_closes_on_boundary() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        a.process(0, &data(1, 10, 5), Time::ZERO, &mut out);
        a.process(0, &data(2, 60, 7), Time::ZERO, &mut out);
        assert!(out.tuples().is_empty(), "window still open");
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        // One aggregate tuple + the forwarded boundary.
        assert_eq!(out.tuples().len(), 2);
        let agg = &out.tuples()[0];
        assert_eq!(agg.kind, TupleKind::Insertion);
        assert_eq!(agg.stime, Time::from_millis(100));
        assert_eq!(agg.values, vec![Value::Int(2), Value::Int(12)]);
        assert_eq!(out.tuples()[1].kind, TupleKind::Boundary);
    }

    #[test]
    fn sliding_windows_assign_tuples_to_all_covering_windows() {
        let mut a = Aggregate::new(AggregateSpec {
            window: Duration::from_millis(100),
            slide: Duration::from_millis(50),
            group_by: vec![],
            aggs: vec![AggFn::count()],
        });
        let mut out = BatchEmitter::new();
        // stime 60 is covered by windows [0,100) and [50,150).
        a.process(0, &data(1, 60, 0), Time::ZERO, &mut out);
        assert_eq!(a.open_windows(), 2);
        a.process(0, &boundary(150), Time::ZERO, &mut out);
        let counts: Vec<_> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| (t.stime.as_millis(), t.values[0].clone()))
            .collect();
        assert_eq!(counts, vec![(100, Value::Int(1)), (150, Value::Int(1))]);
    }

    #[test]
    fn group_by_produces_one_tuple_per_group_in_order() {
        let mut a = Aggregate::new(AggregateSpec {
            window: Duration::from_millis(100),
            slide: Duration::from_millis(100),
            group_by: vec![Expr::field(0)],
            aggs: vec![AggFn::count()],
        });
        let mut out = BatchEmitter::new();
        a.process(0, &data(1, 10, 2), Time::ZERO, &mut out);
        a.process(0, &data(2, 20, 1), Time::ZERO, &mut out);
        a.process(0, &data(3, 30, 2), Time::ZERO, &mut out);
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        let groups: Vec<_> = out
            .tuples()
            .iter()
            .filter(|t| t.is_data())
            .map(|t| t.values.clone())
            .collect();
        // Deterministic group order: key 1 before key 2.
        assert_eq!(
            groups,
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn tentative_input_closes_windows_tentatively() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        a.process(0, &data(1, 10, 5), Time::ZERO, &mut out);
        // A tentative tuple past the window end closes [0,100) tentatively.
        let t = Tuple::tentative(TupleId(2), Time::from_millis(130), vec![Value::Int(1)]);
        a.process(0, &t, Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
        assert_eq!(out.tuples()[0].values, vec![Value::Int(1), Value::Int(5)]);
    }

    #[test]
    fn window_with_tentative_content_is_tentative_even_on_stable_close() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(1), Time::from_millis(10), vec![Value::Int(5)]);
        a.process(0, &t, Time::ZERO, &mut out);
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        let tuples = out.tuples();
        let agg = tuples.iter().find(|t| t.is_data()).unwrap();
        assert_eq!(agg.kind, TupleKind::Tentative);
    }

    #[test]
    fn avg_min_max() {
        let mut a = Aggregate::new(AggregateSpec {
            window: Duration::from_millis(100),
            slide: Duration::from_millis(100),
            group_by: vec![],
            aggs: vec![
                AggFn::avg(Expr::field(0)),
                AggFn::min(Expr::field(0)),
                AggFn::max(Expr::field(0)),
            ],
        });
        let mut out = BatchEmitter::new();
        for (i, v) in [4, 8, 6].iter().enumerate() {
            a.process(0, &data(i as u64, 10 + i as u64, *v), Time::ZERO, &mut out);
        }
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        let agg = &out.tuples()[0];
        assert_eq!(
            agg.values,
            vec![Value::Float(6.0), Value::Int(4), Value::Int(8)]
        );
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        a.process(0, &data(1, 10, 5), Time::ZERO, &mut out);
        let snap = a.checkpoint();
        a.process(0, &data(2, 20, 7), Time::ZERO, &mut out);
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        let first_run: Vec<Tuple> = out.take_tuples().0;

        a.restore(&snap);
        let mut out2 = BatchEmitter::new();
        a.process(0, &data(2, 20, 7), Time::ZERO, &mut out2);
        a.process(0, &boundary(100), Time::ZERO, &mut out2);
        assert_eq!(
            first_run,
            out2.tuples(),
            "replay after restore is identical"
        );
    }

    #[test]
    fn empty_windows_produce_no_output() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        a.process(0, &boundary(500), Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1); // just the boundary
        assert_eq!(out.tuples()[0].kind, TupleKind::Boundary);
    }

    #[test]
    fn stale_boundary_is_ignored() {
        let mut a = Aggregate::new(spec_tumbling(100));
        let mut out = BatchEmitter::new();
        a.process(0, &boundary(200), Time::ZERO, &mut out);
        a.process(0, &boundary(100), Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1, "non-advancing boundary dropped");
    }
}
