//! Union: merges tuples from two or more input streams (§2.1).
//!
//! This is the *plain*, non-serializing union kept as the non-fault-tolerant
//! baseline (the paper's Tables IV and V compare SUnion+SOutput against a
//! standard Union). It forwards data tuples in arrival order — which is why
//! it cannot keep replicas consistent — and merges boundaries by emitting
//! the minimum watermark across its inputs.

use crate::snapshot::{put_opt_u64, read_opt_u64, SnapshotCodec};
use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::wire;
use borealis_types::{Time, Tuple, TupleId, TupleKind};
use std::sync::Arc;

/// Non-serializing merge of `n` input streams.
pub struct Union {
    n_inputs: usize,
    /// Copy-on-write state: checkpoints share this `Arc` (see
    /// [`crate::snapshot`] for the contract).
    state: Arc<UnionState>,
}

#[derive(Clone)]
struct UnionState {
    /// Latest boundary stime per input port.
    watermarks: Vec<Option<Time>>,
    /// Last boundary stime emitted downstream.
    emitted_wm: Option<Time>,
    /// Output id generator (inputs from different streams may collide, so
    /// Union renumbers).
    next_id: u64,
}

impl Union {
    /// Builds a union over `n_inputs` streams.
    pub fn new(n_inputs: usize) -> Union {
        assert!(n_inputs >= 1, "union needs at least one input");
        Union {
            n_inputs,
            state: Arc::new(UnionState {
                watermarks: vec![None; n_inputs],
                emitted_wm: None,
                next_id: 1,
            }),
        }
    }

    fn min_watermark(&self) -> Option<Time> {
        let mut min = Time::MAX;
        for wm in &self.state.watermarks {
            match wm {
                Some(t) => min = min.min(*t),
                None => return None,
            }
        }
        Some(min)
    }
}

impl Operator for Union {
    fn name(&self) -> &'static str {
        "union"
    }

    fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    fn process(&mut self, port: usize, tuple: &Tuple, _now: Time, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                let st = Arc::make_mut(&mut self.state);
                let mut t = tuple.clone();
                t.id = TupleId(st.next_id);
                st.next_id += 1;
                t.origin = port as u16;
                out.push(t);
            }
            TupleKind::Boundary => {
                {
                    let st = Arc::make_mut(&mut self.state);
                    st.watermarks[port] =
                        Some(st.watermarks[port].map_or(tuple.stime, |w| w.max(tuple.stime)));
                }
                if let Some(min) = self.min_watermark() {
                    if self.state.emitted_wm.is_none_or(|w| min > w) {
                        Arc::make_mut(&mut self.state).emitted_wm = Some(min);
                        out.push(Tuple::boundary(TupleId::NONE, min));
                    }
                }
            }
            // Forwarding recovery markers from a plain Union is best-effort:
            // DPC diagrams never contain plain Unions (they are replaced by
            // SUnion, §3), so these arise only in baseline runs.
            TupleKind::Undo | TupleKind::RecDone => out.push(tuple.clone()),
        }
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::share(&self.state)
    }

    fn restore(&mut self, snap: &OpSnapshot) {
        self.state = snap.shared::<UnionState>();
    }

    fn snapshot_codec(&self) -> SnapshotCodec {
        SnapshotCodec {
            encode: |snap, buf| {
                let st = snap.get::<UnionState>();
                wire::put_u32(buf, st.watermarks.len() as u32);
                for wm in &st.watermarks {
                    put_opt_u64(buf, wm.map(|t| t.0));
                }
                put_opt_u64(buf, st.emitted_wm.map(|t| t.0));
                wire::put_u64(buf, st.next_id);
            },
            decode: |r| {
                let n = r.u32()? as usize;
                let mut watermarks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    watermarks.push(read_opt_u64(r)?.map(Time));
                }
                let emitted_wm = read_opt_u64(r)?.map(Time);
                let next_id = r.u64()?;
                Ok(OpSnapshot::new(UnionState {
                    watermarks,
                    emitted_wm,
                    next_id,
                }))
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Value;

    fn data(id: u64, ms: u64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(ms), vec![Value::Int(0)])
    }

    #[test]
    fn forwards_in_arrival_order_with_fresh_ids() {
        let mut u = Union::new(2);
        let mut out = BatchEmitter::new();
        u.process(1, &data(10, 5), Time::ZERO, &mut out);
        u.process(0, &data(10, 3), Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 2);
        assert_eq!(out.tuples()[0].id, TupleId(1));
        assert_eq!(out.tuples()[0].origin, 1);
        assert_eq!(out.tuples()[1].id, TupleId(2));
        assert_eq!(out.tuples()[1].origin, 0);
    }

    #[test]
    fn boundary_is_min_across_ports() {
        let mut u = Union::new(2);
        let mut out = BatchEmitter::new();
        u.process(
            0,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(10)),
            Time::ZERO,
            &mut out,
        );
        assert!(
            out.tuples().is_empty(),
            "no boundary until all ports heard from"
        );
        u.process(
            1,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(4)),
            Time::ZERO,
            &mut out,
        );
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].stime, Time::from_millis(4));
        // A higher boundary on port 1 raises the min.
        u.process(
            1,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(20)),
            Time::ZERO,
            &mut out,
        );
        assert_eq!(out.tuples().last().unwrap().stime, Time::from_millis(10));
    }

    #[test]
    fn non_increasing_min_emits_nothing() {
        let mut u = Union::new(1);
        let mut out = BatchEmitter::new();
        u.process(
            0,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(5)),
            Time::ZERO,
            &mut out,
        );
        u.process(
            0,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(5)),
            Time::ZERO,
            &mut out,
        );
        assert_eq!(out.tuples().len(), 1);
    }

    #[test]
    fn checkpoint_restores_id_counter() {
        let mut u = Union::new(1);
        let mut out = BatchEmitter::new();
        u.process(0, &data(1, 1), Time::ZERO, &mut out);
        let snap = u.checkpoint();
        u.process(0, &data(2, 2), Time::ZERO, &mut out);
        u.restore(&snap);
        u.process(0, &data(2, 2), Time::ZERO, &mut out);
        // Replay after restore regenerates the same output id.
        assert_eq!(out.tuples()[1].id, out.tuples()[2].id);
    }
}
