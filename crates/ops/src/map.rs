//! Map: transforms each input tuple into a single output tuple (§2.1).

use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::{Expr, Time, Tuple, TupleBatch, TupleKind};

/// A stateless projection/transformation.
///
/// Each output attribute is an expression over the input tuple. Ids, stime,
/// and kind pass through unchanged so that downstream duplicate suppression
/// and serialization behave identically before and after a Map.
pub struct Map {
    outputs: Vec<Expr>,
}

impl Map {
    /// Builds a map producing one attribute per expression.
    pub fn new(outputs: Vec<Expr>) -> Map {
        Map { outputs }
    }
}

impl Operator for Map {
    fn name(&self) -> &'static str {
        "map"
    }

    fn process(&mut self, _port: usize, tuple: &Tuple, _now: Time, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                let mut values = Vec::with_capacity(self.outputs.len());
                for e in &self.outputs {
                    match e.eval(tuple) {
                        Ok(v) => values.push(v),
                        // Deterministic drop on evaluation error, as Filter.
                        Err(_) => return,
                    }
                }
                let mut t = tuple.clone();
                t.values = values;
                out.push(t);
            }
            TupleKind::Boundary | TupleKind::Undo | TupleKind::RecDone => {
                out.push(tuple.clone());
            }
        }
    }

    /// Batch path: the transformation must materialize fresh tuples, but
    /// it builds the output batch exactly once (right capacity, one sealed
    /// chunk) — every downstream consumer then shares that allocation.
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &TupleBatch,
        _now: Time,
        out: &mut BatchEmitter,
    ) {
        let mut result: Vec<Tuple> = Vec::with_capacity(batch.len());
        'tuples: for tuple in batch.as_slice() {
            match tuple.kind {
                TupleKind::Insertion | TupleKind::Tentative => {
                    let mut values = Vec::with_capacity(self.outputs.len());
                    for e in &self.outputs {
                        match e.eval(tuple) {
                            Ok(v) => values.push(v),
                            Err(_) => continue 'tuples,
                        }
                    }
                    let mut t = tuple.clone();
                    t.values = values;
                    result.push(t);
                }
                TupleKind::Boundary | TupleKind::Undo | TupleKind::RecDone => {
                    result.push(tuple.clone());
                }
            }
        }
        out.push_batch(TupleBatch::from_vec(result));
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::new(())
    }

    fn restore(&mut self, _snap: &OpSnapshot) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{TupleId, Value};

    #[test]
    fn transforms_values_and_keeps_identity() {
        let mut m = Map::new(vec![
            Expr::add(Expr::field(0), Expr::int(100)),
            Expr::field(1),
        ]);
        let t = Tuple::insertion(
            TupleId(7),
            Time::from_millis(3),
            vec![Value::Int(1), Value::str("k")],
        );
        let mut out = BatchEmitter::new();
        m.process(0, &t, Time::ZERO, &mut out);
        let r = &out.tuples()[0];
        assert_eq!(r.values, vec![Value::Int(101), Value::str("k")]);
        assert_eq!(r.id, TupleId(7));
        assert_eq!(r.stime, Time::from_millis(3));
    }

    #[test]
    fn tentative_stays_tentative() {
        let mut m = Map::new(vec![Expr::field(0)]);
        let t = Tuple::tentative(TupleId(1), Time::ZERO, vec![Value::Int(2)]);
        let mut out = BatchEmitter::new();
        m.process(0, &t, Time::ZERO, &mut out);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn boundary_passes_untouched() {
        let mut m = Map::new(vec![Expr::field(0)]);
        let b = Tuple::boundary(TupleId::NONE, Time::from_secs(2));
        let mut out = BatchEmitter::new();
        m.process(0, &b, Time::ZERO, &mut out);
        assert_eq!(out.tuples()[0], b);
    }

    #[test]
    fn batch_path_matches_per_tuple_path() {
        let exprs = || vec![Expr::add(Expr::field(0), Expr::int(1))];
        let tuples = vec![
            Tuple::insertion(TupleId(1), Time::ZERO, vec![Value::Int(10)]),
            Tuple::boundary(TupleId::NONE, Time::from_secs(1)),
            Tuple::tentative(TupleId(2), Time::from_secs(1), vec![Value::Int(20)]),
            // Evaluation error (missing field): dropped on both paths.
            Tuple::insertion(TupleId(3), Time::from_secs(2), vec![]),
        ];
        let mut batch_out = BatchEmitter::new();
        Map::new(exprs()).process_batch(
            0,
            &TupleBatch::from_vec(tuples.clone()),
            Time::ZERO,
            &mut batch_out,
        );
        let (chunks, _) = batch_out.take();
        let got: Vec<Tuple> = chunks.iter().flat_map(|c| c.to_vec()).collect();

        let mut reference = BatchEmitter::new();
        let mut m = Map::new(exprs());
        for t in &tuples {
            m.process(0, t, Time::ZERO, &mut reference);
        }
        assert_eq!(got, reference.tuples());
        assert_eq!(chunks.len(), 1, "one sealed output batch");
    }
}
