//! Type-erased operator state snapshots for checkpoint/redo reconciliation
//! (§4.4.1): "all operators are extended with the ability to save and
//! recover their state from a checkpoint".
//!
//! # The copy-on-write snapshot contract
//!
//! Checkpoints happen at the worst possible moment — the failure-detection
//! instant, right before the first tentative tuple may be released (§4.4.1)
//! — so [`OpSnapshot`] is designed to make `Operator::checkpoint` O(1):
//!
//! * A snapshot is an **immutable, shared** view of the operator's state:
//!   internally an `Arc`, so capturing, cloning, and restoring a snapshot
//!   are reference-count bumps, never deep copies.
//! * Operators that want O(1) checkpoints keep their mutable state behind an
//!   `Arc<State>` and mutate through [`std::sync::Arc::make_mut`]. Taking a
//!   checkpoint is then [`OpSnapshot::share`]; the *first* mutation after a
//!   checkpoint pays one lazy state clone (copy-on-write), off the critical
//!   failure-detection path — and when the state itself stores shared batch
//!   views (see `borealis_types::TupleBatch`), even that lazy clone is
//!   O(containers), not O(tuples).
//! * `restore` is [`OpSnapshot::shared`]: the operator adopts the snapshot's
//!   `Arc` directly, which keeps the snapshot restorable again later (a node
//!   can fail once more during stabilization, Fig. 11(b)) — the next
//!   mutation diverges by copy-on-write instead of corrupting the capture.
//!
//! Operators with trivial or tiny state may still pass an owned value to
//! [`OpSnapshot::new`]; the contract only requires that a snapshot, once
//! taken, never observes later mutations.

use std::any::Any;
use std::sync::Arc;

use borealis_types::wire::{Reader, WireError};

/// A type-erased, immutable, cheaply clonable snapshot of one operator's
/// state.
///
/// A checkpoint may be restored multiple times (a node can fail again during
/// stabilization, Fig. 11(b)); snapshots hand out borrowed or shared views
/// and the operator copies-on-write what it later mutates.
pub struct OpSnapshot(Arc<dyn Any + Send + Sync>);

impl OpSnapshot {
    /// Wraps an owned state value (one allocation; no further copies on
    /// snapshot clone or restore).
    pub fn new<T: Any + Send + Sync>(state: T) -> OpSnapshot {
        OpSnapshot(Arc::new(state))
    }

    /// Captures an `Arc`-held state by reference-count bump — the O(1)
    /// copy-on-write checkpoint path.
    pub fn share<T: Any + Send + Sync>(state: &Arc<T>) -> OpSnapshot {
        OpSnapshot(Arc::clone(state) as Arc<dyn Any + Send + Sync>)
    }

    /// Borrows the concrete state.
    ///
    /// # Panics
    /// Panics if the snapshot holds a different type than requested — that
    /// is always a wiring bug (a snapshot restored into the wrong operator).
    pub fn get<T: Any>(&self) -> &T {
        self.0
            .downcast_ref::<T>()
            .expect("operator snapshot restored into an operator of a different type")
    }

    /// The shared state handle — the O(1) restore path: the operator adopts
    /// the snapshot's allocation and diverges later by copy-on-write.
    ///
    /// # Panics
    /// Panics on a type mismatch, exactly as [`OpSnapshot::get`].
    pub fn shared<T: Any + Send + Sync>(&self) -> Arc<T> {
        Arc::clone(&self.0).downcast::<T>().unwrap_or_else(|_| {
            panic!("operator snapshot restored into an operator of a different type")
        })
    }
}

impl Clone for OpSnapshot {
    fn clone(&self) -> Self {
        OpSnapshot(Arc::clone(&self.0))
    }
}

impl std::fmt::Debug for OpSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OpSnapshot(..)")
    }
}

/// Encode/decode function pair turning a type-erased [`OpSnapshot`] into
/// durable bytes and back — the bridge between the O(1) in-memory
/// checkpoint and the on-disk durability layer (`borealis-store`).
///
/// Plain function pointers keep the codec `Copy + Send + 'static`, so the
/// hot path only *captures* (an `Arc` refcount bump via
/// `Operator::checkpoint`) and hands `(codec, snapshot)` pairs to a
/// background flusher, which walks the shared state and serializes it off
/// the critical path.
///
/// Byte format is the little-endian `borealis_types::wire` vocabulary;
/// corrupted input decodes to a typed [`WireError`], never a panic.
#[derive(Clone, Copy)]
pub struct SnapshotCodec {
    /// Serializes the snapshot's state into `buf`.
    ///
    /// # Panics
    /// Panics if the snapshot holds a different state type than the codec
    /// expects — pairing a codec with a foreign snapshot is a wiring bug.
    pub encode: fn(&OpSnapshot, &mut Vec<u8>),
    /// Rebuilds a snapshot from bytes produced by `encode`.
    pub decode: fn(&mut Reader<'_>) -> Result<OpSnapshot, WireError>,
}

impl SnapshotCodec {
    /// Codec for stateless operators (`Filter`, `Map`): writes nothing and
    /// restores the unit snapshot.
    pub fn unit() -> SnapshotCodec {
        SnapshotCodec {
            encode: |_snap, _buf| {},
            decode: |_r| Ok(OpSnapshot::new(())),
        }
    }
}

impl std::fmt::Debug for SnapshotCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SnapshotCodec(..)")
    }
}

// Shared wire helpers for the per-operator codecs (sibling modules).

pub(crate) fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

pub(crate) fn read_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::BadTag { what: "bool", tag }),
    }
}

pub(crate) fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            borealis_types::wire::put_u64(buf, x);
        }
    }
}

pub(crate) fn read_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        tag => Err(WireError::BadTag {
            what: "option",
            tag,
        }),
    }
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    borealis_types::wire::put_u64(buf, v.to_bits());
}

pub(crate) fn read_f64(r: &mut Reader<'_>) -> Result<f64, WireError> {
    Ok(f64::from_bits(r.u64()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct DemoState {
        counter: u64,
        items: Vec<i64>,
    }

    #[test]
    fn snapshot_round_trip() {
        let st = DemoState {
            counter: 9,
            items: vec![1, 2, 3],
        };
        let snap = OpSnapshot::new(st.clone());
        assert_eq!(snap.get::<DemoState>(), &st);
    }

    #[test]
    fn snapshot_clone_shares_the_capture() {
        let snap = OpSnapshot::new(DemoState {
            counter: 1,
            items: vec![5],
        });
        let copy = snap.clone();
        assert_eq!(copy.get::<DemoState>().items, vec![5]);
        assert!(
            std::ptr::eq(copy.get::<DemoState>(), snap.get::<DemoState>()),
            "cloning a snapshot bumps a reference count, it does not copy state"
        );
    }

    #[test]
    fn share_is_a_refcount_bump_and_cow_diverges() {
        let mut state = Arc::new(DemoState {
            counter: 1,
            items: vec![7],
        });
        let snap = OpSnapshot::share(&state);
        // Mutating through make_mut diverges the live state lazily...
        Arc::make_mut(&mut state).counter = 2;
        // ...while the snapshot still sees the captured value.
        assert_eq!(snap.get::<DemoState>().counter, 1);
        // Restore adopts the capture; it stays restorable afterwards.
        let restored: Arc<DemoState> = snap.shared();
        assert_eq!(restored.counter, 1);
        assert_eq!(snap.get::<DemoState>().counter, 1);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn wrong_type_panics() {
        let snap = OpSnapshot::new(1u64);
        let _ = snap.get::<String>();
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn wrong_type_shared_panics() {
        let snap = OpSnapshot::new(1u64);
        let _: Arc<String> = snap.shared();
    }
}
