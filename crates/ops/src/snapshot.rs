//! Type-erased operator state snapshots for checkpoint/redo reconciliation
//! (§4.4.1): "all operators are extended with the ability to save and
//! recover their state from a checkpoint".

use std::any::Any;

/// Object-safe clone for boxed snapshot payloads.
trait SnapState: Any + Send {
    fn clone_box(&self) -> Box<dyn SnapState>;
    fn as_any(&self) -> &dyn Any;
}

impl<T: Any + Send + Clone> SnapState for T {
    fn clone_box(&self) -> Box<dyn SnapState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A type-erased snapshot of one operator's state.
///
/// A checkpoint may be restored multiple times (a node can fail again during
/// stabilization, Fig. 11(b)), so snapshots hand out borrowed views and the
/// operator clones what it needs.
pub struct OpSnapshot(Box<dyn SnapState>);

impl OpSnapshot {
    /// Wraps a concrete state value.
    pub fn new<T: Any + Send + Clone>(state: T) -> OpSnapshot {
        OpSnapshot(Box::new(state))
    }

    /// Borrows the concrete state.
    ///
    /// # Panics
    /// Panics if the snapshot holds a different type than requested — that
    /// is always a wiring bug (a snapshot restored into the wrong operator).
    pub fn get<T: Any>(&self) -> &T {
        self.0
            .as_any()
            .downcast_ref::<T>()
            .expect("operator snapshot restored into an operator of a different type")
    }
}

impl Clone for OpSnapshot {
    fn clone(&self) -> Self {
        OpSnapshot(self.0.clone_box())
    }
}

impl std::fmt::Debug for OpSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OpSnapshot(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct DemoState {
        counter: u64,
        items: Vec<i64>,
    }

    #[test]
    fn snapshot_round_trip() {
        let st = DemoState {
            counter: 9,
            items: vec![1, 2, 3],
        };
        let snap = OpSnapshot::new(st.clone());
        assert_eq!(snap.get::<DemoState>(), &st);
    }

    #[test]
    fn snapshot_clone_is_deep() {
        let snap = OpSnapshot::new(DemoState {
            counter: 1,
            items: vec![5],
        });
        let copy = snap.clone();
        assert_eq!(copy.get::<DemoState>().items, vec![5]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn wrong_type_panics() {
        let snap = OpSnapshot::new(1u64);
        let _ = snap.get::<String>();
    }
}
