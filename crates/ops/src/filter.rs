//! Filter: tests each input tuple against a predicate (§2.1).

use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::{Expr, Time, Tuple, TupleBatch, TupleKind};

/// A stateless predicate filter.
///
/// Data tuples that satisfy the predicate pass through unchanged (same id,
/// same stime, same kind — tentative stays tentative). Boundary, undo, and
/// rec-done tuples always pass: they are stream metadata, not data.
/// Tuples on which the predicate errors (type mismatch, missing field) are
/// dropped deterministically; a deterministic drop preserves replica
/// consistency, which is all DPC requires.
pub struct Filter {
    predicate: Expr,
}

impl Filter {
    /// Builds a filter with the given predicate expression.
    pub fn new(predicate: Expr) -> Filter {
        Filter { predicate }
    }
}

impl Operator for Filter {
    fn name(&self) -> &'static str {
        "filter"
    }

    fn process(&mut self, _port: usize, tuple: &Tuple, _now: Time, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                if self.predicate.eval_bool(tuple).unwrap_or(false) {
                    out.push(tuple.clone());
                }
            }
            // Punctuation and recovery markers always propagate.
            TupleKind::Boundary | TupleKind::Undo | TupleKind::RecDone => {
                out.push(tuple.clone());
            }
        }
    }

    /// Zero-copy batch path: contiguous runs of passing tuples are
    /// forwarded as shared sub-views of the input batch — when every tuple
    /// passes (the common stable-stream case) the whole batch moves on
    /// with a single reference-count bump.
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &TupleBatch,
        _now: Time,
        out: &mut BatchEmitter,
    ) {
        let tuples = batch.as_slice();
        let mut run_start = 0;
        for (i, t) in tuples.iter().enumerate() {
            let keep = match t.kind {
                TupleKind::Insertion | TupleKind::Tentative => {
                    self.predicate.eval_bool(t).unwrap_or(false)
                }
                TupleKind::Boundary | TupleKind::Undo | TupleKind::RecDone => true,
            };
            if !keep {
                if i > run_start {
                    out.push_batch(batch.slice(run_start..i));
                }
                run_start = i + 1;
            }
        }
        if tuples.len() > run_start {
            out.push_batch(batch.slice(run_start..tuples.len()));
        }
    }

    fn checkpoint(&self) -> OpSnapshot {
        // Stateless: nothing to capture.
        OpSnapshot::new(())
    }

    fn restore(&mut self, _snap: &OpSnapshot) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{TupleId, Value};

    fn data(id: u64, v: i64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(id), vec![Value::Int(v)])
    }

    #[test]
    fn passes_matching_drops_rest() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(10)));
        let mut out = BatchEmitter::new();
        f.process(0, &data(1, 5), Time::ZERO, &mut out);
        f.process(0, &data(2, 15), Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].id, TupleId(2));
    }

    #[test]
    fn preserves_tentative_kind() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(0)));
        let mut out = BatchEmitter::new();
        let t = Tuple::tentative(TupleId(3), Time::ZERO, vec![Value::Int(1)]);
        f.process(0, &t, Time::ZERO, &mut out);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn metadata_always_passes() {
        let mut f = Filter::new(Expr::Const(Value::Bool(false)));
        let mut out = BatchEmitter::new();
        f.process(
            0,
            &Tuple::boundary(TupleId::NONE, Time::from_secs(1)),
            Time::ZERO,
            &mut out,
        );
        f.process(
            0,
            &Tuple::undo(TupleId::NONE, TupleId(4)),
            Time::ZERO,
            &mut out,
        );
        f.process(
            0,
            &Tuple::rec_done(TupleId::NONE, Time::ZERO),
            Time::ZERO,
            &mut out,
        );
        assert_eq!(out.tuples().len(), 3);
    }

    #[test]
    fn predicate_errors_drop_the_tuple() {
        let mut f = Filter::new(Expr::gt(Expr::field(7), Expr::int(0)));
        let mut out = BatchEmitter::new();
        f.process(0, &data(1, 1), Time::ZERO, &mut out);
        assert!(out.tuples().is_empty());
    }

    #[test]
    fn batch_path_forwards_all_pass_batch_by_reference() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(0)));
        let batch = TupleBatch::from_vec((1..=4).map(|i| data(i, i as i64)).collect());
        let mut out = BatchEmitter::new();
        f.process_batch(0, &batch, Time::ZERO, &mut out);
        let (chunks, _) = out.take();
        assert_eq!(chunks.len(), 1);
        assert!(
            chunks[0].shares_backing(&batch),
            "all-pass forwards a shared view"
        );
        assert_eq!(chunks[0], batch);
    }

    #[test]
    fn batch_path_splits_runs_and_matches_per_tuple_path() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(10)));
        let tuples: Vec<Tuple> = vec![
            data(1, 20),
            data(2, 5), // dropped
            data(3, 30),
            Tuple::boundary(TupleId::NONE, Time::from_secs(1)),
            data(4, 2), // dropped
        ];
        let batch = TupleBatch::from_vec(tuples.clone());
        let mut out = BatchEmitter::new();
        f.process_batch(0, &batch, Time::ZERO, &mut out);
        let (chunks, _) = out.take();
        let got: Vec<Tuple> = chunks.iter().flat_map(|c| c.to_vec()).collect();

        let mut reference = BatchEmitter::new();
        let mut f2 = Filter::new(Expr::gt(Expr::field(0), Expr::int(10)));
        for t in &tuples {
            f2.process(0, t, Time::ZERO, &mut reference);
        }
        assert_eq!(got, reference.tuples());
        assert!(
            chunks.iter().all(|c| c.shares_backing(&batch)),
            "runs are views"
        );
    }
}
