//! Filter: tests each input tuple against a predicate (§2.1).

use crate::{Emitter, OpSnapshot, Operator};
use borealis_types::{Expr, Time, Tuple, TupleKind};

/// A stateless predicate filter.
///
/// Data tuples that satisfy the predicate pass through unchanged (same id,
/// same stime, same kind — tentative stays tentative). Boundary, undo, and
/// rec-done tuples always pass: they are stream metadata, not data.
/// Tuples on which the predicate errors (type mismatch, missing field) are
/// dropped deterministically; a deterministic drop preserves replica
/// consistency, which is all DPC requires.
pub struct Filter {
    predicate: Expr,
}

impl Filter {
    /// Builds a filter with the given predicate expression.
    pub fn new(predicate: Expr) -> Filter {
        Filter { predicate }
    }
}

impl Operator for Filter {
    fn name(&self) -> &'static str {
        "filter"
    }

    fn process(&mut self, _port: usize, tuple: &Tuple, _now: Time, out: &mut Emitter) {
        match tuple.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                if self.predicate.eval_bool(tuple).unwrap_or(false) {
                    out.push(tuple.clone());
                }
            }
            // Punctuation and recovery markers always propagate.
            TupleKind::Boundary | TupleKind::Undo | TupleKind::RecDone => {
                out.push(tuple.clone());
            }
        }
    }

    fn checkpoint(&self) -> OpSnapshot {
        // Stateless: nothing to capture.
        OpSnapshot::new(())
    }

    fn restore(&mut self, _snap: &OpSnapshot) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{TupleId, Value};

    fn data(id: u64, v: i64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(id), vec![Value::Int(v)])
    }

    #[test]
    fn passes_matching_drops_rest() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(10)));
        let mut out = Emitter::new();
        f.process(0, &data(1, 5), Time::ZERO, &mut out);
        f.process(0, &data(2, 15), Time::ZERO, &mut out);
        assert_eq!(out.tuples.len(), 1);
        assert_eq!(out.tuples[0].id, TupleId(2));
    }

    #[test]
    fn preserves_tentative_kind() {
        let mut f = Filter::new(Expr::gt(Expr::field(0), Expr::int(0)));
        let mut out = Emitter::new();
        let t = Tuple::tentative(TupleId(3), Time::ZERO, vec![Value::Int(1)]);
        f.process(0, &t, Time::ZERO, &mut out);
        assert_eq!(out.tuples[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn metadata_always_passes() {
        let mut f = Filter::new(Expr::Const(Value::Bool(false)));
        let mut out = Emitter::new();
        f.process(0, &Tuple::boundary(TupleId::NONE, Time::from_secs(1)), Time::ZERO, &mut out);
        f.process(0, &Tuple::undo(TupleId::NONE, TupleId(4)), Time::ZERO, &mut out);
        f.process(0, &Tuple::rec_done(TupleId::NONE, Time::ZERO), Time::ZERO, &mut out);
        assert_eq!(out.tuples.len(), 3);
    }

    #[test]
    fn predicate_errors_drop_the_tuple() {
        let mut f = Filter::new(Expr::gt(Expr::field(7), Expr::int(0)));
        let mut out = Emitter::new();
        f.process(0, &data(1, 1), Time::ZERO, &mut out);
        assert!(out.tuples.is_empty());
    }
}
