//! # borealis-ops
//!
//! The Borealis/Aurora operator set (§2.1 of the paper) extended for DPC
//! (§3): `Filter`, `Map`, `Union`, windowed `Aggregate`, and the three
//! DPC-specific operators — the serializing [`SUnion`], the order-driven
//! [`SJoin`], and the output-stabilizing [`SOutput`].
//!
//! All operators are **deterministic** (§2.1): their outputs depend only on
//! input data and order, never on arrival times or randomness. They support
//! the extended tuple model (stable / tentative / boundary / undo /
//! rec-done), label their outputs correctly (tentative in → tentative out),
//! propagate boundary tuples, and implement `checkpoint`/`restore` so a
//! whole query-diagram fragment can be rolled back and replayed during DPC
//! state reconciliation (§4.4.1).

#![warn(missing_docs)]

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod map;
pub mod snapshot;
pub mod soutput;
pub mod spec;
pub mod sunion;
pub mod union;

pub use aggregate::{AggFn, Aggregate, AggregateSpec};
pub use filter::Filter;
pub use join::{SJoin, SJoinSpec};
pub use map::Map;
pub use snapshot::OpSnapshot;
pub use soutput::SOutput;
pub use spec::OperatorSpec;
pub use sunion::{DelayMode, SUnion, SUnionConfig};
pub use union::Union;

use borealis_types::{ControlSignal, Time, Tuple};

/// Collects the tuples and control signals an operator emits while
/// processing one input tuple or one timer tick.
///
/// Operators have a single output stream in this engine (as in Aurora);
/// the fragment routes emitted tuples to all consumers of that stream.
#[derive(Debug, Default)]
pub struct Emitter {
    /// Tuples emitted on the operator's output stream, in order.
    pub tuples: Vec<Tuple>,
    /// Control signals destined for the node's Consistency Manager
    /// (Table I, control streams).
    pub signals: Vec<ControlSignal>,
}

impl Emitter {
    /// Creates an empty emitter.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// Emits a tuple on the output stream.
    pub fn push(&mut self, t: Tuple) {
        self.tuples.push(t);
    }

    /// Emits a control signal to the Consistency Manager.
    pub fn signal(&mut self, s: ControlSignal) {
        self.signals.push(s);
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty() && self.signals.is_empty()
    }

    /// Moves the contents out, leaving the emitter empty.
    pub fn take(&mut self) -> (Vec<Tuple>, Vec<ControlSignal>) {
        (std::mem::take(&mut self.tuples), std::mem::take(&mut self.signals))
    }
}

/// A deterministic stream operator.
///
/// Operators process one tuple at a time and may also react to the passage
/// of virtual time through [`Operator::tick`]; SUnion uses ticks to enforce
/// the availability deadline (`Delaynew < X`, Property 1) by emitting
/// overdue buckets tentatively.
pub trait Operator: Send {
    /// Human-readable operator kind, for diagnostics.
    fn name(&self) -> &'static str;

    /// Number of input ports.
    fn n_inputs(&self) -> usize {
        1
    }

    /// Processes one input tuple arriving on `port` at virtual time `now`.
    fn process(&mut self, port: usize, tuple: &Tuple, now: Time, out: &mut Emitter);

    /// Reacts to the passage of time. `tentative_permitted` is set by the
    /// fragment once the pre-failure checkpoint has been taken (§4.4.1):
    /// SUnion must not release tentative data before the fragment state has
    /// been captured.
    fn tick(&mut self, _now: Time, _tentative_permitted: bool, _out: &mut Emitter) {}

    /// The next instant at which this operator needs a [`Operator::tick`],
    /// if any.
    fn next_deadline(&self) -> Option<Time> {
        None
    }

    /// True if a tick at `now` would release tentative data. The fragment
    /// polls this before ticking to take the reconciliation checkpoint
    /// first.
    fn wants_tentative(&self, _now: Time) -> bool {
        false
    }

    /// Captures the operator's state for checkpoint/redo reconciliation.
    fn checkpoint(&self) -> OpSnapshot;

    /// Restores the operator's state from a checkpoint.
    fn restore(&mut self, snap: &OpSnapshot);

    /// Whether fragment-wide reconciliation restores this operator. SOutput
    /// keeps its runtime duplicate-suppression state across reconciliations
    /// (§4.4.2) and returns `false`.
    fn restore_on_reconcile(&self) -> bool {
        true
    }

    /// Downcast hook for the fragment's SUnion-specific plumbing (replay
    /// buffers, correction status).
    fn as_sunion_mut(&mut self) -> Option<&mut SUnion> {
        None
    }

    /// Downcast hook for the fragment's SOutput-specific plumbing
    /// (stabilization mode).
    fn as_soutput_mut(&mut self) -> Option<&mut SOutput> {
        None
    }

    /// Downcast hook used by tests and diagnostics.
    fn as_sunion(&self) -> Option<&SUnion> {
        None
    }

    /// Downcast hook used for per-stream health reporting (§8.2).
    fn as_soutput(&self) -> Option<&SOutput> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::TupleId;

    #[test]
    fn emitter_take_resets() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        e.push(Tuple::boundary(TupleId::NONE, Time::ZERO));
        e.signal(ControlSignal::UpFailure);
        assert!(!e.is_empty());
        let (tuples, signals) = e.take();
        assert_eq!(tuples.len(), 1);
        assert_eq!(signals, vec![ControlSignal::UpFailure]);
        assert!(e.is_empty());
    }
}
