//! # borealis-ops
//!
//! The Borealis/Aurora operator set (§2.1 of the paper) extended for DPC
//! (§3): `Filter`, `Map`, `Union`, windowed `Aggregate`, and the three
//! DPC-specific operators — the serializing [`SUnion`], the order-driven
//! [`SJoin`], and the output-stabilizing [`SOutput`].
//!
//! All operators are **deterministic** (§2.1): their outputs depend only on
//! input data and order, never on arrival times or randomness. They support
//! the extended tuple model (stable / tentative / boundary / undo /
//! rec-done), label their outputs correctly (tentative in → tentative out),
//! propagate boundary tuples, and implement `checkpoint`/`restore` so a
//! whole query-diagram fragment can be rolled back and replayed during DPC
//! state reconciliation (§4.4.1).

#![warn(missing_docs)]

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod map;
pub mod snapshot;
pub mod soutput;
pub mod spec;
pub mod sunion;
pub mod union;

pub use aggregate::{AggFn, Aggregate, AggregateSpec};
pub use filter::Filter;
pub use join::{SJoin, SJoinSpec};
pub use map::Map;
pub use snapshot::{OpSnapshot, SnapshotCodec};
pub use soutput::SOutput;
pub use spec::OperatorSpec;
pub use sunion::{DelayMode, SUnion, SUnionConfig};
pub use union::Union;

use borealis_types::{ControlSignal, Time, Tuple, TupleBatch};

/// The single emission path: collects the tuples and control signals an
/// operator emits, as ordered shared batches.
///
/// Operators have a single output stream in this engine (as in Aurora);
/// the fragment routes emitted tuples to all consumers of that stream.
///
/// Two producer styles share this collector:
///
/// * **per-tuple pushes** ([`BatchEmitter::push`]) — the compat shim for
///   operator internals that emit tuple by tuple (aggregations, window
///   closes, markers); contiguous runs are sealed into one shared batch;
/// * **shared-batch pushes** ([`BatchEmitter::push_batch`]) — pass-through
///   operators emit O(1) views of their input batch instead of cloning
///   tuples (the zero-copy fan-out path).
///
/// Either way the downstream engine, node buffers, and network fan-out all
/// share the resulting allocations.
#[derive(Debug, Default)]
pub struct BatchEmitter {
    chunks: Vec<TupleBatch>,
    pending: Vec<Tuple>,
    signals: Vec<ControlSignal>,
}

impl BatchEmitter {
    /// Creates an empty emitter.
    pub fn new() -> BatchEmitter {
        BatchEmitter::default()
    }

    /// Emits one owned tuple (buffered; sealed into a shared batch when a
    /// batch boundary is reached).
    pub fn push(&mut self, t: Tuple) {
        self.pending.push(t);
    }

    /// Emits a shared batch view without copying its tuples.
    pub fn push_batch(&mut self, batch: TupleBatch) {
        if batch.is_empty() {
            return;
        }
        self.seal();
        self.chunks.push(batch);
    }

    /// Emits a control signal to the Consistency Manager.
    pub fn signal(&mut self, s: ControlSignal) {
        self.signals.push(s);
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty() && self.pending.is_empty() && self.signals.is_empty()
    }

    fn seal(&mut self) {
        if !self.pending.is_empty() {
            self.chunks
                .push(TupleBatch::from_vec(std::mem::take(&mut self.pending)));
        }
    }

    /// Moves the contents out as ordered shared batches plus signals,
    /// leaving the emitter empty — the data plane's consumption path.
    pub fn take(&mut self) -> (Vec<TupleBatch>, Vec<ControlSignal>) {
        self.seal();
        (
            std::mem::take(&mut self.chunks),
            std::mem::take(&mut self.signals),
        )
    }

    /// Moves the contents out flattened to owned tuples — a copying
    /// convenience for tests and per-tuple consumers.
    pub fn take_tuples(&mut self) -> (Vec<Tuple>, Vec<ControlSignal>) {
        let (chunks, signals) = self.take();
        let tuples = chunks
            .iter()
            .flat_map(|c| c.as_slice().iter().cloned())
            .collect();
        (tuples, signals)
    }

    /// Flattened copy of the tuples emitted so far (non-consuming; tests
    /// and diagnostics).
    pub fn tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self
            .chunks
            .iter()
            .flat_map(|c| c.as_slice().iter().cloned())
            .collect();
        v.extend(self.pending.iter().cloned());
        v
    }

    /// Control signals emitted so far (non-consuming).
    pub fn signals(&self) -> &[ControlSignal] {
        &self.signals
    }
}

/// A deterministic stream operator.
///
/// Operators process one tuple at a time and may also react to the passage
/// of virtual time through [`Operator::tick`]; SUnion uses ticks to enforce
/// the availability deadline (`Delaynew < X`, Property 1) by emitting
/// overdue buckets tentatively.
pub trait Operator: Send {
    /// Human-readable operator kind, for diagnostics.
    fn name(&self) -> &'static str;

    /// Number of input ports.
    fn n_inputs(&self) -> usize {
        1
    }

    /// Processes one input tuple arriving on `port` at virtual time `now`.
    fn process(&mut self, port: usize, tuple: &Tuple, now: Time, out: &mut BatchEmitter);

    /// Processes a whole shared batch arriving on `port`.
    ///
    /// The default forwards tuple-by-tuple through [`Operator::process`]
    /// into the same emitter. Pass-through operators override this to emit
    /// O(1) views of the input batch instead of cloning tuples (the
    /// zero-copy fan-out path); stateful operators usually keep the
    /// default.
    fn process_batch(
        &mut self,
        port: usize,
        batch: &TupleBatch,
        now: Time,
        out: &mut BatchEmitter,
    ) {
        for t in batch.as_slice() {
            self.process(port, t, now, out);
        }
    }

    /// Reacts to the passage of time. `tentative_permitted` is set by the
    /// fragment once the pre-failure checkpoint has been taken (§4.4.1):
    /// SUnion must not release tentative data before the fragment state has
    /// been captured.
    fn tick(&mut self, _now: Time, _tentative_permitted: bool, _out: &mut BatchEmitter) {}

    /// The next instant at which this operator needs a [`Operator::tick`],
    /// if any.
    fn next_deadline(&self) -> Option<Time> {
        None
    }

    /// True if a tick at `now` would release tentative data. The fragment
    /// polls this before ticking to take the reconciliation checkpoint
    /// first.
    fn wants_tentative(&self, _now: Time) -> bool {
        false
    }

    /// Captures the operator's state for checkpoint/redo reconciliation.
    ///
    /// # Implementor contract (copy-on-write)
    ///
    /// Checkpoints run at the failure-detection instant, before the first
    /// tentative tuple may be released (§4.4.1), so this method must be
    /// cheap: keep mutable state behind an `Arc` and return
    /// [`OpSnapshot::share`] — an O(1) reference-count bump — mutating
    /// through [`std::sync::Arc::make_mut`] so the first post-checkpoint
    /// mutation pays the (lazy) divergence copy instead. Whatever strategy
    /// is used, a snapshot must never observe mutations made after it was
    /// taken, and must stay restorable multiple times (a node can fail
    /// again during stabilization, Fig. 11(b)). See [`snapshot`] for the
    /// full contract.
    fn checkpoint(&self) -> OpSnapshot;

    /// Restores the operator's state from a checkpoint. `Arc`-state
    /// operators adopt the snapshot's allocation ([`OpSnapshot::shared`],
    /// O(1)) and diverge later by copy-on-write.
    fn restore(&mut self, snap: &OpSnapshot);

    /// Codec that serializes this operator's checkpoints for the durable
    /// store (disk recovery). Stateless operators keep the default unit
    /// codec; stateful operators must override it — a fragment is only
    /// durably checkpointable if every stateful operator round-trips.
    fn snapshot_codec(&self) -> SnapshotCodec {
        SnapshotCodec::unit()
    }

    /// Whether fragment-wide reconciliation restores this operator. SOutput
    /// keeps its runtime duplicate-suppression state across reconciliations
    /// (§4.4.2) and returns `false`.
    fn restore_on_reconcile(&self) -> bool {
        true
    }

    /// Downcast hook for the fragment's SUnion-specific plumbing (replay
    /// buffers, correction status).
    fn as_sunion_mut(&mut self) -> Option<&mut SUnion> {
        None
    }

    /// Downcast hook for the fragment's SOutput-specific plumbing
    /// (stabilization mode).
    fn as_soutput_mut(&mut self) -> Option<&mut SOutput> {
        None
    }

    /// Downcast hook used by tests and diagnostics.
    fn as_sunion(&self) -> Option<&SUnion> {
        None
    }

    /// Downcast hook used for per-stream health reporting (§8.2).
    fn as_soutput(&self) -> Option<&SOutput> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::TupleId;

    #[test]
    fn batch_emitter_preserves_order_across_owned_and_shared_pushes() {
        let mut e = BatchEmitter::new();
        let t1 = Tuple::insertion(TupleId(1), Time::ZERO, vec![]);
        let t2 = Tuple::insertion(TupleId(2), Time::ZERO, vec![]);
        let shared = TupleBatch::from_vec(vec![
            Tuple::insertion(TupleId(3), Time::ZERO, vec![]),
            Tuple::insertion(TupleId(4), Time::ZERO, vec![]),
        ]);
        e.push(t1);
        e.push(t2);
        e.push_batch(shared.clone());
        e.push(Tuple::insertion(TupleId(5), Time::ZERO, vec![]));
        let (chunks, _) = e.take();
        assert_eq!(chunks.len(), 3, "owned run, shared batch, owned run");
        assert!(chunks[1].shares_backing(&shared));
        let ids: Vec<u64> = chunks
            .iter()
            .flat_map(|c| c.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert!(e.is_empty());
    }

    #[test]
    fn default_process_batch_routes_through_process() {
        struct Echo;
        impl Operator for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn process(&mut self, _port: usize, t: &Tuple, _now: Time, out: &mut BatchEmitter) {
                out.push(t.clone());
                out.signal(ControlSignal::UpFailure);
            }
            fn checkpoint(&self) -> OpSnapshot {
                OpSnapshot::new(())
            }
            fn restore(&mut self, _snap: &OpSnapshot) {}
        }
        let batch = TupleBatch::from_vec(vec![
            Tuple::insertion(TupleId(1), Time::ZERO, vec![]),
            Tuple::insertion(TupleId(2), Time::ZERO, vec![]),
        ]);
        let mut out = BatchEmitter::new();
        Echo.process_batch(0, &batch, Time::ZERO, &mut out);
        let (chunks, signals) = out.take();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], batch);
        assert_eq!(signals.len(), 2);
    }

    #[test]
    fn take_tuples_flattens_and_resets() {
        let mut e = BatchEmitter::new();
        assert!(e.is_empty());
        e.push(Tuple::boundary(TupleId::NONE, Time::ZERO));
        e.push_batch(TupleBatch::single(Tuple::insertion(
            TupleId(9),
            Time::ZERO,
            vec![],
        )));
        e.signal(ControlSignal::UpFailure);
        assert!(!e.is_empty());
        assert_eq!(e.tuples().len(), 2, "non-consuming view sees both");
        assert_eq!(e.signals(), vec![ControlSignal::UpFailure]);
        let (tuples, signals) = e.take_tuples();
        assert_eq!(tuples.len(), 2);
        assert_eq!(tuples[1].id, TupleId(9));
        assert_eq!(signals, vec![ControlSignal::UpFailure]);
        assert!(e.is_empty());
    }
}
