//! Declarative operator specifications.
//!
//! A query diagram (`borealis-diagram`) is described with [`OperatorSpec`]s
//! rather than live operators so that the same diagram can be instantiated
//! identically on every replica of a fragment — the replication model of
//! §2.1 ("each operator in the query diagram is instantiated on at least two
//! distinct processing nodes").

use crate::{
    Aggregate, AggregateSpec, Filter, Map, Operator, SJoin, SJoinSpec, SOutput, SUnion,
    SUnionConfig, Union,
};
use borealis_types::Expr;

/// The specification of one operator instance.
#[derive(Debug, Clone)]
pub enum OperatorSpec {
    /// Predicate filter (§2.1).
    Filter {
        /// The predicate tuples must satisfy to pass.
        predicate: Expr,
    },
    /// Per-tuple transformation (§2.1).
    Map {
        /// One expression per output attribute.
        outputs: Vec<Expr>,
    },
    /// Plain, non-serializing union — baseline only; DPC diagrams replace it
    /// with SUnion (§3).
    Union {
        /// Number of input streams.
        n_inputs: usize,
    },
    /// Windowed, grouped aggregate (§2.1).
    Aggregate(AggregateSpec),
    /// Serialized windowed join (§3).
    SJoin(SJoinSpec),
    /// Serializing union (§4.2).
    SUnion(SUnionConfig),
    /// Output stabilization (§4.4.2).
    SOutput,
}

impl OperatorSpec {
    /// Instantiates a live operator from the spec.
    pub fn instantiate(&self) -> Box<dyn Operator> {
        match self {
            OperatorSpec::Filter { predicate } => Box::new(Filter::new(predicate.clone())),
            OperatorSpec::Map { outputs } => Box::new(Map::new(outputs.clone())),
            OperatorSpec::Union { n_inputs } => Box::new(Union::new(*n_inputs)),
            OperatorSpec::Aggregate(spec) => Box::new(Aggregate::new(spec.clone())),
            OperatorSpec::SJoin(spec) => Box::new(SJoin::new(spec.clone())),
            OperatorSpec::SUnion(cfg) => Box::new(SUnion::new(cfg.clone())),
            OperatorSpec::SOutput => Box::new(SOutput::new()),
        }
    }

    /// Number of input ports the instantiated operator will have.
    pub fn n_inputs(&self) -> usize {
        match self {
            OperatorSpec::Union { n_inputs } => *n_inputs,
            OperatorSpec::SUnion(cfg) => cfg.n_inputs,
            _ => 1,
        }
    }

    /// True for SUnion specs.
    pub fn is_sunion(&self) -> bool {
        matches!(self, OperatorSpec::SUnion(_))
    }

    /// True for SOutput specs.
    pub fn is_soutput(&self) -> bool {
        matches!(self, OperatorSpec::SOutput)
    }

    /// Short kind name, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OperatorSpec::Filter { .. } => "filter",
            OperatorSpec::Map { .. } => "map",
            OperatorSpec::Union { .. } => "union",
            OperatorSpec::Aggregate(_) => "aggregate",
            OperatorSpec::SJoin(_) => "sjoin",
            OperatorSpec::SUnion(_) => "sunion",
            OperatorSpec::SOutput => "soutput",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiation_matches_spec() {
        let specs = [
            OperatorSpec::Filter {
                predicate: Expr::Const(borealis_types::Value::Bool(true)),
            },
            OperatorSpec::Map {
                outputs: vec![Expr::field(0)],
            },
            OperatorSpec::Union { n_inputs: 3 },
            OperatorSpec::SUnion(SUnionConfig::new(2)),
            OperatorSpec::SOutput,
        ];
        for spec in &specs {
            let op = spec.instantiate();
            assert_eq!(op.name(), spec.kind_name());
            assert_eq!(op.n_inputs(), spec.n_inputs());
        }
    }

    #[test]
    fn predicates_and_flags() {
        assert!(OperatorSpec::SUnion(SUnionConfig::new(1)).is_sunion());
        assert!(OperatorSpec::SOutput.is_soutput());
        assert!(!OperatorSpec::SOutput.is_sunion());
        assert_eq!(OperatorSpec::Union { n_inputs: 4 }.n_inputs(), 4);
    }
}
