//! SJoin: the DPC-modified Join operator (§3).
//!
//! A Borealis Join matches tuples from two streams whose stimes fall within
//! a window of each other (§2.1). Under DPC every Join is preceded by an
//! SUnion that serializes its two input streams into one deterministic
//! sequence; the Join is "slightly modified to always process input tuples
//! in the order prepared by the preceding SUnion" (§3) — that modified
//! operator is SJoin.
//!
//! SJoin therefore has a *single* input port carrying the SUnion's merged
//! stream; the `origin` tag on each tuple identifies the logical side
//! (0 = left, 1 = right).

use crate::snapshot::SnapshotCodec;
use crate::{BatchEmitter, OpSnapshot, Operator};
use borealis_types::wire::{self, Reader, WireError};
use borealis_types::{Duration, Expr, Time, Tuple, TupleId, TupleKind, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Static configuration of an [`SJoin`].
#[derive(Debug, Clone)]
pub struct SJoinSpec {
    /// Maximum stime distance between matching tuples.
    pub window: Duration,
    /// Key expression evaluated on left-side tuples.
    pub left_key: Expr,
    /// Key expression evaluated on right-side tuples.
    pub right_key: Expr,
    /// Maximum number of tuples retained per side (the paper's experiments
    /// use an SJoin "with a 100-tuple state size"). `None` keeps every tuple
    /// within the time window.
    pub max_state: Option<usize>,
    /// Tuples whose `origin` tag is below this value belong to the left
    /// side. The preceding SUnion tags tuples with their input-port index,
    /// so an SUnion over `k` streams can feed a join of its first
    /// `left_split` streams against the rest.
    pub left_split: u16,
}

#[derive(Clone)]
struct SJoinState {
    left: VecDeque<(Value, Tuple)>,
    right: VecDeque<(Value, Tuple)>,
    next_id: u64,
}

/// The serialized, windowed equi-join.
pub struct SJoin {
    spec: SJoinSpec,
    /// Copy-on-write state: checkpoints share this `Arc` (see
    /// [`crate::snapshot`] for the contract).
    state: Arc<SJoinState>,
}

impl SJoin {
    /// Builds an SJoin from its spec.
    pub fn new(spec: SJoinSpec) -> SJoin {
        SJoin {
            spec,
            state: Arc::new(SJoinState {
                left: VecDeque::new(),
                right: VecDeque::new(),
                next_id: 1,
            }),
        }
    }

    /// Current buffered state size (both sides), for tests and buffer
    /// accounting.
    pub fn state_size(&self) -> usize {
        self.state.left.len() + self.state.right.len()
    }

    /// Drops buffered tuples that can no longer match anything at or after
    /// `frontier` (input is stime-ordered downstream of SUnion).
    fn evict_before(&mut self, frontier: Time) {
        let horizon = Time(
            frontier
                .as_micros()
                .saturating_sub(self.spec.window.as_micros()),
        );
        let needs_evict =
            |side: &VecDeque<(Value, Tuple)>| side.front().is_some_and(|(_, t)| t.stime < horizon);
        // Probe before make_mut: a no-op eviction must not force the
        // copy-on-write divergence of a checkpointed state.
        if !needs_evict(&self.state.left) && !needs_evict(&self.state.right) {
            return;
        }
        let st = Arc::make_mut(&mut self.state);
        while st.left.front().is_some_and(|(_, t)| t.stime < horizon) {
            st.left.pop_front();
        }
        while st.right.front().is_some_and(|(_, t)| t.stime < horizon) {
            st.right.pop_front();
        }
    }

    fn handle_data(&mut self, tuple: &Tuple, out: &mut BatchEmitter) {
        self.evict_before(tuple.stime);
        let is_left = tuple.origin < self.spec.left_split;
        let key_expr = if is_left {
            &self.spec.left_key
        } else {
            &self.spec.right_key
        };
        let key = match key_expr.eval(tuple) {
            Ok(k) => k,
            Err(_) => return, // deterministic drop on evaluation error
        };
        let window = self.spec.window;
        let st = Arc::make_mut(&mut self.state);
        // Match against the opposite side, in its arrival order.
        let opposite = if is_left { &st.right } else { &st.left };
        let mut matches: Vec<Tuple> = Vec::new();
        let mut next_id = st.next_id;
        for (other_key, other) in opposite {
            if *other_key != key {
                continue;
            }
            let gap = if other.stime > tuple.stime {
                other.stime - tuple.stime
            } else {
                tuple.stime - other.stime
            };
            if gap > window {
                continue;
            }
            let (l, r) = if is_left {
                (tuple, other)
            } else {
                (other, tuple)
            };
            let mut values = Vec::with_capacity(l.values.len() + r.values.len());
            values.extend_from_slice(&l.values);
            values.extend_from_slice(&r.values);
            let stime = l.stime.max(r.stime);
            let tentative = l.is_tentative() || r.is_tentative();
            let id = TupleId(next_id);
            next_id += 1;
            matches.push(if tentative {
                Tuple::tentative(id, stime, values)
            } else {
                Tuple::insertion(id, stime, values)
            });
        }
        st.next_id = next_id;
        for m in matches {
            out.push(m);
        }
        // Store this tuple for future matches.
        let side = if is_left { &mut st.left } else { &mut st.right };
        side.push_back((key, tuple.clone()));
        if let Some(max) = self.spec.max_state {
            while side.len() > max {
                side.pop_front();
            }
        }
    }
}

impl Operator for SJoin {
    fn name(&self) -> &'static str {
        "sjoin"
    }

    fn process(&mut self, _port: usize, tuple: &Tuple, _now: Time, out: &mut BatchEmitter) {
        match tuple.kind {
            TupleKind::Insertion | TupleKind::Tentative => self.handle_data(tuple, out),
            TupleKind::Boundary => {
                self.evict_before(tuple.stime);
                out.push(tuple.clone());
            }
            TupleKind::Undo | TupleKind::RecDone => out.push(tuple.clone()),
        }
    }

    fn checkpoint(&self) -> OpSnapshot {
        OpSnapshot::share(&self.state)
    }

    fn restore(&mut self, snap: &OpSnapshot) {
        self.state = snap.shared::<SJoinState>();
    }

    fn snapshot_codec(&self) -> SnapshotCodec {
        fn put_side(buf: &mut Vec<u8>, side: &VecDeque<(Value, Tuple)>) {
            wire::put_u32(buf, side.len() as u32);
            for (key, t) in side {
                wire::put_value(buf, key);
                wire::put_tuple(buf, t);
            }
        }
        fn read_side(r: &mut Reader<'_>) -> Result<VecDeque<(Value, Tuple)>, WireError> {
            let n = r.u32()? as usize;
            let mut side = VecDeque::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = r.value()?;
                let t = r.tuple()?;
                side.push_back((key, t));
            }
            Ok(side)
        }
        SnapshotCodec {
            encode: |snap, buf| {
                let st = snap.get::<SJoinState>();
                put_side(buf, &st.left);
                put_side(buf, &st.right);
                wire::put_u64(buf, st.next_id);
            },
            decode: |r| {
                let left = read_side(r)?;
                let right = read_side(r)?;
                let next_id = r.u64()?;
                Ok(OpSnapshot::new(SJoinState {
                    left,
                    right,
                    next_id,
                }))
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(window_ms: u64) -> SJoinSpec {
        SJoinSpec {
            window: Duration::from_millis(window_ms),
            left_key: Expr::field(0),
            right_key: Expr::field(0),
            max_state: None,
            left_split: 1,
        }
    }

    fn side(origin: u16, id: u64, ms: u64, key: i64, payload: i64) -> Tuple {
        let mut t = Tuple::insertion(
            TupleId(id),
            Time::from_millis(ms),
            vec![Value::Int(key), Value::Int(payload)],
        );
        t.origin = origin;
        t
    }

    #[test]
    fn joins_matching_keys_within_window() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 100, 7, 11), Time::ZERO, &mut out);
        j.process(0, &side(1, 1, 120, 7, 22), Time::ZERO, &mut out);
        assert_eq!(out.tuples().len(), 1);
        let m = &out.tuples()[0];
        assert_eq!(
            m.values,
            vec![
                Value::Int(7),
                Value::Int(11), // left
                Value::Int(7),
                Value::Int(22), // right
            ]
        );
        assert_eq!(m.stime, Time::from_millis(120));
        assert_eq!(m.kind, TupleKind::Insertion);
    }

    #[test]
    fn no_match_outside_window_or_key() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 100, 7, 0), Time::ZERO, &mut out);
        // Wrong key.
        j.process(0, &side(1, 2, 110, 8, 0), Time::ZERO, &mut out);
        // Right key but too far in time.
        j.process(0, &side(1, 3, 200, 7, 0), Time::ZERO, &mut out);
        assert!(out.tuples().is_empty());
    }

    #[test]
    fn tentative_inputs_make_tentative_outputs() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 100, 1, 0), Time::ZERO, &mut out);
        let mut t = side(1, 2, 110, 1, 0).as_tentative();
        t.origin = 1;
        j.process(0, &t, Time::ZERO, &mut out);
        assert_eq!(out.tuples()[0].kind, TupleKind::Tentative);
    }

    #[test]
    fn eviction_keeps_state_bounded_by_window() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 0, 1, 0), Time::ZERO, &mut out);
        j.process(0, &side(0, 2, 10, 1, 0), Time::ZERO, &mut out);
        assert_eq!(j.state_size(), 2);
        // A tuple far in the future evicts both (they can't match anymore).
        j.process(0, &side(1, 3, 500, 1, 0), Time::ZERO, &mut out);
        assert!(out.tuples().is_empty());
        assert_eq!(j.state_size(), 1);
    }

    #[test]
    fn max_state_caps_each_side() {
        let mut j = SJoin::new(SJoinSpec {
            max_state: Some(2),
            ..spec(10_000)
        });
        let mut out = BatchEmitter::new();
        for i in 0..5 {
            j.process(0, &side(0, i, 100 + i, i as i64, 0), Time::ZERO, &mut out);
        }
        assert_eq!(j.state_size(), 2);
    }

    #[test]
    fn boundary_forwards_and_evicts() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 0, 1, 0), Time::ZERO, &mut out);
        j.process(
            0,
            &Tuple::boundary(TupleId::NONE, Time::from_millis(200)),
            Time::ZERO,
            &mut out,
        );
        assert_eq!(out.tuples().len(), 1);
        assert_eq!(out.tuples()[0].kind, TupleKind::Boundary);
        assert_eq!(j.state_size(), 0);
    }

    #[test]
    fn checkpoint_restore_replays_identically() {
        let mut j = SJoin::new(spec(50));
        let mut out = BatchEmitter::new();
        j.process(0, &side(0, 1, 100, 1, 5), Time::ZERO, &mut out);
        let snap = j.checkpoint();
        j.process(0, &side(1, 2, 110, 1, 6), Time::ZERO, &mut out);
        let first = out.take_tuples().0;
        j.restore(&snap);
        let mut out2 = BatchEmitter::new();
        j.process(0, &side(1, 2, 110, 1, 6), Time::ZERO, &mut out2);
        assert_eq!(first, out2.tuples());
    }
}
