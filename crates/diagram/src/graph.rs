//! Logical query diagrams: loop-free, directed graphs of operators (§2.1).
//!
//! Applications describe *what* to compute with [`LogicalOp`]s connected by
//! named streams; the DPC planner ([`mod@crate::plan`]) then derives the
//! *physical* per-fragment diagrams with SUnion/SJoin/SOutput inserted.

use borealis_ops::AggregateSpec;
use borealis_types::{Duration, Expr, FragmentId, OpId, StreamId};
use std::collections::HashMap;
use std::fmt;

/// A logical (pre-DPC) join specification. The planner turns each `Join`
/// into an SUnion (serializing its two inputs) followed by an SJoin (§3).
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Maximum stime distance between matching tuples.
    pub window: Duration,
    /// Equality key on the left input.
    pub left_key: Expr,
    /// Equality key on the right input.
    pub right_key: Expr,
    /// Optional cap on buffered tuples per side.
    pub max_state: Option<usize>,
}

/// A logical operator, before DPC planning.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Predicate filter.
    Filter {
        /// Predicate tuples must satisfy.
        predicate: Expr,
    },
    /// Per-tuple projection.
    Map {
        /// One expression per output attribute.
        outputs: Vec<Expr>,
    },
    /// Merge of several streams (becomes an SUnion).
    Union,
    /// Windowed aggregate.
    Aggregate(AggregateSpec),
    /// Windowed equi-join: the first input is the left side, every further
    /// input the right (becomes SUnion + SJoin; the paper's Fig. 12
    /// three-stream join is `Join` over three inputs).
    Join(JoinSpec),
    /// Identity tap: renames a stream so it can cross a fragment boundary
    /// or reach clients through DPC's SUnion/SOutput machinery without any
    /// computation (the §7 serialization-overhead probe). The planner
    /// lowers it to *no* physical operator.
    Passthrough,
}

impl LogicalOp {
    /// Short kind name, for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LogicalOp::Filter { .. } => "filter",
            LogicalOp::Map { .. } => "map",
            LogicalOp::Union => "union",
            LogicalOp::Aggregate(_) => "aggregate",
            LogicalOp::Join(_) => "join",
            LogicalOp::Passthrough => "passthrough",
        }
    }

    fn expected_inputs(&self) -> Option<usize> {
        match self {
            LogicalOp::Union | LogicalOp::Join(_) => None, // any number >= 2
            _ => Some(1),
        }
    }
}

/// One operator node in the logical diagram.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// Operator id.
    pub id: OpId,
    /// What it computes.
    pub op: LogicalOp,
    /// Input streams, in port order.
    pub inputs: Vec<StreamId>,
    /// The stream it produces.
    pub output: StreamId,
}

/// Errors detected while building or validating a diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagramError {
    /// A stream name was declared twice.
    DuplicateStream(String),
    /// An operator consumes a stream that nothing produces.
    UnknownStream(StreamId),
    /// An operator has the wrong number of inputs for its kind.
    ArityMismatch {
        /// The offending operator.
        op: OpId,
        /// What its kind requires.
        expected: usize,
        /// What it was given.
        actual: usize,
    },
    /// Union needs at least two inputs.
    UnionTooNarrow(OpId),
    /// The graph contains a cycle (query diagrams are loop-free, §2.1).
    Cyclic,
    /// An output stream was declared that no operator or source produces.
    UnknownOutput(StreamId),
    /// An operator was assigned to no fragment during deployment.
    Unassigned(OpId),
    /// A deployment assignment whose length does not match the diagram's
    /// operator count (longer vectors used to be silently truncated).
    AssignmentMismatch {
        /// The diagram's operator count.
        expected: usize,
        /// The assignment's length.
        actual: usize,
    },
    /// Operators in the same fragment must form a connected sub-diagram
    /// deployable on one node; this edge crosses fragments backwards.
    BackwardsEdge {
        /// Producing fragment.
        from: FragmentId,
        /// Consuming fragment.
        to: FragmentId,
    },
    /// A deployment spec referenced an operator name the diagram does not
    /// define.
    UnknownOp(String),
    /// A deployment spec assigned the same operator to two fragments.
    DuplicateAssignment(String),
    /// A deployment spec declared a fragment with no operators.
    EmptyFragment(String),
    /// A stream handle from one `QueryBuilder` was used with another.
    ForeignHandle,
    /// A sharded fragment produces a client-visible output stream; shards
    /// must be merged by a downstream fragment's SUnion before delivery.
    ShardedOutput(StreamId),
    /// Key-partitioned sharding needs the DPC machinery (entry SUnions to
    /// merge substreams); it cannot be combined with
    /// [`Protection::Baseline`](crate::plan::Protection).
    ShardsRequireDpc(String),
    /// A [`LogicalOp::Passthrough`] has no physical operator to carry its
    /// output in baseline (no-SOutput) mode.
    UnprotectedPassthrough(StreamId),
    /// A fragment declared a bounded output buffer of capacity zero — its
    /// replicas could never replay anything to a reconnecting consumer.
    ZeroCapacityBuffer(String),
}

impl fmt::Display for DiagramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagramError::DuplicateStream(n) => write!(f, "stream {n:?} declared twice"),
            DiagramError::UnknownStream(s) => {
                write!(f, "stream {s} is consumed but never produced")
            }
            DiagramError::ArityMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "operator {op} expects {expected} inputs, got {actual}")
            }
            DiagramError::UnionTooNarrow(op) => write!(f, "union {op} needs >= 2 inputs"),
            DiagramError::Cyclic => write!(f, "query diagram contains a cycle"),
            DiagramError::UnknownOutput(s) => write!(f, "declared output {s} is never produced"),
            DiagramError::Unassigned(op) => write!(f, "operator {op} not assigned to a fragment"),
            DiagramError::AssignmentMismatch { expected, actual } => {
                write!(
                    f,
                    "deployment assigns {actual} operators but the diagram has {expected}"
                )
            }
            DiagramError::BackwardsEdge { from, to } => {
                write!(
                    f,
                    "fragment {to} feeds earlier fragment {from} (cycle between fragments)"
                )
            }
            DiagramError::UnknownOp(n) => write!(f, "deployment references unknown operator {n:?}"),
            DiagramError::DuplicateAssignment(n) => {
                write!(f, "operator {n:?} assigned to two fragments")
            }
            DiagramError::EmptyFragment(n) => write!(f, "fragment {n:?} contains no operators"),
            DiagramError::ForeignHandle => {
                write!(f, "stream handle belongs to a different QueryBuilder")
            }
            DiagramError::ShardedOutput(s) => {
                write!(
                    f,
                    "sharded fragment produces client-visible stream {s}; merge it in a downstream fragment first"
                )
            }
            DiagramError::ShardsRequireDpc(n) => {
                write!(
                    f,
                    "fragment {n:?} is sharded but planned without DPC protection"
                )
            }
            DiagramError::UnprotectedPassthrough(s) => {
                write!(f, "passthrough stream {s} requires DPC protection")
            }
            DiagramError::ZeroCapacityBuffer(n) => {
                write!(f, "fragment {n:?} declares a zero-capacity output buffer")
            }
        }
    }
}

impl std::error::Error for DiagramError {}

/// A validated logical query diagram.
#[derive(Debug, Clone)]
pub struct Diagram {
    ops: Vec<OpNode>,
    source_streams: Vec<StreamId>,
    output_streams: Vec<StreamId>,
    stream_names: Vec<String>,
    /// op ids in topological order.
    topo: Vec<OpId>,
}

impl Diagram {
    /// The operators, indexable by [`OpId::index`].
    pub fn ops(&self) -> &[OpNode] {
        &self.ops
    }

    /// Streams entering the diagram from data sources.
    pub fn source_streams(&self) -> &[StreamId] {
        &self.source_streams
    }

    /// Streams delivered to client applications.
    pub fn output_streams(&self) -> &[StreamId] {
        &self.output_streams
    }

    /// Operator ids in a topological order.
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// Name of a stream.
    pub fn stream_name(&self, s: StreamId) -> &str {
        &self.stream_names[s.index()]
    }

    /// Number of streams (source + intermediate).
    pub fn n_streams(&self) -> usize {
        self.stream_names.len()
    }

    /// The operator producing `stream`, if any (sources produce none).
    pub fn producer(&self, stream: StreamId) -> Option<&OpNode> {
        self.ops.iter().find(|o| o.output == stream)
    }

    /// The operators consuming `stream`.
    pub fn consumers(&self, stream: StreamId) -> Vec<&OpNode> {
        self.ops
            .iter()
            .filter(|o| o.inputs.contains(&stream))
            .collect()
    }

    /// The stream with the given name, if declared.
    pub fn stream_named(&self, name: &str) -> Option<StreamId> {
        self.stream_names
            .iter()
            .position(|n| n == name)
            .map(|i| StreamId(i as u32))
    }

    /// The operator whose output stream has the given name (operators are
    /// addressed by the stream they produce — the deployment-spec naming
    /// convention).
    pub fn op_named(&self, name: &str) -> Option<&OpNode> {
        let s = self.stream_named(name)?;
        self.producer(s)
    }
}

/// Incrementally builds a [`Diagram`].
#[derive(Debug, Default)]
pub struct DiagramBuilder {
    ops: Vec<OpNode>,
    stream_names: Vec<String>,
    stream_index: HashMap<String, StreamId>,
    source_streams: Vec<StreamId>,
    output_streams: Vec<StreamId>,
    errors: Vec<DiagramError>,
}

impl DiagramBuilder {
    /// Starts an empty diagram.
    pub fn new() -> DiagramBuilder {
        DiagramBuilder::default()
    }

    fn intern(&mut self, name: &str) -> StreamId {
        if let Some(&s) = self.stream_index.get(name) {
            return s;
        }
        let s = StreamId(self.stream_names.len() as u32);
        self.stream_names.push(name.to_string());
        self.stream_index.insert(name.to_string(), s);
        s
    }

    /// Declares a source stream (produced outside the diagram).
    pub fn source(&mut self, name: &str) -> StreamId {
        if self.stream_index.contains_key(name) {
            self.errors
                .push(DiagramError::DuplicateStream(name.to_string()));
        }
        let s = self.intern(name);
        self.source_streams.push(s);
        s
    }

    /// Adds an operator producing stream `output_name` from `inputs`.
    pub fn add(&mut self, output_name: &str, op: LogicalOp, inputs: &[StreamId]) -> StreamId {
        if self.stream_index.contains_key(output_name) {
            self.errors
                .push(DiagramError::DuplicateStream(output_name.to_string()));
        }
        let output = self.intern(output_name);
        let id = OpId(self.ops.len() as u32);
        match op.expected_inputs() {
            Some(n) if n != inputs.len() => {
                self.errors.push(DiagramError::ArityMismatch {
                    op: id,
                    expected: n,
                    actual: inputs.len(),
                });
            }
            None if inputs.len() < 2 => self.errors.push(match op {
                LogicalOp::Join(_) => DiagramError::ArityMismatch {
                    op: id,
                    expected: 2,
                    actual: inputs.len(),
                },
                _ => DiagramError::UnionTooNarrow(id),
            }),
            _ => {}
        }
        self.ops.push(OpNode {
            id,
            op,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Marks a stream as a client-visible output.
    pub fn output(&mut self, stream: StreamId) {
        self.output_streams.push(stream);
    }

    /// Validates and freezes the diagram.
    pub fn build(self) -> Result<Diagram, DiagramError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        // Every consumed stream must be produced by a source or an operator.
        let mut produced = vec![false; self.stream_names.len()];
        for &s in &self.source_streams {
            produced[s.index()] = true;
        }
        for op in &self.ops {
            produced[op.output.index()] = true;
        }
        for op in &self.ops {
            for &s in &op.inputs {
                if !produced.get(s.index()).copied().unwrap_or(false) {
                    return Err(DiagramError::UnknownStream(s));
                }
            }
        }
        for &s in &self.output_streams {
            if !produced.get(s.index()).copied().unwrap_or(false) {
                return Err(DiagramError::UnknownOutput(s));
            }
        }
        let topo = self.topo_sort()?;
        Ok(Diagram {
            ops: self.ops,
            source_streams: self.source_streams,
            output_streams: self.output_streams,
            stream_names: self.stream_names,
            topo,
        })
    }

    /// Kahn's algorithm over operator nodes; detects cycles.
    fn topo_sort(&self) -> Result<Vec<OpId>, DiagramError> {
        let n = self.ops.len();
        // producer_of[stream] = op index
        let mut producer_of: HashMap<StreamId, usize> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            producer_of.insert(op.output, i);
        }
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            for s in &op.inputs {
                if let Some(&p) = producer_of.get(s) {
                    indegree[i] += 1;
                    consumers[p].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(OpId(i as u32));
            for &c in &consumers[i] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != n {
            return Err(DiagramError::Cyclic);
        }
        // Deterministic order: sort stable by position in a BFS layering.
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Expr;

    fn filter() -> LogicalOp {
        LogicalOp::Filter {
            predicate: Expr::Const(borealis_types::Value::Bool(true)),
        }
    }

    #[test]
    fn simple_chain_builds() {
        let mut b = DiagramBuilder::new();
        let s = b.source("in");
        let f = b.add("filtered", filter(), &[s]);
        b.output(f);
        let d = b.build().unwrap();
        assert_eq!(d.ops().len(), 1);
        assert_eq!(d.source_streams(), &[StreamId(0)]);
        assert_eq!(d.output_streams(), &[f]);
        assert_eq!(d.stream_name(s), "in");
        assert!(d.producer(f).is_some());
        assert!(d.producer(s).is_none());
        assert_eq!(d.consumers(s).len(), 1);
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut b = DiagramBuilder::new();
        b.source("x");
        b.source("x");
        assert!(matches!(b.build(), Err(DiagramError::DuplicateStream(_))));
    }

    #[test]
    fn unknown_input_rejected() {
        let mut b = DiagramBuilder::new();
        b.source("a");
        // Stream id 5 was never declared.
        b.add("out", filter(), &[StreamId(0)]);
        let mut b2 = DiagramBuilder::new();
        let s = b2.source("a");
        let _ = s;
        b2.add("out", filter(), &[StreamId(7)]);
        assert!(b.build().is_ok());
        // Building with a dangling id fails.
        assert!(b2.build().is_err());
    }

    #[test]
    fn arity_checked() {
        let mut b = DiagramBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        b.add(
            "j",
            LogicalOp::Join(JoinSpec {
                window: Duration::from_millis(10),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: None,
            }),
            &[a],
        );
        let _ = c;
        assert!(matches!(b.build(), Err(DiagramError::ArityMismatch { .. })));
    }

    #[test]
    fn union_needs_two_inputs() {
        let mut b = DiagramBuilder::new();
        let a = b.source("a");
        b.add("u", LogicalOp::Union, &[a]);
        assert!(matches!(b.build(), Err(DiagramError::UnionTooNarrow(_))));
    }

    #[test]
    fn topo_order_covers_all_ops() {
        let mut b = DiagramBuilder::new();
        let a = b.source("a");
        let c = b.source("b");
        let u = b.add("u", LogicalOp::Union, &[a, c]);
        let f = b.add("f", filter(), &[u]);
        b.output(f);
        let d = b.build().unwrap();
        assert_eq!(d.topo_order().len(), 2);
        // Union must precede filter.
        let pos = |id: OpId| d.topo_order().iter().position(|&o| o == id).unwrap();
        assert!(pos(OpId(0)) < pos(OpId(1)));
    }

    #[test]
    fn fan_out_is_allowed() {
        let mut b = DiagramBuilder::new();
        let a = b.source("a");
        let f1 = b.add("f1", filter(), &[a]);
        let f2 = b.add("f2", filter(), &[a]);
        b.output(f1);
        b.output(f2);
        let d = b.build().unwrap();
        assert_eq!(d.consumers(a).len(), 2);
    }
}
