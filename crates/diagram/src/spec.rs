//! Declarative deployment specifications: the fragment cut by operator
//! name, with per-fragment replication and key-partitioned sharding.
//!
//! A [`DeploymentSpec`] says *where* a validated
//! [`Diagram`](crate::graph::Diagram) runs: which operators form each
//! fragment (the unit of replication, §2.1), how many replicas each
//! fragment gets, and — for fragments under heavy load — how many
//! key-partitioned shards to fan it out over. It replaces hand-assembled
//! [`Deployment`](crate::plan::Deployment) vectors and hand-built
//! `FragmentPlan` wiring; [`plan_deployment`](crate::plan::plan_deployment)
//! resolves it against a diagram into a [`PhysicalPlan`](crate::plan::PhysicalPlan).
//!
//! ```
//! use borealis_diagram::{DeploymentSpec, FragmentSpec};
//! use borealis_types::Expr;
//!
//! let spec = DeploymentSpec::new()
//!     .fragment(FragmentSpec::named("ingest").op("merged"))
//!     .fragment(
//!         FragmentSpec::named("work")
//!             .op("scored")
//!             .replication(2)
//!             .shards(4, Expr::field(0)),
//!     )
//!     .fragment(FragmentSpec::named("deliver").op("final"));
//! assert_eq!(spec.fragments().len(), 3);
//! ```

use crate::graph::{Diagram, DiagramError};
use crate::plan::Deployment;
use borealis_types::{BufferPolicy, Duration, Expr, FragmentId};

/// One fragment of a [`DeploymentSpec`]: a named set of operators with its
/// replication degree and optional shard fan-out.
#[derive(Debug, Clone)]
pub struct FragmentSpec {
    pub(crate) name: String,
    pub(crate) ops: Vec<String>,
    pub(crate) replication: usize,
    pub(crate) shards: u32,
    pub(crate) shard_key: Option<Expr>,
    pub(crate) per_tuple_cost: Option<Duration>,
    pub(crate) buffer_policy: Option<BufferPolicy>,
}

impl FragmentSpec {
    /// Starts a fragment with the paper's default of two replicas.
    pub fn named(name: impl Into<String>) -> FragmentSpec {
        FragmentSpec {
            name: name.into(),
            ops: Vec::new(),
            replication: 2,
            shards: 1,
            shard_key: None,
            per_tuple_cost: None,
            buffer_policy: None,
        }
    }

    /// Adds one operator, addressed by the name of the stream it produces.
    pub fn op(mut self, name: impl Into<String>) -> Self {
        self.ops.push(name.into());
        self
    }

    /// Adds several operators.
    pub fn ops<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.ops.extend(names.into_iter().map(Into::into));
        self
    }

    /// Number of replicas per physical fragment (per shard, if sharded).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn replication(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one replica per fragment");
        self.replication = n;
        self
    }

    /// Fans the fragment out over `count` key-partitioned shards: data
    /// tuples route to shard `hash(key) % count`, each shard is replicated
    /// independently, and the downstream entry SUnion merges the shard
    /// substreams back into one deterministic stream.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn shards(mut self, count: u32, key: Expr) -> Self {
        assert!(count >= 1, "at least one shard");
        self.shards = count;
        self.shard_key = Some(key);
        self
    }

    /// Overrides the per-tuple CPU cost for this fragment's nodes
    /// (heterogeneous stage costs; the deployment-wide tuning supplies the
    /// default).
    pub fn work_cost(mut self, per_tuple: Duration) -> Self {
        self.per_tuple_cost = Some(per_tuple);
        self
    }

    /// Overrides the §8.1 output-buffer policy for this fragment's
    /// replicas (the deployment-wide `NodeTuning` supplies the default,
    /// historically always `BufferPolicy::Unbounded`). A bounded buffer
    /// caps the emission log retained for downstream replay — the paper's
    /// convergent-capable mode, where only a window of recent results is
    /// corrected after a failure heals.
    ///
    /// Zero-capacity bounds are rejected at planning time
    /// ([`DiagramError::ZeroCapacityBuffer`]).
    pub fn buffer(mut self, policy: BufferPolicy) -> Self {
        self.buffer_policy = Some(policy);
        self
    }

    /// The fragment's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The declarative deployment of a diagram: an ordered list of
/// [`FragmentSpec`]s covering every operator.
#[derive(Debug, Clone, Default)]
pub struct DeploymentSpec {
    fragments: Vec<FragmentSpec>,
}

impl DeploymentSpec {
    /// An empty spec; add fragments with [`DeploymentSpec::fragment`].
    pub fn new() -> DeploymentSpec {
        DeploymentSpec::default()
    }

    /// Every operator in one fragment with `replication` replicas — the
    /// single-node deployments of Figs. 10–13.
    pub fn single(replication: usize) -> DeploymentSpec {
        DeploymentSpec::new().fragment(FragmentSpec::named("all").replication(replication))
    }

    /// Adds a fragment.
    pub fn fragment(mut self, f: FragmentSpec) -> Self {
        self.fragments.push(f);
        self
    }

    /// The declared fragments.
    pub fn fragments(&self) -> &[FragmentSpec] {
        &self.fragments
    }

    /// Resolves operator names against `diagram` into a raw [`Deployment`]
    /// plus the per-fragment settings, checking that every operator is
    /// assigned exactly once.
    ///
    /// The single-fragment shorthand (one fragment with no listed ops)
    /// absorbs every operator.
    pub(crate) fn resolve(
        &self,
        diagram: &Diagram,
    ) -> Result<(Deployment, Vec<FragmentSpec>), DiagramError> {
        let mut metas = self.fragments.clone();
        if metas.is_empty() {
            metas.push(FragmentSpec::named("all"));
        }
        let all_in_one = metas.len() == 1 && metas[0].ops.is_empty();
        if all_in_one {
            metas[0].ops = diagram
                .ops()
                .iter()
                .map(|o| diagram.stream_name(o.output).to_string())
                .collect();
        }
        let mut assignment: Vec<Option<FragmentId>> = vec![None; diagram.ops().len()];
        for (fi, fs) in metas.iter().enumerate() {
            if fs.ops.is_empty() {
                return Err(DiagramError::EmptyFragment(fs.name.clone()));
            }
            for name in &fs.ops {
                let op = diagram
                    .op_named(name)
                    .ok_or_else(|| DiagramError::UnknownOp(name.clone()))?;
                let slot = &mut assignment[op.id.index()];
                if slot.is_some() {
                    return Err(DiagramError::DuplicateAssignment(name.clone()));
                }
                *slot = Some(FragmentId(fi as u32));
            }
        }
        let mut resolved = Vec::with_capacity(assignment.len());
        for (i, a) in assignment.into_iter().enumerate() {
            match a {
                Some(f) => resolved.push(f),
                None => return Err(DiagramError::Unassigned(borealis_types::OpId(i as u32))),
            }
        }
        Ok((
            Deployment {
                assignment: resolved,
                n_fragments: metas.len(),
            },
            metas,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiagramBuilder, LogicalOp};
    use borealis_types::{Expr, Value};

    fn two_stage() -> Diagram {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f = b.add(
            "hot",
            LogicalOp::Filter {
                predicate: Expr::Const(Value::Bool(true)),
            },
            &[s],
        );
        let m = b.add(
            "scaled",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[f],
        );
        b.output(m);
        b.build().unwrap()
    }

    #[test]
    fn resolves_names_to_assignment() {
        let d = two_stage();
        let spec = DeploymentSpec::new()
            .fragment(FragmentSpec::named("a").op("hot").replication(3))
            .fragment(FragmentSpec::named("b").op("scaled"));
        let (dep, metas) = spec.resolve(&d).unwrap();
        assert_eq!(dep.assignment, vec![FragmentId(0), FragmentId(1)]);
        assert_eq!(dep.n_fragments, 2);
        assert_eq!(metas[0].replication, 3);
        assert_eq!(metas[1].replication, 2, "default replication");
    }

    #[test]
    fn single_shorthand_absorbs_all_ops() {
        let d = two_stage();
        let (dep, metas) = DeploymentSpec::single(1).resolve(&d).unwrap();
        assert_eq!(dep.assignment, vec![FragmentId(0); 2]);
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].replication, 1);
    }

    #[test]
    fn empty_spec_defaults_to_single_fragment() {
        let d = two_stage();
        let (dep, metas) = DeploymentSpec::new().resolve(&d).unwrap();
        assert_eq!(dep.n_fragments, 1);
        assert_eq!(metas[0].replication, 2);
        let _ = dep;
    }

    #[test]
    fn buffer_policy_rides_the_fragment_spec() {
        use borealis_types::BufferPolicy;
        let d = two_stage();
        let spec = DeploymentSpec::new()
            .fragment(
                FragmentSpec::named("a")
                    .op("hot")
                    .buffer(BufferPolicy::DropOldest(512)),
            )
            .fragment(FragmentSpec::named("b").op("scaled"));
        let (_, metas) = spec.resolve(&d).unwrap();
        assert_eq!(metas[0].buffer_policy, Some(BufferPolicy::DropOldest(512)));
        assert_eq!(metas[1].buffer_policy, None, "default: deployment tuning");
    }

    #[test]
    fn unknown_duplicate_and_missing_ops_are_errors() {
        let d = two_stage();
        let unknown = DeploymentSpec::new()
            .fragment(FragmentSpec::named("a").op("hot").op("nope"))
            .fragment(FragmentSpec::named("b").op("scaled"));
        assert!(matches!(
            unknown.resolve(&d),
            Err(DiagramError::UnknownOp(n)) if n == "nope"
        ));

        let dup = DeploymentSpec::new()
            .fragment(FragmentSpec::named("a").op("hot"))
            .fragment(FragmentSpec::named("b").op("hot").op("scaled"));
        assert!(matches!(
            dup.resolve(&d),
            Err(DiagramError::DuplicateAssignment(n)) if n == "hot"
        ));

        let missing = DeploymentSpec::new().fragment(FragmentSpec::named("a").op("hot"));
        assert!(matches!(
            missing.resolve(&d),
            Err(DiagramError::Unassigned(_))
        ));

        let empty = DeploymentSpec::new()
            .fragment(FragmentSpec::named("a").ops(["hot", "scaled"]))
            .fragment(FragmentSpec::named("b"));
        assert!(matches!(
            empty.resolve(&d),
            Err(DiagramError::EmptyFragment(n)) if n == "b"
        ));
    }
}
