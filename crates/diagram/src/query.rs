//! The fluent query-construction API: typed stream handles and per-kind
//! combinators over the raw [`DiagramBuilder`](crate::graph::DiagramBuilder).
//!
//! A [`QueryBuilder`] produces the same validated
//! [`Diagram`](crate::graph::Diagram) the planner consumes, but callers
//! never touch raw `StreamId`s: every combinator takes and returns a
//! [`StreamHandle`] bound to its builder, so wiring mistakes (a handle from
//! another query, a join with one input) are caught at `build()` with a
//! typed [`DiagramError`](crate::graph::DiagramError).

use crate::graph::{Diagram, DiagramBuilder, DiagramError, JoinSpec, LogicalOp};
use borealis_ops::AggregateSpec;
use borealis_types::{Expr, StreamId};
use std::sync::atomic::{AtomicU32, Ordering};

static NEXT_TAG: AtomicU32 = AtomicU32::new(1);

/// A named, typed handle to a stream under construction. Obtained from
/// [`QueryBuilder`] combinators; only valid with the builder that created
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHandle {
    id: StreamId,
    tag: u32,
}

impl StreamHandle {
    /// The underlying stream id (stable across `build()`; used to address
    /// sources, client subscriptions, and metrics).
    pub fn id(self) -> StreamId {
        self.id
    }
}

impl From<StreamHandle> for StreamId {
    fn from(h: StreamHandle) -> StreamId {
        h.id
    }
}

/// Fluent construction of a validated query diagram.
///
/// ```
/// use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, FragmentSpec, QueryBuilder};
/// use borealis_types::{BinOp, Expr};
///
/// // Merge two feeds, keep the readings over 50, shard the scoring stage
/// // four ways by sensor id, and merge the shards for delivery.
/// let mut q = QueryBuilder::new();
/// let a = q.source("feed-a");
/// let b = q.source("feed-b");
/// let merged = q.union("merged", &[a, b]);
/// let hot = q.filter("hot", merged, Expr::bin(BinOp::Gt, Expr::field(0), Expr::int(50)));
/// let scored = q.map("scored", hot, vec![Expr::field(0)]);
/// let out = q.relay("final", scored);
/// q.output(out);
/// let diagram = q.build().expect("valid diagram");
///
/// let spec = DeploymentSpec::new()
///     .fragment(FragmentSpec::named("ingest").ops(["merged", "hot"]))
///     .fragment(FragmentSpec::named("score").op("scored").shards(4, Expr::field(0)))
///     .fragment(FragmentSpec::named("deliver").op("final"));
/// let plan = plan_deployment(&diagram, &spec, &DpcConfig::default()).expect("plannable");
/// // 1 ingest + 4 score shards + 1 deliver = 6 physical fragments.
/// assert_eq!(plan.fragments.len(), 6);
/// ```
#[derive(Debug, Default)]
pub struct QueryBuilder {
    b: DiagramBuilder,
    tag: u32,
    foreign: bool,
}

impl QueryBuilder {
    /// Starts an empty query.
    pub fn new() -> QueryBuilder {
        QueryBuilder {
            b: DiagramBuilder::new(),
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
            foreign: false,
        }
    }

    fn wrap(&mut self, id: StreamId) -> StreamHandle {
        StreamHandle { id, tag: self.tag }
    }

    fn unwrap_handle(&mut self, h: StreamHandle) -> StreamId {
        if h.tag != self.tag {
            self.foreign = true;
        }
        h.id
    }

    /// Declares a source stream (produced outside the diagram).
    pub fn source(&mut self, name: &str) -> StreamHandle {
        let id = self.b.source(name);
        self.wrap(id)
    }

    /// Predicate filter: keeps tuples satisfying `predicate`.
    pub fn filter(&mut self, name: &str, input: StreamHandle, predicate: Expr) -> StreamHandle {
        let input = self.unwrap_handle(input);
        let id = self.b.add(name, LogicalOp::Filter { predicate }, &[input]);
        self.wrap(id)
    }

    /// Per-tuple projection: one expression per output attribute.
    pub fn map(&mut self, name: &str, input: StreamHandle, outputs: Vec<Expr>) -> StreamHandle {
        let input = self.unwrap_handle(input);
        let id = self.b.add(name, LogicalOp::Map { outputs }, &[input]);
        self.wrap(id)
    }

    /// Windowed, grouped aggregate.
    pub fn aggregate(
        &mut self,
        name: &str,
        input: StreamHandle,
        spec: AggregateSpec,
    ) -> StreamHandle {
        let input = self.unwrap_handle(input);
        let id = self.b.add(name, LogicalOp::Aggregate(spec), &[input]);
        self.wrap(id)
    }

    /// Merge of two or more streams (lowered to a serializing SUnion).
    pub fn union(&mut self, name: &str, inputs: &[StreamHandle]) -> StreamHandle {
        let inputs: Vec<StreamId> = inputs.iter().map(|&h| self.unwrap_handle(h)).collect();
        let id = self.b.add(name, LogicalOp::Union, &inputs);
        self.wrap(id)
    }

    /// Windowed equi-join of `left` against `right` (lowered to an SUnion
    /// serializing both inputs followed by an SJoin, §3).
    pub fn join(
        &mut self,
        name: &str,
        left: StreamHandle,
        right: StreamHandle,
        spec: JoinSpec,
    ) -> StreamHandle {
        self.join_many(name, left, &[right], spec)
    }

    /// Windowed equi-join of `left` against the union of `rights` — the
    /// paper's Fig. 12 shape (one stream joined against two others through
    /// a single three-input SUnion).
    pub fn join_many(
        &mut self,
        name: &str,
        left: StreamHandle,
        rights: &[StreamHandle],
        spec: JoinSpec,
    ) -> StreamHandle {
        let mut inputs = vec![self.unwrap_handle(left)];
        inputs.extend(rights.iter().map(|&h| self.unwrap_handle(h)));
        let id = self.b.add(name, LogicalOp::Join(spec), &inputs);
        self.wrap(id)
    }

    /// Identity tap: renames `input` so it can cross a fragment boundary or
    /// reach clients through DPC's machinery without any computation
    /// (lowered to no physical operator — the stream leaves through the
    /// fragment's entry SUnion and an SOutput).
    pub fn relay(&mut self, name: &str, input: StreamHandle) -> StreamHandle {
        let input = self.unwrap_handle(input);
        let id = self.b.add(name, LogicalOp::Passthrough, &[input]);
        self.wrap(id)
    }

    /// Marks a stream as a client-visible output.
    pub fn output(&mut self, stream: StreamHandle) {
        let id = self.unwrap_handle(stream);
        self.b.output(id);
    }

    /// Validates and freezes the diagram.
    pub fn build(self) -> Result<Diagram, DiagramError> {
        if self.foreign {
            return Err(DiagramError::ForeignHandle);
        }
        self.b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Value;

    #[test]
    fn builds_the_same_diagram_as_the_raw_builder() {
        let mut q = QueryBuilder::new();
        let a = q.source("a");
        let b = q.source("b");
        let u = q.union("u", &[a, b]);
        let f = q.filter("f", u, Expr::Const(Value::Bool(true)));
        q.output(f);
        let d = q.build().unwrap();
        assert_eq!(d.ops().len(), 2);
        assert_eq!(d.output_streams(), &[f.id()]);
        assert_eq!(d.stream_name(a.id()), "a");
        assert_eq!(d.op_named("u").unwrap().op.kind_name(), "union");
    }

    #[test]
    fn foreign_handles_are_rejected() {
        let mut q1 = QueryBuilder::new();
        let s1 = q1.source("s");
        let mut q2 = QueryBuilder::new();
        let _s2 = q2.source("s");
        let f = q2.filter("f", s1, Expr::Const(Value::Bool(true)));
        q2.output(f);
        assert!(matches!(q2.build(), Err(DiagramError::ForeignHandle)));
        drop(q1);
    }

    #[test]
    fn relay_and_join_many_lower_to_logical_ops() {
        let mut q = QueryBuilder::new();
        let l = q.source("l");
        let r1 = q.source("r1");
        let r2 = q.source("r2");
        let j = q.join_many(
            "j",
            l,
            &[r1, r2],
            JoinSpec {
                window: borealis_types::Duration::from_millis(50),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: None,
            },
        );
        let t = q.relay("tapped", j);
        q.output(t);
        let d = q.build().unwrap();
        assert_eq!(d.op_named("j").unwrap().inputs.len(), 3);
        assert_eq!(d.op_named("tapped").unwrap().op.kind_name(), "passthrough");
    }
}
