//! DPC physical planning (§3, §6.3).
//!
//! Turns a validated logical [`Diagram`] plus a fragment assignment into the
//! per-fragment *physical* diagrams that nodes execute:
//!
//! * every stream entering a fragment passes through an **input SUnion**
//!   (failure detection, delay management, replay logging — §4.2.3);
//! * every `Union` becomes an **SUnion**, every `Join` becomes an SUnion
//!   followed by an **SJoin** (§3);
//! * every stream leaving a fragment passes through an **SOutput** (§4.4.2);
//! * each SUnion receives its share of the application's incremental latency
//!   budget `X` according to the chosen [`DelayAssignment`] (§6.3).

use crate::graph::{Diagram, DiagramError, LogicalOp};
use crate::spec::{DeploymentSpec, FragmentSpec};
use borealis_ops::{DelayMode, OperatorSpec, SJoinSpec, SUnionConfig};
use borealis_types::{BufferPolicy, Duration, Expr, FragmentId, OpId, StreamId};
use std::collections::HashMap;

/// Whether the planner wraps the diagram in DPC's fault-tolerance
/// machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Protection {
    /// Full DPC: entry SUnions on every external input, SOutputs on every
    /// crossing stream (§3). The default.
    #[default]
    Dpc,
    /// The paper's non-fault-tolerant baseline (§7, Fig. 22(b)): external
    /// inputs bind directly to their consuming operators, `Union` stays a
    /// plain union, and crossing streams leave from the producing operator
    /// with no SOutput. No serialization, no failure handling.
    Baseline,
}

/// How the total incremental latency `X` is divided among SUnions (§6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayAssignment {
    /// `X / max-SUnions-per-path` at each SUnion — the naive division the
    /// paper shows to be suboptimal.
    Uniform,
    /// The full budget (minus a queueing safety margin chosen by the caller,
    /// e.g. 6.5 s of an 8 s budget) at *every* SUnion — the paper's
    /// recommended strategy: on a failure every downstream SUnion suspends
    /// simultaneously, so the initial delays do not add up.
    Full {
        /// The effective per-SUnion delay (X minus the safety margin).
        effective: Duration,
    },
}

/// DPC deployment parameters.
#[derive(Debug, Clone)]
pub struct DpcConfig {
    /// SUnion bucket granularity (§4.2.1).
    pub bucket: Duration,
    /// The application's maximum incremental processing latency `X`
    /// (§2.3.1).
    pub total_delay: Duration,
    /// Fraction of the assigned delay actually used before declaring a
    /// failure; the paper's implementation uses 0.9 "as a precaution"
    /// because operators do not control when the scheduler runs them.
    pub safety: f64,
    /// Delay division strategy.
    pub assignment: DelayAssignment,
    /// Policy during UP_FAILURE (§6.1).
    pub failure_mode: DelayMode,
    /// Policy during STABILIZATION (§6.1).
    pub stabilization_mode: DelayMode,
    /// Minimum wait before releasing a tentative bucket in Process mode
    /// (300 ms in the paper, footnote 5).
    pub tentative_wait: Duration,
    /// DPC machinery on ([`Protection::Dpc`]) or the non-fault-tolerant
    /// baseline ([`Protection::Baseline`]).
    pub protection: Protection,
}

impl Default for DpcConfig {
    fn default() -> Self {
        DpcConfig {
            bucket: Duration::from_millis(100),
            total_delay: Duration::from_secs(3),
            safety: 0.9,
            assignment: DelayAssignment::Uniform,
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            tentative_wait: Duration::from_millis(300),
            protection: Protection::Dpc,
        }
    }
}

/// Where a fragment input stream comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrigin {
    /// Produced by a data source outside the query diagram.
    Source,
    /// Produced by another fragment (its SOutput).
    Fragment(FragmentId),
}

/// A physical operator instance within a fragment.
#[derive(Debug, Clone)]
pub struct PhysOp {
    /// What to instantiate.
    pub spec: OperatorSpec,
    /// Intra-fragment consumers of this op's output: `(op index, port)`.
    pub fanout: Vec<(usize, usize)>,
    /// Set if this op's output leaves the fragment (it is then an SOutput).
    pub external_output: Option<StreamId>,
}

/// An external input binding of a fragment.
#[derive(Debug, Clone)]
pub struct FragmentInput {
    /// The global stream.
    pub stream: StreamId,
    /// Index of the receiving op (always an input SUnion).
    pub target: usize,
    /// Port on that op.
    pub port: usize,
    /// Who produces the stream.
    pub origin: StreamOrigin,
}

/// An output binding of a fragment.
#[derive(Debug, Clone)]
pub struct FragmentOutput {
    /// The global stream.
    pub stream: StreamId,
    /// Index of the SOutput op producing it.
    pub op: usize,
}

/// One physical instance's slice of a key-partitioned fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAssignment {
    /// Key expression partitioning the fragment's input streams.
    pub key: Expr,
    /// Total number of shards (K).
    pub count: u32,
    /// This instance's shard index in `[0, K)`.
    pub index: u32,
}

/// The physical diagram of one fragment.
#[derive(Debug, Clone)]
pub struct FragmentPlan {
    /// Fragment identity.
    pub id: FragmentId,
    /// Operators in topological order.
    pub ops: Vec<PhysOp>,
    /// External input bindings.
    pub inputs: Vec<FragmentInput>,
    /// Output bindings.
    pub outputs: Vec<FragmentOutput>,
    /// Set when this fragment is one shard of a key-partitioned group: the
    /// deployment layer installs the matching partition filter on every
    /// replica, so only this shard's slice of each input stream arrives.
    pub shard: Option<ShardAssignment>,
}

impl FragmentPlan {
    /// Indexes of the SUnion ops.
    pub fn sunion_indexes(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.spec.is_sunion())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Deployment settings of one *logical* fragment in a physical plan: its
/// replication degree, shard fan-out, and the physical fragment indexes
/// belonging to it (one per shard).
#[derive(Debug, Clone)]
pub struct PlanGroup {
    /// Fragment name (from the deployment spec; synthesized for raw
    /// [`Deployment`]s).
    pub name: String,
    /// Replicas per physical fragment (the paper requires two for
    /// availability during stabilization; one is allowed for single-node
    /// studies).
    pub replication: usize,
    /// Shard fan-out (1 = unsharded).
    pub shards: u32,
    /// Physical fragment indexes of this group, in shard order.
    pub fragments: Vec<usize>,
    /// Optional per-fragment CPU cost override (heterogeneous stages).
    pub per_tuple_cost: Option<Duration>,
    /// Optional per-fragment §8.1 output-buffer policy override (the
    /// deployment-wide `NodeTuning` supplies the default).
    pub buffer_policy: Option<BufferPolicy>,
}

/// The full physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// One plan per physical fragment, indexed by [`FragmentId::index`].
    pub fragments: Vec<FragmentPlan>,
    /// Per-logical-fragment deployment settings (replication, sharding).
    pub groups: Vec<PlanGroup>,
    /// Maximum number of SUnions on any source→output path (drives the
    /// Uniform delay assignment).
    pub max_sunion_depth: usize,
    /// The per-SUnion detection delay that was assigned.
    pub per_sunion_delay: Duration,
}

impl PhysicalPlan {
    /// Sets every group's replication degree (convenience for plans built
    /// from a raw [`Deployment`], which carries no replication settings).
    pub fn with_replication(mut self, n: usize) -> PhysicalPlan {
        assert!(n >= 1, "at least one replica per fragment");
        for g in &mut self.groups {
            g.replication = n;
        }
        self
    }

    /// The physical fragment index of shard `shard` of logical fragment
    /// `group` (identity for unsharded plans).
    ///
    /// # Panics
    /// Panics if the group or shard index is out of range.
    pub fn fragment_of(&self, group: usize, shard: usize) -> usize {
        self.groups[group].fragments[shard]
    }
}

/// Assignment of logical operators to fragments.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// `assignment[op.index()] = fragment`.
    pub assignment: Vec<FragmentId>,
    /// Number of fragments.
    pub n_fragments: usize,
}

impl Deployment {
    /// Puts every operator in a single fragment.
    pub fn single(diagram: &Diagram) -> Deployment {
        Deployment {
            assignment: vec![FragmentId(0); diagram.ops().len()],
            n_fragments: 1,
        }
    }

    /// Explicit assignment.
    pub fn explicit(assignment: Vec<FragmentId>) -> Deployment {
        let n = assignment.iter().map(|f| f.index() + 1).max().unwrap_or(0);
        Deployment {
            assignment,
            n_fragments: n,
        }
    }

    fn of(&self, op: OpId) -> FragmentId {
        self.assignment[op.index()]
    }
}

/// Plans the physical per-fragment diagrams.
pub fn plan(
    diagram: &Diagram,
    deployment: &Deployment,
    cfg: &DpcConfig,
) -> Result<PhysicalPlan, DiagramError> {
    if deployment.assignment.len() > diagram.ops().len() {
        // A longer vector used to be silently truncated — every extra entry
        // is a deployment bug (an operator the author thinks exists).
        return Err(DiagramError::AssignmentMismatch {
            expected: diagram.ops().len(),
            actual: deployment.assignment.len(),
        });
    }
    if let Some(op) = diagram.ops().get(deployment.assignment.len()) {
        return Err(DiagramError::Unassigned(op.id));
    }
    let dpc = cfg.protection == Protection::Dpc;
    let mut fragments: Vec<FragmentPlan> = (0..deployment.n_fragments)
        .map(|i| FragmentPlan {
            id: FragmentId(i as u32),
            ops: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            shard: None,
        })
        .collect();

    // Which fragment produces each stream (None = source).
    let mut produced_in: HashMap<StreamId, FragmentId> = HashMap::new();
    for op in diagram.ops() {
        produced_in.insert(op.output, deployment.of(op.id));
    }

    // Streams that must leave their producing fragment: consumed by another
    // fragment or delivered to clients.
    let mut crosses: Vec<StreamId> = Vec::new();
    for op in diagram.ops() {
        for &s in &op.inputs {
            match produced_in.get(&s) {
                Some(&pf) if pf != deployment.of(op.id) => crosses.push(s),
                _ => {}
            }
        }
    }
    crosses.extend(diagram.output_streams().iter().copied());
    crosses.sort();
    crosses.dedup();

    // Build each fragment.
    // Per fragment: map from global stream -> (op index, is origin-tagging needed)
    // local_producer[frag][stream] = op index producing it inside the fragment.
    let mut local_producer: Vec<HashMap<StreamId, usize>> =
        vec![HashMap::new(); deployment.n_fragments];
    // Entry SUnions created per (frag, external stream).
    let mut entry_sunion: Vec<HashMap<StreamId, usize>> =
        vec![HashMap::new(); deployment.n_fragments];

    let base_sunion = |n: usize, is_input: bool| -> SUnionConfig {
        SUnionConfig {
            n_inputs: n,
            bucket: cfg.bucket,
            // Delays are assigned after planning; placeholder here.
            detect_delay: cfg.total_delay,
            delay_budget: cfg.total_delay,
            tentative_wait: cfg.tentative_wait,
            failure_mode: cfg.failure_mode,
            stabilization_mode: cfg.stabilization_mode,
            is_input,
        }
    };

    // How many fragment-local consumers a stream has (to decide whether a
    // multi-input op can absorb its external inputs into its own SUnion).
    let consumers_in_frag = |s: StreamId, f: FragmentId| -> usize {
        diagram
            .ops()
            .iter()
            .filter(|o| deployment.of(o.id) == f)
            .map(|o| o.inputs.iter().filter(|&&i| i == s).count())
            .sum()
    };

    for &opid in diagram.topo_order() {
        let node = &diagram.ops()[opid.index()];
        let f = deployment.of(node.id);
        let fp = &mut fragments[f.index()];
        let external = |s: StreamId| produced_in.get(&s).copied() != Some(f);
        let origin_of = |s: StreamId| {
            produced_in
                .get(&s)
                .map_or(StreamOrigin::Source, |&p| StreamOrigin::Fragment(p))
        };

        // Ensures `s` is available inside the fragment, returning the local
        // producing op index. Creates an entry SUnion for external streams
        // (DPC mode only; baseline callers bind externals directly).
        macro_rules! ensure_local {
            ($s:expr) => {{
                let s: StreamId = $s;
                if let Some(&idx) = local_producer[f.index()].get(&s) {
                    idx
                } else if let Some(&idx) = entry_sunion[f.index()].get(&s) {
                    idx
                } else {
                    let idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(1, true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    fp.inputs.push(FragmentInput {
                        stream: s,
                        target: idx,
                        port: 0,
                        origin: origin_of(s),
                    });
                    entry_sunion[f.index()].insert(s, idx);
                    idx
                }
            }};
        }

        // Two-phase input binding, keeping ops in topological order: the
        // feeder (local producer or DPC entry SUnion) is materialized
        // *before* the consuming op is pushed; baseline external streams
        // bind directly to the consumer once its index is known.
        enum Bind {
            Feeder(usize),
            External(StreamId),
        }
        macro_rules! prebind {
            ($s:expr) => {{
                let s: StreamId = $s;
                if !external(s) || dpc {
                    Bind::Feeder(ensure_local!(s))
                } else {
                    Bind::External(s)
                }
            }};
        }
        macro_rules! apply_bind {
            ($bind:expr, $idx:expr, $port:expr) => {{
                match $bind {
                    Bind::Feeder(feeder) => fp.ops[feeder].fanout.push(($idx, $port)),
                    Bind::External(s) => fp.inputs.push(FragmentInput {
                        stream: s,
                        target: $idx,
                        port: $port,
                        origin: origin_of(s),
                    }),
                }
            }};
        }

        // True when a multi-input op can act as the fragment entry for all
        // of its inputs: every input is external, feeds only this op, and no
        // entry SUnion exists for it yet (DPC mode only).
        let absorb_ok = dpc
            && node.inputs.iter().all(|&s| {
                external(s)
                    && consumers_in_frag(s, f) == 1
                    && !entry_sunion[f.index()].contains_key(&s)
            });

        let out_idx = match &node.op {
            LogicalOp::Union if dpc => {
                let idx = fp.ops.len();
                if absorb_ok {
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(node.inputs.len(), true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &s) in node.inputs.iter().enumerate() {
                        fp.inputs.push(FragmentInput {
                            stream: s,
                            target: idx,
                            port,
                            origin: origin_of(s),
                        });
                    }
                    idx
                } else {
                    let feeders: Vec<usize> =
                        node.inputs.iter().map(|&s| ensure_local!(s)).collect();
                    let idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(node.inputs.len(), false)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &src) in feeders.iter().enumerate() {
                        fp.ops[src].fanout.push((idx, port));
                    }
                    idx
                }
            }
            LogicalOp::Union => {
                // Baseline: a plain, non-serializing union.
                let binds: Vec<Bind> = node.inputs.iter().map(|&s| prebind!(s)).collect();
                let idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec: OperatorSpec::Union {
                        n_inputs: node.inputs.len(),
                    },
                    fanout: Vec::new(),
                    external_output: None,
                });
                for (port, bind) in binds.into_iter().enumerate() {
                    apply_bind!(bind, idx, port);
                }
                idx
            }
            LogicalOp::Join(js) => {
                // An SUnion serializing all inputs (the first is the left
                // side), then the SJoin. Joins keep their serializer even in
                // baseline mode — deterministic matching requires it.
                let n = node.inputs.len();
                let su_idx = if absorb_ok {
                    let su_idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(n, true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &s) in node.inputs.iter().enumerate() {
                        fp.inputs.push(FragmentInput {
                            stream: s,
                            target: su_idx,
                            port,
                            origin: origin_of(s),
                        });
                    }
                    su_idx
                } else {
                    let binds: Vec<Bind> = node.inputs.iter().map(|&s| prebind!(s)).collect();
                    let su_idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(n, false)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, bind) in binds.into_iter().enumerate() {
                        apply_bind!(bind, su_idx, port);
                    }
                    su_idx
                };
                let j_idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec: OperatorSpec::SJoin(SJoinSpec {
                        window: js.window,
                        left_key: js.left_key.clone(),
                        right_key: js.right_key.clone(),
                        max_state: js.max_state,
                        left_split: 1,
                    }),
                    fanout: Vec::new(),
                    external_output: None,
                });
                fp.ops[su_idx].fanout.push((j_idx, 0));
                j_idx
            }
            LogicalOp::Passthrough => {
                // Identity: no physical operator. The input's local producer
                // (an entry SUnion for external streams) stands in for it —
                // a DPC tap is exactly [entry SUnion, SOutput].
                if !dpc {
                    return Err(DiagramError::UnprotectedPassthrough(node.output));
                }
                ensure_local!(node.inputs[0])
            }
            single => {
                let input = node.inputs[0];
                let spec = match single {
                    LogicalOp::Filter { predicate } => OperatorSpec::Filter {
                        predicate: predicate.clone(),
                    },
                    LogicalOp::Map { outputs } => OperatorSpec::Map {
                        outputs: outputs.clone(),
                    },
                    LogicalOp::Aggregate(a) => OperatorSpec::Aggregate(a.clone()),
                    LogicalOp::Union | LogicalOp::Join(_) | LogicalOp::Passthrough => {
                        unreachable!("handled above")
                    }
                };
                let bind = prebind!(input);
                let idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec,
                    fanout: Vec::new(),
                    external_output: None,
                });
                apply_bind!(bind, idx, 0);
                idx
            }
        };
        local_producer[f.index()].insert(node.output, out_idx);

        // A stream crossing the fragment boundary leaves through an SOutput
        // (DPC) or directly from its producing op (baseline).
        if crosses.contains(&node.output) {
            if dpc {
                let so_idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec: OperatorSpec::SOutput,
                    fanout: Vec::new(),
                    external_output: Some(node.output),
                });
                fp.ops[out_idx].fanout.push((so_idx, 0));
                fp.outputs.push(FragmentOutput {
                    stream: node.output,
                    op: so_idx,
                });
            } else {
                fp.ops[out_idx].external_output = Some(node.output);
                fp.outputs.push(FragmentOutput {
                    stream: node.output,
                    op: out_idx,
                });
            }
        }
    }

    // Fragment DAG sanity: a fragment may only consume from strictly earlier
    // fragments or sources (prevents cross-fragment cycles).
    for fp in &fragments {
        for input in &fp.inputs {
            if let StreamOrigin::Fragment(from) = input.origin {
                if from == fp.id {
                    return Err(DiagramError::BackwardsEdge { from, to: fp.id });
                }
            }
        }
    }

    // Delay assignment (§6.3).
    let max_depth = max_sunion_depth(&fragments);
    let per_delay = match cfg.assignment {
        DelayAssignment::Uniform => {
            let d = cfg.total_delay.as_micros() / max_depth.max(1) as u64;
            Duration::from_micros((d as f64 * cfg.safety) as u64)
        }
        DelayAssignment::Full { effective } => effective,
    };
    for fp in &mut fragments {
        for op in &mut fp.ops {
            if let OperatorSpec::SUnion(su) = &mut op.spec {
                su.detect_delay = per_delay;
                su.delay_budget = per_delay;
            }
        }
    }

    // Raw deployments carry no replication/shard settings: one unsharded
    // group per fragment at the paper's default replication of two
    // (override with [`PhysicalPlan::with_replication`], or plan through
    // a [`crate::spec::DeploymentSpec`]).
    let groups = (0..fragments.len())
        .map(|i| PlanGroup {
            name: format!("frag{i}"),
            replication: 2,
            shards: 1,
            fragments: vec![i],
            per_tuple_cost: None,
            buffer_policy: None,
        })
        .collect();

    Ok(PhysicalPlan {
        fragments,
        groups,
        max_sunion_depth: max_depth,
        per_sunion_delay: per_delay,
    })
}

/// Plans a diagram against a declarative [`DeploymentSpec`]: resolves the
/// fragment cut by operator name, runs the DPC physical planner, then
/// applies the **sharding pass** — every fragment with `shards = K > 1` is
/// cloned into K key-partitioned physical instances:
///
/// * each shard's output streams are renamed to per-shard substreams, so
///   the K instances are complementary producers rather than replicas;
/// * every downstream consumer's entry SUnion is widened to merge the K
///   serialized substreams back into one deterministic stream (§4.2's
///   bucket ordering makes the merge identical on every replica and every
///   runtime);
/// * the shard's [`ShardAssignment`] tells the deployment layer to install
///   a [`PartitionSpec`](borealis_types::PartitionSpec) filter on each
///   replica, so senders fan data out by `hash(key) % K` on the wire.
///
/// Sharding composes with DPC replication unchanged: each shard is its own
/// fragment with its own replica set, stagger protocol, and upstream
/// monitoring.
pub fn plan_deployment(
    diagram: &Diagram,
    spec: &DeploymentSpec,
    cfg: &DpcConfig,
) -> Result<PhysicalPlan, DiagramError> {
    let (deployment, metas) = spec.resolve(diagram)?;
    for m in &metas {
        if m.shards > 1 && cfg.protection != Protection::Dpc {
            return Err(DiagramError::ShardsRequireDpc(m.name.clone()));
        }
        if m.buffer_policy == Some(BufferPolicy::DropOldest(0)) {
            return Err(DiagramError::ZeroCapacityBuffer(m.name.clone()));
        }
    }
    let base = plan(diagram, &deployment, cfg)?;
    shard_pass(diagram, base, &metas)
}

/// Expands a logical-fragment plan set into physical fragments, cloning
/// sharded fragments and rewiring streams (see [`plan_deployment`]).
fn shard_pass(
    diagram: &Diagram,
    base: PhysicalPlan,
    metas: &[FragmentSpec],
) -> Result<PhysicalPlan, DiagramError> {
    debug_assert_eq!(base.fragments.len(), metas.len());

    // Physical index ranges, one per logical fragment (one entry per shard).
    let mut phys_of: Vec<Vec<usize>> = Vec::with_capacity(metas.len());
    let mut n_phys = 0usize;
    for m in metas {
        let k = m.shards.max(1) as usize;
        phys_of.push((n_phys..n_phys + k).collect());
        n_phys += k;
    }

    // Substream allocation: each output stream of a sharded fragment
    // becomes K fresh streams, one per shard.
    let mut next_stream = diagram.n_streams() as u32;
    let mut subs: HashMap<StreamId, Vec<StreamId>> = HashMap::new();
    let mut sub_producer: HashMap<StreamId, usize> = HashMap::new();
    for (f, m) in metas.iter().enumerate() {
        if m.shards <= 1 {
            continue;
        }
        for out in &base.fragments[f].outputs {
            if diagram.output_streams().contains(&out.stream) {
                return Err(DiagramError::ShardedOutput(out.stream));
            }
            let ids: Vec<StreamId> = (0..m.shards)
                .map(|k| {
                    let s = StreamId(next_stream);
                    next_stream += 1;
                    sub_producer.insert(s, phys_of[f][k as usize]);
                    s
                })
                .collect();
            subs.insert(out.stream, ids);
        }
    }

    let mut phys: Vec<FragmentPlan> = Vec::with_capacity(n_phys);
    for (f, m) in metas.iter().enumerate() {
        let shards = m.shards.max(1);
        for k in 0..shards {
            let mut fp = base.fragments[f].clone();
            fp.id = FragmentId(phys.len() as u32);
            if shards > 1 {
                fp.shard = Some(ShardAssignment {
                    key: m
                        .shard_key
                        .clone()
                        .expect("FragmentSpec::shards always sets a key"),
                    count: shards,
                    index: k,
                });
                for oi in 0..fp.outputs.len() {
                    let sub = subs[&fp.outputs[oi].stream][k as usize];
                    fp.ops[fp.outputs[oi].op].external_output = Some(sub);
                    fp.outputs[oi].stream = sub;
                }
            }
            expand_inputs(&mut fp, &subs, &sub_producer, &phys_of);
            phys.push(fp);
        }
    }

    let groups = metas
        .iter()
        .enumerate()
        .map(|(f, m)| PlanGroup {
            name: m.name.clone(),
            replication: m.replication,
            shards: m.shards.max(1),
            fragments: phys_of[f].clone(),
            per_tuple_cost: m.per_tuple_cost,
            buffer_policy: m.buffer_policy,
        })
        .collect();

    Ok(PhysicalPlan {
        fragments: phys,
        groups,
        max_sunion_depth: base.max_sunion_depth,
        per_sunion_delay: base.per_sunion_delay,
    })
}

/// Rewrites one physical fragment's external inputs for sharded upstreams:
/// an input on a sharded stream becomes K inputs, one per substream, and
/// the receiving SUnion widens accordingly (an SJoin behind it keeps its
/// left/right split aligned with the widened port set). Origins are
/// remapped from logical to physical fragment ids.
///
/// Only targets that actually consume a sharded stream are renumbered.
/// Those are always DPC entry SUnions, whose ports are contiguous and all
/// externally fed; every other target keeps its original ports — in
/// baseline plans an op may mix locally-fed ports with external bindings,
/// and renumbering its externals from zero would collide with the local
/// feeders.
fn expand_inputs(
    fp: &mut FragmentPlan,
    subs: &HashMap<StreamId, Vec<StreamId>>,
    sub_producer: &HashMap<StreamId, usize>,
    phys_of: &[Vec<usize>],
) {
    let remap_origin = |origin: StreamOrigin| match origin {
        StreamOrigin::Fragment(lf) => {
            StreamOrigin::Fragment(FragmentId(phys_of[lf.index()][0] as u32))
        }
        o => o,
    };
    let sharded_targets: Vec<usize> = fp
        .inputs
        .iter()
        .filter(|i| subs.contains_key(&i.stream))
        .map(|i| i.target)
        .collect();

    let mut old = std::mem::take(&mut fp.inputs);
    old.sort_by_key(|i| (i.target, i.port));
    let mut new_inputs: Vec<FragmentInput> = Vec::with_capacity(old.len());
    // Per-renumbered-target state: (next port, per-original-port expansion
    // counts — used to re-aim SJoin split points).
    let mut per_target: HashMap<usize, (usize, Vec<usize>)> = HashMap::new();
    for inp in old {
        if !sharded_targets.contains(&inp.target) {
            new_inputs.push(FragmentInput {
                origin: remap_origin(inp.origin),
                ..inp
            });
            continue;
        }
        let (next_port, expansion) = per_target.entry(inp.target).or_insert((0, Vec::new()));
        if let Some(sub_ids) = subs.get(&inp.stream) {
            expansion.push(sub_ids.len());
            for sub in sub_ids {
                new_inputs.push(FragmentInput {
                    stream: *sub,
                    target: inp.target,
                    port: *next_port,
                    origin: StreamOrigin::Fragment(FragmentId(sub_producer[sub] as u32)),
                });
                *next_port += 1;
            }
        } else {
            expansion.push(1);
            new_inputs.push(FragmentInput {
                stream: inp.stream,
                target: inp.target,
                port: *next_port,
                origin: remap_origin(inp.origin),
            });
            *next_port += 1;
        }
    }
    fp.inputs = new_inputs;

    // Widen the receiving SUnions and re-aim any SJoin split points.
    for (&target, (n_ports, expansion)) in &per_target {
        let consumers = fp.ops[target].fanout.clone();
        if let OperatorSpec::SUnion(su) = &mut fp.ops[target].spec {
            su.n_inputs = *n_ports;
        }
        for (c, _) in consumers {
            if let OperatorSpec::SJoin(js) = &mut fp.ops[c].spec {
                // The planner always splits after the first logical input;
                // with that input expanded to `expansion[0]` substreams the
                // split moves accordingly.
                let old_split = js.left_split as usize;
                let new_split: usize = expansion.iter().take(old_split).sum();
                js.left_split = new_split as u16;
            }
        }
    }
}

/// Longest source→output path measured in SUnion hops, across fragments.
fn max_sunion_depth(fragments: &[FragmentPlan]) -> usize {
    // Global node = (fragment index, op index). Longest-path DP over the
    // global DAG; depth counts SUnion nodes.
    let mut memo: HashMap<(usize, usize), usize> = HashMap::new();

    fn depth(
        node: (usize, usize),
        fragments: &[FragmentPlan],
        memo: &mut HashMap<(usize, usize), usize>,
    ) -> usize {
        if let Some(&d) = memo.get(&node) {
            return d;
        }
        let (fi, oi) = node;
        let op = &fragments[fi].ops[oi];
        let own = usize::from(op.spec.is_sunion());
        let mut best = 0;
        for &(c, _) in &op.fanout {
            best = best.max(depth((fi, c), fragments, memo));
        }
        if let Some(stream) = op.external_output {
            // Find fragments consuming this stream.
            for (cfi, cfp) in fragments.iter().enumerate() {
                for inp in &cfp.inputs {
                    if inp.stream == stream {
                        best = best.max(depth((cfi, inp.target), fragments, memo));
                    }
                }
            }
        }
        let d = own + best;
        memo.insert(node, d);
        d
    }

    let mut max = 0;
    for (fi, fp) in fragments.iter().enumerate() {
        for inp in &fp.inputs {
            if inp.origin == StreamOrigin::Source {
                max = max.max(depth((fi, inp.target), fragments, &mut memo));
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiagramBuilder, JoinSpec};
    use borealis_types::Expr;

    fn filter() -> LogicalOp {
        LogicalOp::Filter {
            predicate: Expr::Const(borealis_types::Value::Bool(true)),
        }
    }

    /// Union over three sources in one fragment: the SUnion absorbs the
    /// inputs (one SUnion, is_input = true), plus an SOutput.
    #[test]
    fn union_absorbs_external_inputs() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let s3 = b.source("s3");
        let u = b.add("merged", LogicalOp::Union, &[s1, s2, s3]);
        b.output(u);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        assert_eq!(p.fragments.len(), 1);
        let fp = &p.fragments[0];
        assert_eq!(fp.ops.len(), 2, "SUnion + SOutput");
        assert!(
            matches!(&fp.ops[0].spec, OperatorSpec::SUnion(c) if c.n_inputs == 3 && c.is_input)
        );
        assert!(fp.ops[1].spec.is_soutput());
        assert_eq!(fp.inputs.len(), 3);
        assert_eq!(fp.outputs.len(), 1);
        assert_eq!(p.max_sunion_depth, 1);
    }

    /// Single-input op on an external stream gets an entry SUnion.
    #[test]
    fn single_input_gets_entry_sunion() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f = b.add("f", filter(), &[s]);
        b.output(f);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let kinds: Vec<&str> = fp.ops.iter().map(|o| o.spec.kind_name()).collect();
        assert_eq!(kinds, vec!["sunion", "filter", "soutput"]);
        assert!(matches!(&fp.ops[0].spec, OperatorSpec::SUnion(c) if c.is_input));
    }

    /// A two-fragment chain: fragment 1's filter reads fragment 0's output
    /// through its own entry SUnion; uniform assignment splits X.
    #[test]
    fn chain_divides_delay_uniformly() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f0 = b.add("f0", filter(), &[s]);
        let f1 = b.add("f1", filter(), &[f0]);
        b.output(f1);
        let d = b.build().unwrap();
        let dep = Deployment::explicit(vec![FragmentId(0), FragmentId(1)]);
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(4),
            safety: 1.0,
            ..DpcConfig::default()
        };
        let p = plan(&d, &dep, &cfg).unwrap();
        assert_eq!(p.max_sunion_depth, 2);
        assert_eq!(p.per_sunion_delay, Duration::from_secs(2));
        // Fragment 1's input comes from fragment 0.
        let f1p = &p.fragments[1];
        assert_eq!(f1p.inputs.len(), 1);
        assert_eq!(f1p.inputs[0].origin, StreamOrigin::Fragment(FragmentId(0)));
        // Fragment 0's output is the crossing stream.
        assert_eq!(p.fragments[0].outputs.len(), 1);
    }

    /// Full assignment gives every SUnion the same large delay.
    #[test]
    fn full_assignment_sets_effective_everywhere() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f0 = b.add("f0", filter(), &[s]);
        let f1 = b.add("f1", filter(), &[f0]);
        b.output(f1);
        let d = b.build().unwrap();
        let dep = Deployment::explicit(vec![FragmentId(0), FragmentId(1)]);
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(8),
            assignment: DelayAssignment::Full {
                effective: Duration::from_secs_f64(6.5),
            },
            ..DpcConfig::default()
        };
        let p = plan(&d, &dep, &cfg).unwrap();
        for fp in &p.fragments {
            for i in fp.sunion_indexes() {
                if let OperatorSpec::SUnion(su) = &fp.ops[i].spec {
                    assert_eq!(su.detect_delay, Duration::from_secs_f64(6.5));
                }
            }
        }
    }

    /// Join becomes SUnion + SJoin.
    #[test]
    fn join_lowered_to_sunion_sjoin() {
        let mut b = DiagramBuilder::new();
        let l = b.source("l");
        let r = b.source("r");
        let j = b.add(
            "j",
            LogicalOp::Join(JoinSpec {
                window: Duration::from_millis(50),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: Some(100),
            }),
            &[l, r],
        );
        b.output(j);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let kinds: Vec<&str> = p.fragments[0]
            .ops
            .iter()
            .map(|o| o.spec.kind_name())
            .collect();
        assert_eq!(kinds, vec!["sunion", "sjoin", "soutput"]);
    }

    /// A stream consumed by two ops in the same fragment gets one entry
    /// SUnion, fanned out.
    #[test]
    fn shared_external_stream_single_entry() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let a = b.add("a", filter(), &[s]);
        let c = b.add("c", filter(), &[s]);
        b.output(a);
        b.output(c);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let n_sunions = fp.sunion_indexes().len();
        assert_eq!(n_sunions, 1, "one shared entry SUnion");
        assert_eq!(fp.ops[fp.sunion_indexes()[0]].fanout.len(), 2);
    }

    /// Satellite fix: an assignment longer than the diagram's operator list
    /// is a hard error, not silent truncation.
    #[test]
    fn overlong_assignment_rejected() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f = b.add("f", filter(), &[s]);
        b.output(f);
        let d = b.build().unwrap();
        let dep = Deployment::explicit(vec![FragmentId(0), FragmentId(1)]);
        assert!(matches!(
            plan(&d, &dep, &DpcConfig::default()),
            Err(DiagramError::AssignmentMismatch {
                expected: 1,
                actual: 2
            })
        ));
        // A short assignment still reports the first unassigned operator.
        let d2 = {
            let mut b = DiagramBuilder::new();
            let s = b.source("s");
            let f0 = b.add("f0", filter(), &[s]);
            let f1 = b.add("f1", filter(), &[f0]);
            b.output(f1);
            b.build().unwrap()
        };
        assert!(matches!(
            plan(
                &d2,
                &Deployment::explicit(vec![FragmentId(0)]),
                &DpcConfig::default()
            ),
            Err(DiagramError::Unassigned(OpId(1)))
        ));
    }

    /// A passthrough lowers to entry SUnion + SOutput and nothing else —
    /// the §7 serialization-overhead probe.
    #[test]
    fn passthrough_is_sunion_plus_soutput() {
        let mut b = DiagramBuilder::new();
        let s = b.source("in");
        let t = b.add("tapped", LogicalOp::Passthrough, &[s]);
        b.output(t);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let kinds: Vec<&str> = fp.ops.iter().map(|o| o.spec.kind_name()).collect();
        assert_eq!(kinds, vec!["sunion", "soutput"]);
        assert_eq!(fp.outputs.len(), 1);
        assert_eq!(fp.outputs[0].stream, t, "output carries the tap's name");
        assert_eq!(fp.inputs[0].stream, s, "input is the tapped source");
    }

    /// Baseline protection: no entry SUnions, no SOutputs; the output
    /// leaves from the producing operator directly.
    #[test]
    fn baseline_strips_dpc_machinery() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let u = b.add("u", LogicalOp::Union, &[s1, s2]);
        let f = b.add("f", filter(), &[u]);
        b.output(f);
        let d = b.build().unwrap();
        let cfg = DpcConfig {
            protection: Protection::Baseline,
            ..DpcConfig::default()
        };
        let p = plan(&d, &Deployment::single(&d), &cfg).unwrap();
        let fp = &p.fragments[0];
        let kinds: Vec<&str> = fp.ops.iter().map(|o| o.spec.kind_name()).collect();
        assert_eq!(kinds, vec!["union", "filter"]);
        assert_eq!(fp.inputs.len(), 2, "sources bind directly to the union");
        assert_eq!(fp.ops[1].external_output, Some(f));
        // Passthrough has no op to carry its output in baseline mode.
        let mut b = DiagramBuilder::new();
        let s = b.source("in");
        let t = b.add("t", LogicalOp::Passthrough, &[s]);
        b.output(t);
        let d = b.build().unwrap();
        assert!(matches!(
            plan(&d, &Deployment::single(&d), &cfg),
            Err(DiagramError::UnprotectedPassthrough(_))
        ));
    }

    /// Baseline plans survive the (no-op) sharding pass untouched: an op
    /// mixing a locally-fed port with a direct external binding keeps its
    /// original port numbering (regression: expand_inputs used to renumber
    /// every target's external ports from zero, colliding with the local
    /// feeder).
    #[test]
    fn baseline_mixed_ports_survive_shard_pass() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let up = b.add(
            "up",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[s1],
        );
        let loc = b.add(
            "loc",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[s2],
        );
        // Union port 0 fed locally by `loc`, port 1 externally by `up`.
        let u = b.add("u", LogicalOp::Union, &[loc, up]);
        b.output(u);
        let d = b.build().unwrap();
        let spec = DeploymentSpec::new()
            .fragment(crate::spec::FragmentSpec::named("a").op("up"))
            .fragment(crate::spec::FragmentSpec::named("b").ops(["loc", "u"]));
        let cfg = DpcConfig {
            protection: Protection::Baseline,
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &spec, &cfg).unwrap();
        let fb = &p.fragments[1];
        let union_idx = fb
            .ops
            .iter()
            .position(|o| matches!(o.spec, OperatorSpec::Union { .. }))
            .expect("plain union present");
        let loc_idx = fb
            .ops
            .iter()
            .position(|o| o.fanout.contains(&(union_idx, 0)))
            .expect("local feeder wired to port 0");
        assert_ne!(loc_idx, union_idx);
        let ext: Vec<(usize, usize)> = fb
            .inputs
            .iter()
            .filter(|i| i.target == union_idx)
            .map(|i| (i.port, i.stream.index()))
            .collect();
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].0, 1, "external binding keeps port 1");
        assert_eq!(
            fb.inputs
                .iter()
                .find(|i| i.target == union_idx)
                .unwrap()
                .origin,
            StreamOrigin::Fragment(FragmentId(0))
        );
    }

    fn sharded_chain_spec(k: u32) -> (Diagram, DeploymentSpec) {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let u = b.add("ingest", LogicalOp::Union, &[s1, s2]);
        let w = b.add(
            "work",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[u],
        );
        let out = b.add(
            "deliver",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[w],
        );
        b.output(out);
        let d = b.build().unwrap();
        let spec = DeploymentSpec::new()
            .fragment(crate::spec::FragmentSpec::named("ingest").op("ingest"))
            .fragment(
                crate::spec::FragmentSpec::named("work")
                    .op("work")
                    .shards(k, Expr::field(0)),
            )
            .fragment(crate::spec::FragmentSpec::named("deliver").op("deliver"));
        (d, spec)
    }

    /// The sharding pass clones the sharded fragment K ways, renames its
    /// outputs into per-shard substreams, and widens the downstream entry
    /// SUnion to merge them.
    #[test]
    fn shard_pass_clones_and_rewires() {
        let (d, spec) = sharded_chain_spec(3);
        let p = plan_deployment(&d, &spec, &DpcConfig::default()).unwrap();
        assert_eq!(p.fragments.len(), 5, "1 ingest + 3 work shards + 1 deliver");
        assert_eq!(p.groups.len(), 3);
        assert_eq!(p.groups[1].fragments, vec![1, 2, 3]);
        assert_eq!(p.fragment_of(1, 2), 3);

        // Each work shard: same ops, unique output stream, shard filter.
        let mut out_streams = Vec::new();
        for (k, &fi) in p.groups[1].fragments.iter().enumerate() {
            let fp = &p.fragments[fi];
            let sa = fp.shard.as_ref().expect("work shards carry assignments");
            assert_eq!((sa.count, sa.index), (3, k as u32));
            assert_eq!(fp.outputs.len(), 1);
            out_streams.push(fp.outputs[0].stream);
            assert!(
                out_streams[k].index() >= d.n_streams(),
                "substreams are fresh ids"
            );
            // The shard consumes the *original* ingest output; partitioning
            // happens on the wire, not by renaming inputs.
            assert_eq!(fp.inputs.len(), 1);
            assert_eq!(fp.inputs[0].origin, StreamOrigin::Fragment(FragmentId(0)));
        }
        out_streams.sort();
        out_streams.dedup();
        assert_eq!(out_streams.len(), 3, "one substream per shard");

        // The deliver fragment's entry SUnion merges the three substreams.
        let deliver = &p.fragments[4];
        assert!(deliver.shard.is_none());
        assert_eq!(deliver.inputs.len(), 3);
        let target = deliver.inputs[0].target;
        assert!(deliver.inputs.iter().all(|i| i.target == target));
        let ports: Vec<usize> = deliver.inputs.iter().map(|i| i.port).collect();
        assert_eq!(ports, vec![0, 1, 2]);
        assert!(
            matches!(&deliver.ops[target].spec, OperatorSpec::SUnion(c) if c.n_inputs == 3 && c.is_input)
        );
        // Origins point at the individual shard fragments.
        let origins: Vec<StreamOrigin> = deliver.inputs.iter().map(|i| i.origin).collect();
        assert_eq!(
            origins,
            vec![
                StreamOrigin::Fragment(FragmentId(1)),
                StreamOrigin::Fragment(FragmentId(2)),
                StreamOrigin::Fragment(FragmentId(3)),
            ]
        );
    }

    /// shards = 1 is a plain deployment: no renaming, no filters.
    #[test]
    fn single_shard_is_identity() {
        let (d, spec) = sharded_chain_spec(1);
        let p = plan_deployment(&d, &spec, &DpcConfig::default()).unwrap();
        assert_eq!(p.fragments.len(), 3);
        assert!(p.fragments.iter().all(|f| f.shard.is_none()));
        assert_eq!(p.groups[1].shards, 1);
    }

    /// A sharded fragment may not feed clients directly — its substreams
    /// must merge in a downstream fragment first.
    #[test]
    fn sharded_client_output_rejected() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let w = b.add(
            "work",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[s],
        );
        b.output(w);
        let d = b.build().unwrap();
        let spec = DeploymentSpec::new().fragment(
            crate::spec::FragmentSpec::named("work")
                .op("work")
                .shards(2, Expr::field(0)),
        );
        assert!(matches!(
            plan_deployment(&d, &spec, &DpcConfig::default()),
            Err(DiagramError::ShardedOutput(_))
        ));
    }

    /// Per-fragment buffer policies reach the plan's groups (sharded
    /// fragments included); a zero-capacity bound is a planning error.
    #[test]
    fn buffer_policy_flows_to_groups_and_zero_capacity_rejected() {
        let (d, spec) = sharded_chain_spec(2);
        let spec = DeploymentSpec::new()
            .fragment(
                FragmentSpec::named("ingest")
                    .op("ingest")
                    .buffer(BufferPolicy::DropOldest(4_096)),
            )
            .fragment(spec.fragments()[1].clone())
            .fragment(spec.fragments()[2].clone());
        let p = plan_deployment(&d, &spec, &DpcConfig::default()).unwrap();
        assert_eq!(
            p.groups[0].buffer_policy,
            Some(BufferPolicy::DropOldest(4_096))
        );
        assert_eq!(p.groups[1].buffer_policy, None);

        let (d, _) = sharded_chain_spec(1);
        let bad = DeploymentSpec::new().fragment(
            FragmentSpec::named("all")
                .ops(["ingest", "work", "deliver"])
                .buffer(BufferPolicy::DropOldest(0)),
        );
        assert!(matches!(
            plan_deployment(&d, &bad, &DpcConfig::default()),
            Err(DiagramError::ZeroCapacityBuffer(n)) if n == "all"
        ));
    }

    /// Sharding requires the DPC machinery.
    #[test]
    fn sharding_rejected_without_dpc() {
        let (d, spec) = sharded_chain_spec(2);
        let cfg = DpcConfig {
            protection: Protection::Baseline,
            ..DpcConfig::default()
        };
        assert!(matches!(
            plan_deployment(&d, &spec, &cfg),
            Err(DiagramError::ShardsRequireDpc(n)) if n == "work"
        ));
    }

    /// A join whose left input comes from a sharded upstream keeps its
    /// left/right split aligned with the widened SUnion port set.
    #[test]
    fn join_split_follows_shard_expansion() {
        let mut b = DiagramBuilder::new();
        let l = b.source("l");
        let r = b.source("r");
        let lw = b.add(
            "lwork",
            LogicalOp::Map {
                outputs: vec![Expr::field(0)],
            },
            &[l],
        );
        let j = b.add(
            "j",
            LogicalOp::Join(JoinSpec {
                window: Duration::from_millis(50),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: None,
            }),
            &[lw, r],
        );
        b.output(j);
        let d = b.build().unwrap();
        let spec = DeploymentSpec::new()
            .fragment(
                crate::spec::FragmentSpec::named("lwork")
                    .op("lwork")
                    .shards(2, Expr::field(0)),
            )
            .fragment(crate::spec::FragmentSpec::named("join").op("j"));
        let p = plan_deployment(&d, &spec, &DpcConfig::default()).unwrap();
        let join_frag = &p.fragments[2];
        // SUnion over [lwork#0, lwork#1, r] followed by SJoin split at 2.
        assert_eq!(join_frag.inputs.len(), 3);
        let su = join_frag.inputs[0].target;
        assert!(matches!(&join_frag.ops[su].spec, OperatorSpec::SUnion(c) if c.n_inputs == 3));
        let sj = join_frag
            .ops
            .iter()
            .find_map(|o| match &o.spec {
                OperatorSpec::SJoin(js) => Some(js),
                _ => None,
            })
            .expect("sjoin present");
        assert_eq!(sj.left_split, 2, "both left substreams are left-side");
    }

    /// Union with one internal and one external input: external port gets an
    /// entry SUnion, the union itself is a non-input SUnion.
    #[test]
    fn mixed_union_uses_entry_sunions() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let f = b.add("f", filter(), &[s1]);
        let u = b.add("u", LogicalOp::Union, &[f, s2]);
        b.output(u);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let sunions = fp.sunion_indexes();
        // entry for s1, entry for s2, plus the union's serializer.
        assert_eq!(sunions.len(), 3);
        let input_count = sunions
            .iter()
            .filter(|&&i| matches!(&fp.ops[i].spec, OperatorSpec::SUnion(c) if c.is_input))
            .count();
        assert_eq!(input_count, 2);
    }
}
