//! DPC physical planning (§3, §6.3).
//!
//! Turns a validated logical [`Diagram`] plus a fragment assignment into the
//! per-fragment *physical* diagrams that nodes execute:
//!
//! * every stream entering a fragment passes through an **input SUnion**
//!   (failure detection, delay management, replay logging — §4.2.3);
//! * every `Union` becomes an **SUnion**, every `Join` becomes an SUnion
//!   followed by an **SJoin** (§3);
//! * every stream leaving a fragment passes through an **SOutput** (§4.4.2);
//! * each SUnion receives its share of the application's incremental latency
//!   budget `X` according to the chosen [`DelayAssignment`] (§6.3).

use crate::graph::{Diagram, DiagramError, LogicalOp};
use borealis_ops::{DelayMode, OperatorSpec, SJoinSpec, SUnionConfig};
use borealis_types::{Duration, FragmentId, OpId, StreamId};
use std::collections::HashMap;

/// How the total incremental latency `X` is divided among SUnions (§6.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayAssignment {
    /// `X / max-SUnions-per-path` at each SUnion — the naive division the
    /// paper shows to be suboptimal.
    Uniform,
    /// The full budget (minus a queueing safety margin chosen by the caller,
    /// e.g. 6.5 s of an 8 s budget) at *every* SUnion — the paper's
    /// recommended strategy: on a failure every downstream SUnion suspends
    /// simultaneously, so the initial delays do not add up.
    Full {
        /// The effective per-SUnion delay (X minus the safety margin).
        effective: Duration,
    },
}

/// DPC deployment parameters.
#[derive(Debug, Clone)]
pub struct DpcConfig {
    /// SUnion bucket granularity (§4.2.1).
    pub bucket: Duration,
    /// The application's maximum incremental processing latency `X`
    /// (§2.3.1).
    pub total_delay: Duration,
    /// Fraction of the assigned delay actually used before declaring a
    /// failure; the paper's implementation uses 0.9 "as a precaution"
    /// because operators do not control when the scheduler runs them.
    pub safety: f64,
    /// Delay division strategy.
    pub assignment: DelayAssignment,
    /// Policy during UP_FAILURE (§6.1).
    pub failure_mode: DelayMode,
    /// Policy during STABILIZATION (§6.1).
    pub stabilization_mode: DelayMode,
    /// Minimum wait before releasing a tentative bucket in Process mode
    /// (300 ms in the paper, footnote 5).
    pub tentative_wait: Duration,
}

impl Default for DpcConfig {
    fn default() -> Self {
        DpcConfig {
            bucket: Duration::from_millis(100),
            total_delay: Duration::from_secs(3),
            safety: 0.9,
            assignment: DelayAssignment::Uniform,
            failure_mode: DelayMode::Process,
            stabilization_mode: DelayMode::Process,
            tentative_wait: Duration::from_millis(300),
        }
    }
}

/// Where a fragment input stream comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrigin {
    /// Produced by a data source outside the query diagram.
    Source,
    /// Produced by another fragment (its SOutput).
    Fragment(FragmentId),
}

/// A physical operator instance within a fragment.
#[derive(Debug, Clone)]
pub struct PhysOp {
    /// What to instantiate.
    pub spec: OperatorSpec,
    /// Intra-fragment consumers of this op's output: `(op index, port)`.
    pub fanout: Vec<(usize, usize)>,
    /// Set if this op's output leaves the fragment (it is then an SOutput).
    pub external_output: Option<StreamId>,
}

/// An external input binding of a fragment.
#[derive(Debug, Clone)]
pub struct FragmentInput {
    /// The global stream.
    pub stream: StreamId,
    /// Index of the receiving op (always an input SUnion).
    pub target: usize,
    /// Port on that op.
    pub port: usize,
    /// Who produces the stream.
    pub origin: StreamOrigin,
}

/// An output binding of a fragment.
#[derive(Debug, Clone)]
pub struct FragmentOutput {
    /// The global stream.
    pub stream: StreamId,
    /// Index of the SOutput op producing it.
    pub op: usize,
}

/// The physical diagram of one fragment.
#[derive(Debug, Clone)]
pub struct FragmentPlan {
    /// Fragment identity.
    pub id: FragmentId,
    /// Operators in topological order.
    pub ops: Vec<PhysOp>,
    /// External input bindings.
    pub inputs: Vec<FragmentInput>,
    /// Output bindings.
    pub outputs: Vec<FragmentOutput>,
}

impl FragmentPlan {
    /// Indexes of the SUnion ops.
    pub fn sunion_indexes(&self) -> Vec<usize> {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.spec.is_sunion())
            .map(|(i, _)| i)
            .collect()
    }
}

/// The full physical plan.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// One plan per fragment, indexed by [`FragmentId::index`].
    pub fragments: Vec<FragmentPlan>,
    /// Maximum number of SUnions on any source→output path (drives the
    /// Uniform delay assignment).
    pub max_sunion_depth: usize,
    /// The per-SUnion detection delay that was assigned.
    pub per_sunion_delay: Duration,
}

/// Assignment of logical operators to fragments.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// `assignment[op.index()] = fragment`.
    pub assignment: Vec<FragmentId>,
    /// Number of fragments.
    pub n_fragments: usize,
}

impl Deployment {
    /// Puts every operator in a single fragment.
    pub fn single(diagram: &Diagram) -> Deployment {
        Deployment {
            assignment: vec![FragmentId(0); diagram.ops().len()],
            n_fragments: 1,
        }
    }

    /// Explicit assignment.
    pub fn explicit(assignment: Vec<FragmentId>) -> Deployment {
        let n = assignment.iter().map(|f| f.index() + 1).max().unwrap_or(0);
        Deployment {
            assignment,
            n_fragments: n,
        }
    }

    fn of(&self, op: OpId) -> FragmentId {
        self.assignment[op.index()]
    }
}

/// Plans the physical per-fragment diagrams.
pub fn plan(
    diagram: &Diagram,
    deployment: &Deployment,
    cfg: &DpcConfig,
) -> Result<PhysicalPlan, DiagramError> {
    if deployment.assignment.len() != diagram.ops().len() {
        if let Some(op) = diagram.ops().get(deployment.assignment.len()) {
            return Err(DiagramError::Unassigned(op.id));
        }
    }
    let mut fragments: Vec<FragmentPlan> = (0..deployment.n_fragments)
        .map(|i| FragmentPlan {
            id: FragmentId(i as u32),
            ops: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        })
        .collect();

    // Which fragment produces each stream (None = source).
    let mut produced_in: HashMap<StreamId, FragmentId> = HashMap::new();
    for op in diagram.ops() {
        produced_in.insert(op.output, deployment.of(op.id));
    }

    // Streams that must leave their producing fragment: consumed by another
    // fragment or delivered to clients.
    let mut crosses: Vec<StreamId> = Vec::new();
    for op in diagram.ops() {
        for &s in &op.inputs {
            match produced_in.get(&s) {
                Some(&pf) if pf != deployment.of(op.id) => crosses.push(s),
                _ => {}
            }
        }
    }
    crosses.extend(diagram.output_streams().iter().copied());
    crosses.sort();
    crosses.dedup();

    // Build each fragment.
    // Per fragment: map from global stream -> (op index, is origin-tagging needed)
    // local_producer[frag][stream] = op index producing it inside the fragment.
    let mut local_producer: Vec<HashMap<StreamId, usize>> =
        vec![HashMap::new(); deployment.n_fragments];
    // Entry SUnions created per (frag, external stream).
    let mut entry_sunion: Vec<HashMap<StreamId, usize>> =
        vec![HashMap::new(); deployment.n_fragments];

    let base_sunion = |n: usize, is_input: bool| -> SUnionConfig {
        SUnionConfig {
            n_inputs: n,
            bucket: cfg.bucket,
            // Delays are assigned after planning; placeholder here.
            detect_delay: cfg.total_delay,
            delay_budget: cfg.total_delay,
            tentative_wait: cfg.tentative_wait,
            failure_mode: cfg.failure_mode,
            stabilization_mode: cfg.stabilization_mode,
            is_input,
        }
    };

    // How many fragment-local consumers a stream has (to decide whether a
    // multi-input op can absorb its external inputs into its own SUnion).
    let consumers_in_frag = |s: StreamId, f: FragmentId| -> usize {
        diagram
            .ops()
            .iter()
            .filter(|o| deployment.of(o.id) == f)
            .map(|o| o.inputs.iter().filter(|&&i| i == s).count())
            .sum()
    };

    for &opid in diagram.topo_order() {
        let node = &diagram.ops()[opid.index()];
        let f = deployment.of(node.id);
        let fp = &mut fragments[f.index()];
        let external = |s: StreamId| produced_in.get(&s).copied() != Some(f);

        // Ensures `s` is available inside the fragment, returning the local
        // producing op index. Creates an entry SUnion for external streams.
        macro_rules! ensure_local {
            ($s:expr) => {{
                let s: StreamId = $s;
                if let Some(&idx) = local_producer[f.index()].get(&s) {
                    idx
                } else if let Some(&idx) = entry_sunion[f.index()].get(&s) {
                    idx
                } else {
                    let idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(1, true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    fp.inputs.push(FragmentInput {
                        stream: s,
                        target: idx,
                        port: 0,
                        origin: produced_in
                            .get(&s)
                            .map_or(StreamOrigin::Source, |&p| StreamOrigin::Fragment(p)),
                    });
                    entry_sunion[f.index()].insert(s, idx);
                    idx
                }
            }};
        }

        // True when a multi-input op can act as the fragment entry for all
        // of its inputs: every input is external, feeds only this op, and no
        // entry SUnion exists for it yet.
        let absorb_ok = node.inputs.iter().all(|&s| {
            external(s) && consumers_in_frag(s, f) == 1 && !entry_sunion[f.index()].contains_key(&s)
        });

        let out_idx = match &node.op {
            LogicalOp::Union => {
                let idx = fp.ops.len();
                if absorb_ok {
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(node.inputs.len(), true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &s) in node.inputs.iter().enumerate() {
                        fp.inputs.push(FragmentInput {
                            stream: s,
                            target: idx,
                            port,
                            origin: produced_in
                                .get(&s)
                                .map_or(StreamOrigin::Source, |&p| StreamOrigin::Fragment(p)),
                        });
                    }
                    idx
                } else {
                    let feeders: Vec<usize> =
                        node.inputs.iter().map(|&s| ensure_local!(s)).collect();
                    let idx = fp.ops.len();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(node.inputs.len(), false)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &src) in feeders.iter().enumerate() {
                        fp.ops[src].fanout.push((idx, port));
                    }
                    idx
                }
            }
            LogicalOp::Join(js) => {
                // SUnion(2) serializing both inputs, then the SJoin.
                let su_idx = fp.ops.len();
                if absorb_ok {
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(2, true)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &s) in node.inputs.iter().enumerate() {
                        fp.inputs.push(FragmentInput {
                            stream: s,
                            target: su_idx,
                            port,
                            origin: produced_in
                                .get(&s)
                                .map_or(StreamOrigin::Source, |&p| StreamOrigin::Fragment(p)),
                        });
                    }
                } else {
                    let feeders: Vec<usize> =
                        node.inputs.iter().map(|&s| ensure_local!(s)).collect();
                    fp.ops.push(PhysOp {
                        spec: OperatorSpec::SUnion(base_sunion(2, false)),
                        fanout: Vec::new(),
                        external_output: None,
                    });
                    for (port, &src) in feeders.iter().enumerate() {
                        fp.ops[src].fanout.push((su_idx, port));
                    }
                }
                let j_idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec: OperatorSpec::SJoin(SJoinSpec {
                        window: js.window,
                        left_key: js.left_key.clone(),
                        right_key: js.right_key.clone(),
                        max_state: js.max_state,
                        left_split: 1,
                    }),
                    fanout: Vec::new(),
                    external_output: None,
                });
                fp.ops[su_idx].fanout.push((j_idx, 0));
                j_idx
            }
            single => {
                let input = node.inputs[0];
                let feeder = ensure_local!(input);
                let spec = match single {
                    LogicalOp::Filter { predicate } => OperatorSpec::Filter {
                        predicate: predicate.clone(),
                    },
                    LogicalOp::Map { outputs } => OperatorSpec::Map {
                        outputs: outputs.clone(),
                    },
                    LogicalOp::Aggregate(a) => OperatorSpec::Aggregate(a.clone()),
                    LogicalOp::Union | LogicalOp::Join(_) => unreachable!("handled above"),
                };
                let idx = fp.ops.len();
                fp.ops.push(PhysOp {
                    spec,
                    fanout: Vec::new(),
                    external_output: None,
                });
                fp.ops[feeder].fanout.push((idx, 0));
                idx
            }
        };
        local_producer[f.index()].insert(node.output, out_idx);

        // Append an SOutput if this stream crosses the fragment boundary.
        if crosses.contains(&node.output) {
            let so_idx = fp.ops.len();
            fp.ops.push(PhysOp {
                spec: OperatorSpec::SOutput,
                fanout: Vec::new(),
                external_output: Some(node.output),
            });
            fp.ops[out_idx].fanout.push((so_idx, 0));
            fp.outputs.push(FragmentOutput {
                stream: node.output,
                op: so_idx,
            });
        }
    }

    // Fragment DAG sanity: a fragment may only consume from strictly earlier
    // fragments or sources (prevents cross-fragment cycles).
    for fp in &fragments {
        for input in &fp.inputs {
            if let StreamOrigin::Fragment(from) = input.origin {
                if from == fp.id {
                    return Err(DiagramError::BackwardsEdge { from, to: fp.id });
                }
            }
        }
    }

    // Delay assignment (§6.3).
    let max_depth = max_sunion_depth(&fragments);
    let per_delay = match cfg.assignment {
        DelayAssignment::Uniform => {
            let d = cfg.total_delay.as_micros() / max_depth.max(1) as u64;
            Duration::from_micros((d as f64 * cfg.safety) as u64)
        }
        DelayAssignment::Full { effective } => effective,
    };
    for fp in &mut fragments {
        for op in &mut fp.ops {
            if let OperatorSpec::SUnion(su) = &mut op.spec {
                su.detect_delay = per_delay;
                su.delay_budget = per_delay;
            }
        }
    }

    Ok(PhysicalPlan {
        fragments,
        max_sunion_depth: max_depth,
        per_sunion_delay: per_delay,
    })
}

/// Longest source→output path measured in SUnion hops, across fragments.
fn max_sunion_depth(fragments: &[FragmentPlan]) -> usize {
    // Global node = (fragment index, op index). Longest-path DP over the
    // global DAG; depth counts SUnion nodes.
    let mut memo: HashMap<(usize, usize), usize> = HashMap::new();

    fn depth(
        node: (usize, usize),
        fragments: &[FragmentPlan],
        memo: &mut HashMap<(usize, usize), usize>,
    ) -> usize {
        if let Some(&d) = memo.get(&node) {
            return d;
        }
        let (fi, oi) = node;
        let op = &fragments[fi].ops[oi];
        let own = usize::from(op.spec.is_sunion());
        let mut best = 0;
        for &(c, _) in &op.fanout {
            best = best.max(depth((fi, c), fragments, memo));
        }
        if let Some(stream) = op.external_output {
            // Find fragments consuming this stream.
            for (cfi, cfp) in fragments.iter().enumerate() {
                for inp in &cfp.inputs {
                    if inp.stream == stream {
                        best = best.max(depth((cfi, inp.target), fragments, memo));
                    }
                }
            }
        }
        let d = own + best;
        memo.insert(node, d);
        d
    }

    let mut max = 0;
    for (fi, fp) in fragments.iter().enumerate() {
        for inp in &fp.inputs {
            if inp.origin == StreamOrigin::Source {
                max = max.max(depth((fi, inp.target), fragments, &mut memo));
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DiagramBuilder, JoinSpec};
    use borealis_types::Expr;

    fn filter() -> LogicalOp {
        LogicalOp::Filter {
            predicate: Expr::Const(borealis_types::Value::Bool(true)),
        }
    }

    /// Union over three sources in one fragment: the SUnion absorbs the
    /// inputs (one SUnion, is_input = true), plus an SOutput.
    #[test]
    fn union_absorbs_external_inputs() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let s3 = b.source("s3");
        let u = b.add("merged", LogicalOp::Union, &[s1, s2, s3]);
        b.output(u);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        assert_eq!(p.fragments.len(), 1);
        let fp = &p.fragments[0];
        assert_eq!(fp.ops.len(), 2, "SUnion + SOutput");
        assert!(
            matches!(&fp.ops[0].spec, OperatorSpec::SUnion(c) if c.n_inputs == 3 && c.is_input)
        );
        assert!(fp.ops[1].spec.is_soutput());
        assert_eq!(fp.inputs.len(), 3);
        assert_eq!(fp.outputs.len(), 1);
        assert_eq!(p.max_sunion_depth, 1);
    }

    /// Single-input op on an external stream gets an entry SUnion.
    #[test]
    fn single_input_gets_entry_sunion() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f = b.add("f", filter(), &[s]);
        b.output(f);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let kinds: Vec<&str> = fp.ops.iter().map(|o| o.spec.kind_name()).collect();
        assert_eq!(kinds, vec!["sunion", "filter", "soutput"]);
        assert!(matches!(&fp.ops[0].spec, OperatorSpec::SUnion(c) if c.is_input));
    }

    /// A two-fragment chain: fragment 1's filter reads fragment 0's output
    /// through its own entry SUnion; uniform assignment splits X.
    #[test]
    fn chain_divides_delay_uniformly() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f0 = b.add("f0", filter(), &[s]);
        let f1 = b.add("f1", filter(), &[f0]);
        b.output(f1);
        let d = b.build().unwrap();
        let dep = Deployment::explicit(vec![FragmentId(0), FragmentId(1)]);
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(4),
            safety: 1.0,
            ..DpcConfig::default()
        };
        let p = plan(&d, &dep, &cfg).unwrap();
        assert_eq!(p.max_sunion_depth, 2);
        assert_eq!(p.per_sunion_delay, Duration::from_secs(2));
        // Fragment 1's input comes from fragment 0.
        let f1p = &p.fragments[1];
        assert_eq!(f1p.inputs.len(), 1);
        assert_eq!(f1p.inputs[0].origin, StreamOrigin::Fragment(FragmentId(0)));
        // Fragment 0's output is the crossing stream.
        assert_eq!(p.fragments[0].outputs.len(), 1);
    }

    /// Full assignment gives every SUnion the same large delay.
    #[test]
    fn full_assignment_sets_effective_everywhere() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let f0 = b.add("f0", filter(), &[s]);
        let f1 = b.add("f1", filter(), &[f0]);
        b.output(f1);
        let d = b.build().unwrap();
        let dep = Deployment::explicit(vec![FragmentId(0), FragmentId(1)]);
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(8),
            assignment: DelayAssignment::Full {
                effective: Duration::from_secs_f64(6.5),
            },
            ..DpcConfig::default()
        };
        let p = plan(&d, &dep, &cfg).unwrap();
        for fp in &p.fragments {
            for i in fp.sunion_indexes() {
                if let OperatorSpec::SUnion(su) = &fp.ops[i].spec {
                    assert_eq!(su.detect_delay, Duration::from_secs_f64(6.5));
                }
            }
        }
    }

    /// Join becomes SUnion + SJoin.
    #[test]
    fn join_lowered_to_sunion_sjoin() {
        let mut b = DiagramBuilder::new();
        let l = b.source("l");
        let r = b.source("r");
        let j = b.add(
            "j",
            LogicalOp::Join(JoinSpec {
                window: Duration::from_millis(50),
                left_key: Expr::field(0),
                right_key: Expr::field(0),
                max_state: Some(100),
            }),
            &[l, r],
        );
        b.output(j);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let kinds: Vec<&str> = p.fragments[0]
            .ops
            .iter()
            .map(|o| o.spec.kind_name())
            .collect();
        assert_eq!(kinds, vec!["sunion", "sjoin", "soutput"]);
    }

    /// A stream consumed by two ops in the same fragment gets one entry
    /// SUnion, fanned out.
    #[test]
    fn shared_external_stream_single_entry() {
        let mut b = DiagramBuilder::new();
        let s = b.source("s");
        let a = b.add("a", filter(), &[s]);
        let c = b.add("c", filter(), &[s]);
        b.output(a);
        b.output(c);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let n_sunions = fp.sunion_indexes().len();
        assert_eq!(n_sunions, 1, "one shared entry SUnion");
        assert_eq!(fp.ops[fp.sunion_indexes()[0]].fanout.len(), 2);
    }

    /// Union with one internal and one external input: external port gets an
    /// entry SUnion, the union itself is a non-input SUnion.
    #[test]
    fn mixed_union_uses_entry_sunions() {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let f = b.add("f", filter(), &[s1]);
        let u = b.add("u", LogicalOp::Union, &[f, s2]);
        b.output(u);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let fp = &p.fragments[0];
        let sunions = fp.sunion_indexes();
        // entry for s1, entry for s2, plus the union's serializer.
        assert_eq!(sunions.len(), 3);
        let input_count = sunions
            .iter()
            .filter(|&&i| matches!(&fp.ops[i].spec, OperatorSpec::SUnion(c) if c.is_input))
            .count();
        assert_eq!(input_count, 2);
    }
}
