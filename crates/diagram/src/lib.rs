//! # borealis-diagram
//!
//! Logical query diagrams (loop-free operator DAGs, §2.1 of the paper),
//! validation, deployment onto fragments, and the DPC physical planner that
//! inserts SUnion / SJoin / SOutput operators and assigns delay budgets
//! (§3, §6.3).

#![warn(missing_docs)]

pub mod graph;
pub mod plan;

pub use graph::{Diagram, DiagramBuilder, DiagramError, JoinSpec, LogicalOp, OpNode};
pub use plan::{
    plan, DelayAssignment, Deployment, DpcConfig, FragmentInput, FragmentOutput, FragmentPlan,
    PhysOp, PhysicalPlan, StreamOrigin,
};
