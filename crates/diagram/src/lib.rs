//! # borealis-diagram
//!
//! Logical query diagrams (loop-free operator DAGs, §2.1 of the paper),
//! the fluent [`QueryBuilder`] construction API, declarative
//! [`DeploymentSpec`]s (fragment cut by operator name, per-fragment
//! replication, key-partitioned sharding), and the DPC physical planner
//! that inserts SUnion / SJoin / SOutput operators, assigns delay budgets
//! (§3, §6.3), and fans sharded fragments out into key-partitioned
//! physical instances.

#![warn(missing_docs)]

pub mod graph;
pub mod plan;
pub mod query;
pub mod spec;

pub use graph::{Diagram, DiagramBuilder, DiagramError, JoinSpec, LogicalOp, OpNode};
pub use plan::{
    plan, plan_deployment, DelayAssignment, Deployment, DpcConfig, FragmentInput, FragmentOutput,
    FragmentPlan, PhysOp, PhysicalPlan, PlanGroup, Protection, ShardAssignment, StreamOrigin,
};
pub use query::{QueryBuilder, StreamHandle};
pub use spec::{DeploymentSpec, FragmentSpec};
