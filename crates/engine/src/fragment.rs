//! The per-node fragment executor.
//!
//! A [`Fragment`] is one node's slice of the query diagram: a topologically
//! ordered set of operators with intra-node wiring, external input bindings,
//! and SOutput-guarded output streams. It implements the node-local half of
//! DPC:
//!
//! * **Checkpoint before tentative** (§4.4.1): the first tentative tuple to
//!   enter the fragment — or the first SUnion about to release tentative
//!   data — triggers a whole-fragment checkpoint *before* the tuple is
//!   processed, and switches the input SUnions' replay logs on.
//! * **Taint tracking**: once an operator has processed tentative data its
//!   state may have diverged, so all its subsequent data outputs are
//!   relabelled tentative until reconciliation (the paper's observation
//!   that "the state of replicas diverges as they process different
//!   inputs").
//! * **Checkpoint/redo reconciliation** (§4.4): restore every operator from
//!   the checkpoint (except SOutput, which keeps its duplicate-suppression
//!   memory), replay the input SUnions' logs in original arrival order, and
//!   emit REC_DONE markers that propagate to the outputs.
//!
//! Execution is **batch-wise**: external input arrives as shared
//! [`TupleBatch`] views, operators run their
//! [`Operator::process_batch`](borealis_ops::Operator::process_batch) path,
//! and intra-fragment routing and the produced [`Batch::outputs`] move
//! reference-counted views — a pass-through operator chain forwards one
//! allocation end to end. Only the failure path (divergence relabelling)
//! copies tuples.

use borealis_diagram::FragmentPlan;
use borealis_ops::sunion::Phase;
use borealis_ops::{BatchEmitter, OpSnapshot, Operator, SnapshotCodec};
use borealis_types::wire::{self, Reader, WireError};
use borealis_types::{
    BatchView, ControlSignal, Duration, StreamId, Time, Tuple, TupleBatch, TupleKind,
};
use std::collections::VecDeque;

/// Everything a fragment produced while handling one call: output-stream
/// batches, control signals for the Consistency Manager, and the number of
/// data tuples processed (the node's CPU-cost accounting).
#[derive(Debug, Default)]
pub struct Batch {
    /// Batches leaving the node, per output stream, in emission order.
    /// Cloning an entry is O(1): the views share the operator's allocation.
    pub outputs: Vec<(StreamId, TupleBatch)>,
    /// Control signals raised by SUnion/SOutput operators.
    pub signals: Vec<ControlSignal>,
    /// Data tuples processed by operators during this call.
    pub work: u64,
}

impl Batch {
    /// Appends another result batch (outputs, signals, work accounting).
    pub fn merge(&mut self, mut other: Batch) {
        self.outputs.append(&mut other.outputs);
        self.signals.append(&mut other.signals);
        self.work += other.work;
    }

    /// Flattens the emitted batches into owned `(stream, tuple)` pairs —
    /// a copying convenience for tests and diagnostics; the runtime data
    /// path consumes [`Batch::outputs`] directly.
    pub fn tuples(&self) -> Vec<(StreamId, Tuple)> {
        self.outputs
            .iter()
            .flat_map(|(s, b)| b.as_slice().iter().map(move |t| (*s, t.clone())))
            .collect()
    }
}

/// A running instance of one fragment's physical diagram.
pub struct Fragment {
    ops: Vec<Box<dyn Operator>>,
    fanout: Vec<Vec<(usize, usize)>>,
    external_output: Vec<Option<StreamId>>,
    /// `(stream, op, port)` bindings for external inputs.
    input_bindings: Vec<(StreamId, usize, usize)>,
    /// Indexes of input SUnions (replay-log holders).
    input_sunions: Vec<usize>,
    /// Per-op input queues of shared batch views.
    queues: Vec<VecDeque<(usize, TupleBatch)>>,
    /// Per-op divergence flags.
    op_tainted: Vec<bool>,
    /// Fragment-level: checkpoint taken, tentative processing under way.
    tainted: bool,
    checkpoint: Option<Vec<OpSnapshot>>,
    /// Cumulative data tuples processed (all time).
    total_work: u64,
}

impl Fragment {
    /// Instantiates a fragment from its physical plan.
    pub fn from_plan(plan: &FragmentPlan) -> Fragment {
        let ops: Vec<Box<dyn Operator>> = plan.ops.iter().map(|o| o.spec.instantiate()).collect();
        let n = ops.len();
        let mut f = Fragment {
            ops,
            fanout: plan.ops.iter().map(|o| o.fanout.clone()).collect(),
            external_output: plan.ops.iter().map(|o| o.external_output).collect(),
            input_bindings: plan
                .inputs
                .iter()
                .map(|i| (i.stream, i.target, i.port))
                .collect(),
            input_sunions: Vec::new(),
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            op_tainted: vec![false; n],
            tainted: false,
            checkpoint: None,
            total_work: 0,
        };
        f.input_sunions = (0..n)
            .filter(|&i| f.ops[i].as_sunion().is_some_and(|s| s.config().is_input))
            .collect();
        f
    }

    /// External input streams this fragment consumes.
    pub fn input_streams(&self) -> Vec<StreamId> {
        let mut v: Vec<StreamId> = self.input_bindings.iter().map(|(s, _, _)| *s).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Output streams this fragment produces.
    pub fn output_streams(&self) -> Vec<StreamId> {
        self.external_output.iter().flatten().copied().collect()
    }

    /// True once a failure checkpoint has been taken and tentative data has
    /// entered the fragment (the node is in UP_FAILURE or awaiting
    /// reconciliation).
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }

    /// Total data tuples processed since construction.
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// True when reconciliation is both needed and possible: a checkpoint
    /// exists and every input SUnion reports its streams corrected (§4.4).
    pub fn can_reconcile(&self) -> bool {
        self.tainted
            && self.input_sunions.iter().all(|&i| {
                self.ops[i]
                    .as_sunion()
                    .expect("input_sunions holds SUnions")
                    .corrected_now()
            })
    }

    /// Earliest operator deadline (SUnion bucket releases).
    pub fn next_deadline(&self) -> Option<Time> {
        self.ops.iter().filter_map(|o| o.next_deadline()).min()
    }

    /// Total tuples buffered in replay logs, for buffer accounting (§8.1).
    pub fn replay_buffered(&self) -> usize {
        self.input_sunions
            .iter()
            .map(|&i| self.ops[i].as_sunion().expect("sunion").replay_log_len())
            .sum()
    }

    /// Delivers one external tuple to the fragment (convenience wrapper
    /// over the batch path).
    pub fn push(&mut self, stream: StreamId, tuple: &Tuple, now: Time) -> Batch {
        self.push_batch(stream, &TupleBatch::single(tuple.clone()), now)
    }

    /// Delivers a slice of external tuples (all on one stream), sealing
    /// them into one shared batch first.
    pub fn push_many(&mut self, stream: StreamId, tuples: &[Tuple], now: Time) -> Batch {
        self.push_batch(stream, &TupleBatch::from_vec(tuples.to_vec()), now)
    }

    /// Delivers a shared batch of external tuples (all on one stream) —
    /// the zero-copy data-plane entry point: the batch is enqueued by
    /// view, never copied.
    ///
    /// Checkpoint-before-tentative (§4.4.1): if the batch carries the first
    /// tentative tuple to reach a consistent fragment, the stable prefix is
    /// processed first, the whole-fragment checkpoint is taken, and only
    /// then does the tentative suffix enter — identical semantics to
    /// tuple-at-a-time delivery.
    pub fn push_batch(&mut self, stream: StreamId, tuples: &TupleBatch, now: Time) -> Batch {
        let mut batch = Batch::default();
        self.push_contiguous(stream, tuples, now, &mut batch);
        batch
    }

    /// Delivers a selection view of external tuples — the partitioned
    /// intake: a sharded replica's run list is consumed run by run, each
    /// run a zero-copy slice of the producer's batch, with no
    /// re-materialization of the selection. Semantics (including the
    /// checkpoint-before-tentative split) are identical to delivering the
    /// selected tuples one contiguous batch at a time.
    pub fn push_view(&mut self, stream: StreamId, view: &BatchView, now: Time) -> Batch {
        let mut batch = Batch::default();
        for run in view.run_batches() {
            self.push_contiguous(stream, &run, now, &mut batch);
        }
        batch
    }

    fn push_contiguous(
        &mut self,
        stream: StreamId,
        tuples: &TupleBatch,
        now: Time,
        batch: &mut Batch,
    ) {
        if !self.tainted {
            if let Some(k) = tuples.first_tentative() {
                if k > 0 {
                    let prefix = tuples.slice(0..k);
                    self.enqueue_external(stream, &prefix);
                    self.drain(now, batch);
                }
                self.take_checkpoint();
                let suffix = tuples.slice(k..tuples.len());
                self.enqueue_external(stream, &suffix);
                self.drain(now, batch);
                return;
            }
        }
        self.enqueue_external(stream, tuples);
        self.drain(now, batch);
    }

    /// Queues one external batch view on every bound operator port.
    fn enqueue_external(&mut self, stream: StreamId, tuples: &TupleBatch) {
        if tuples.is_empty() {
            return;
        }
        for bi in 0..self.input_bindings.len() {
            let (s, op, port) = self.input_bindings[bi];
            if s == stream {
                self.queues[op].push_back((port, tuples.clone()));
            }
        }
    }

    /// Advances virtual time: fires SUnion deadlines, taking the failure
    /// checkpoint first if a release is pending.
    pub fn tick(&mut self, now: Time) -> Batch {
        let mut batch = Batch::default();
        if !self.tainted && self.ops.iter().any(|o| o.wants_tentative(now)) {
            self.take_checkpoint();
        }
        let permitted = self.tainted;
        for i in 0..self.ops.len() {
            let mut em = BatchEmitter::new();
            self.ops[i].tick(now, permitted, &mut em);
            if !em.is_empty() {
                self.route(i, em, &mut batch);
            }
        }
        self.drain(now, &mut batch);
        batch
    }

    /// Checkpoint/redo reconciliation (§4.4): restore, replay, stabilize.
    ///
    /// # Panics
    /// Panics if called without a prior checkpoint — the node state machine
    /// only enters STABILIZATION from UP_FAILURE.
    pub fn reconcile(&mut self, _now: Time) -> Batch {
        let snapshot = self
            .checkpoint
            .take()
            .expect("reconcile requires a failure checkpoint");
        // 1. Take the replay logs (this also stops recording). Entries are
        //    shared batch ranges — replay moves views, never tuple copies.
        let mut log: Vec<(Time, usize, usize, TupleBatch)> = Vec::new();
        for k in 0..self.input_sunions.len() {
            let i = self.input_sunions[k];
            let entries = self.ops[i]
                .as_sunion_mut()
                .expect("input_sunions holds SUnions")
                .take_replay_log();
            log.extend(
                entries
                    .into_iter()
                    .map(|(t, port, chunk)| (t, i, port, chunk)),
            );
        }
        // Original arrival order across all inputs (stable by op index;
        // tuples within one recorded range already share arrival metadata).
        log.sort_by_key(|(t, i, port, _)| (*t, *i, *port));

        // 2. Restore operators; SOutput keeps its memory and enters
        //    duplicate-suppression mode instead.
        for (i, snap) in snapshot.iter().enumerate() {
            if self.ops[i].restore_on_reconcile() {
                self.ops[i].restore(snap);
            } else if let Some(so) = self.ops[i].as_soutput_mut() {
                so.begin_stabilization();
            }
            self.op_tainted[i] = false;
            self.queues[i].clear();
        }
        self.tainted = false;

        // 3. Replay in arrival order. A tentative entry (an uncorrected
        //    newer failure) re-triggers the checkpoint machinery exactly as
        //    live input would: the stable prefix of its range replays under
        //    the clean state, then the fragment checkpoints, then the rest
        //    follows — identical semantics to tuple-at-a-time replay.
        let mut batch = Batch::default();
        for (arrival, op, port, chunk) in log {
            let mut rest = chunk;
            if !self.tainted {
                if let Some(k) = rest.first_tentative() {
                    if k > 0 {
                        let prefix = rest.slice(0..k);
                        self.queues[op].push_back((port, prefix));
                        self.drain(arrival, &mut batch);
                    }
                    self.take_checkpoint();
                    rest = rest.slice(k..rest.len());
                }
            }
            if !rest.is_empty() {
                self.queues[op].push_back((port, rest));
                self.drain(arrival, &mut batch);
            }
        }

        batch
    }

    /// Ends a reconciliation once the node has caught up with normal
    /// execution (§4.4.2): REC_DONE flows from every input SUnion to the
    /// outputs, where SOutput rolls back any remaining tentative suffix and
    /// signals the Consistency Manager. The node calls this when its CPU
    /// queue drains — the paper's "catches up with current execution".
    pub fn finish_reconciliation(&mut self, now: Time) -> Batch {
        let mut batch = Batch::default();
        for k in 0..self.input_sunions.len() {
            let i = self.input_sunions[k];
            let mut em = BatchEmitter::new();
            self.ops[i]
                .as_sunion_mut()
                .expect("input_sunions holds SUnions")
                .emit_rec_done(now, &mut em);
            if !em.is_empty() {
                self.route(i, em, &mut batch);
            }
        }
        self.drain(now, &mut batch);
        batch
    }

    /// Surfaces a transport-level credit stall on one of this fragment's
    /// input streams (reported by the node's Consistency Manager from
    /// `RuntimeCtx::inbound_stall`): forwarded to the stream's input
    /// SUnions, which treat a stall outlasting their detection delay as an
    /// upstream failure. The failure checkpoint is taken *before* the
    /// declaration, exactly as for a deadline-triggered tentative release
    /// (§4.4.1), so the stall era is recorded for replay and later
    /// reconciled.
    pub fn note_input_stall(
        &mut self,
        stream: StreamId,
        stalled_for: Duration,
        now: Time,
    ) -> Batch {
        let mut targets: Vec<usize> = self
            .input_bindings
            .iter()
            .filter(|(s, _, _)| *s == stream)
            .map(|(_, op, _)| *op)
            .filter(|op| self.input_sunions.contains(op))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let mut batch = Batch::default();
        if targets.is_empty() {
            return batch;
        }
        let would_declare = targets.iter().any(|&i| {
            let su = self.ops[i]
                .as_sunion()
                .expect("input_sunions holds SUnions");
            su.phase() == Phase::Stable && stalled_for >= su.config().detect_delay
        });
        if would_declare && !self.tainted {
            self.take_checkpoint();
        }
        for i in targets {
            let mut em = BatchEmitter::new();
            self.ops[i]
                .as_sunion_mut()
                .expect("input_sunions holds SUnions")
                .note_input_stall(stalled_for, &mut em);
            if !em.is_empty() {
                self.route(i, em, &mut batch);
            }
        }
        self.drain(now, &mut batch);
        batch
    }

    /// Immediate checkpoint (exposed for crash-recovery tooling and tests;
    /// the fragment takes its own checkpoints during normal operation).
    ///
    /// With copy-on-write snapshots this is O(#operators) reference-count
    /// bumps regardless of how much state the operators hold — cheap enough
    /// to run at the failure-detection instant (§4.4.1). Operators pay the
    /// divergence copy lazily on their next mutation instead.
    pub fn take_checkpoint(&mut self) {
        let snaps: Vec<OpSnapshot> = self.ops.iter().map(|o| o.checkpoint()).collect();
        self.checkpoint = Some(snaps);
        self.tainted = true;
        for k in 0..self.input_sunions.len() {
            let i = self.input_sunions[k];
            self.ops[i]
                .as_sunion_mut()
                .expect("input_sunions holds SUnions")
                .set_recording(true);
        }
    }

    /// Routes one operator's emitted batches: relabels outputs of diverged
    /// operators, feeds intra-fragment consumers, and collects output-stream
    /// batches and control signals. On the healthy path every destination
    /// receives a shared view (reference-count bump); only a diverged
    /// operator's stable emissions are copied (to relabel them tentative).
    fn route(&mut self, from: usize, mut em: BatchEmitter, batch: &mut Batch) {
        let (chunks, signals) = em.take();
        batch.signals.extend(signals);
        let exempt = self.ops[from].as_soutput().is_some();
        for chunk in chunks {
            let chunk = if self.op_tainted[from]
                && !exempt
                && chunk
                    .as_slice()
                    .iter()
                    .any(|t| t.kind == TupleKind::Insertion)
            {
                // Divergence relabel: a diverged operator cannot vouch for
                // stability (SOutput is exempt — it is the stabilizer).
                TupleBatch::from_vec(
                    chunk
                        .as_slice()
                        .iter()
                        .map(|t| {
                            if t.kind == TupleKind::Insertion {
                                t.as_tentative()
                            } else {
                                t.clone()
                            }
                        })
                        .collect(),
                )
            } else {
                chunk
            };
            if let Some(stream) = self.external_output[from] {
                batch.outputs.push((stream, chunk.clone()));
            }
            for &(op, port) in &self.fanout[from] {
                self.queues[op].push_back((port, chunk.clone()));
            }
        }
    }

    /// Runs one operator over one queued batch view.
    fn exec(&mut self, i: usize, port: usize, chunk: &TupleBatch, now: Time, batch: &mut Batch) {
        let mut em = BatchEmitter::new();
        self.ops[i].process_batch(port, chunk, now, &mut em);
        self.route(i, em, batch);
    }

    /// Drains all queues in topological order until quiescent.
    fn drain(&mut self, now: Time, batch: &mut Batch) {
        loop {
            let mut progressed = false;
            for i in 0..self.ops.len() {
                while let Some((port, chunk)) = self.queues[i].pop_front() {
                    progressed = true;
                    let work = chunk.data_count();
                    self.total_work += work;
                    batch.work += work;
                    // Divergence split: tuples ahead of the batch's first
                    // tentative one are processed (and routed) with the
                    // operator still clean, exactly as tuple-at-a-time
                    // execution would.
                    let mut rest = chunk;
                    loop {
                        if !self.op_tainted[i] {
                            if let Some(k) = rest.first_tentative() {
                                if k > 0 {
                                    let prefix = rest.slice(0..k);
                                    self.exec(i, port, &prefix, now, batch);
                                }
                                self.op_tainted[i] = true;
                                rest = rest.slice(k..rest.len());
                                continue;
                            }
                        }
                        if !rest.is_empty() {
                            self.exec(i, port, &rest, now, batch);
                        }
                        break;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Captures the fragment for the *durable* store: `(codec, snapshot)`
    /// pairs, one per operator, in operator order. The capture itself is
    /// O(#operators) reference-count bumps — serialization happens later
    /// (possibly on a background flusher thread) via
    /// [`encode_durable_capture`].
    ///
    /// Returns `None` while the fragment is tainted: a durable checkpoint
    /// must describe a stable-era state (tentative divergence is repaired by
    /// live reconciliation, never persisted), and taking it only when clean
    /// also guarantees the SUnion replay logs — which the durable image
    /// deliberately omits — are empty.
    pub fn capture_durable(&self) -> Option<Vec<(SnapshotCodec, OpSnapshot)>> {
        if self.tainted {
            return None;
        }
        Some(
            self.ops
                .iter()
                .map(|o| (o.snapshot_codec(), o.checkpoint()))
                .collect(),
        )
    }

    /// Restores every operator from bytes produced by
    /// [`encode_durable_capture`], resetting queues, taint flags, and the
    /// reconciliation checkpoint — the fragment comes back exactly as the
    /// stable-era capture left it. Corrupt or mismatched bytes (wrong
    /// operator count, trailing data) come back as a typed [`WireError`].
    pub fn restore_durable(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        let mut r = Reader::new(bytes);
        let n = r.u32()? as usize;
        if n != self.ops.len() {
            return Err(WireError::BadLength(n));
        }
        // Decode everything before mutating any operator: a torn payload
        // must not leave the fragment half-restored.
        let mut snaps = Vec::with_capacity(n);
        for i in 0..n {
            let len = r.u32()? as usize;
            let op_bytes = r.bytes(len)?;
            let mut or = Reader::new(op_bytes);
            let snap = (self.ops[i].snapshot_codec().decode)(&mut or)?;
            or.finish()?;
            snaps.push(snap);
        }
        r.finish()?;
        for (i, snap) in snaps.iter().enumerate() {
            self.ops[i].restore(snap);
            self.op_tainted[i] = false;
            self.queues[i].clear();
        }
        self.tainted = false;
        self.checkpoint = None;
        for k in 0..self.input_sunions.len() {
            let i = self.input_sunions[k];
            self.ops[i]
                .as_sunion_mut()
                .expect("input_sunions holds SUnions")
                .set_recording(false);
        }
        Ok(())
    }

    /// Per-output-stream health (§8.2 fine-grained failure advertisement):
    /// `true` means the stream currently ends in an uncorrected tentative
    /// suffix.
    pub fn output_health(&self) -> Vec<(StreamId, bool)> {
        (0..self.ops.len())
            .filter_map(|i| {
                let stream = self.external_output[i]?;
                let so = self.ops[i].as_soutput()?;
                Some((stream, so.tentative_since_stable()))
            })
            .collect()
    }

    /// Phase of each input SUnion (diagnostics, node state computation).
    pub fn input_phases(&self) -> Vec<Phase> {
        self.input_sunions
            .iter()
            .map(|&i| self.ops[i].as_sunion().expect("sunion").phase())
            .collect()
    }

    /// Direct access to an operator (tests and diagnostics).
    pub fn op(&self, index: usize) -> &dyn Operator {
        self.ops[index].as_ref()
    }

    /// Number of operators.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }
}

/// Serializes a [`Fragment::capture_durable`] result: operator count, then
/// one length-prefixed state record per operator in operator order. This is
/// the half of the durable checkpoint that runs *off* the hot path — the
/// capture is refcount bumps on the actor thread; this walk of the shared
/// state can run on a background flusher.
pub fn encode_durable_capture(parts: &[(SnapshotCodec, OpSnapshot)], buf: &mut Vec<u8>) {
    wire::put_u32(buf, parts.len() as u32);
    for (codec, snap) in parts {
        let mark = buf.len();
        wire::put_u32(buf, 0); // patched with the record length below
        (codec.encode)(snap, buf);
        let len = (buf.len() - mark - 4) as u32;
        buf[mark..mark + 4].copy_from_slice(&len.to_le_bytes());
    }
}
