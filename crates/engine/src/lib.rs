//! # borealis-engine
//!
//! The single-node SPE execution engine: instantiates one fragment of a
//! query diagram (from a `borealis-diagram` physical plan) and executes it
//! against virtual time, implementing the node-local parts of DPC —
//! checkpoint-before-tentative, divergence tracking, and checkpoint/redo
//! reconciliation (§4.4 of the paper). The distributed protocol around it
//! (replica management, subscriptions, heartbeats) lives in `borealis-dpc`.

#![warn(missing_docs)]

pub mod fragment;

pub use fragment::{encode_durable_capture, Batch, Fragment};

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_diagram::{plan, Deployment, DiagramBuilder, DpcConfig, LogicalOp};
    use borealis_types::{
        ControlSignal, Duration, Expr, StreamId, Time, Tuple, TupleId, TupleKind, Value,
    };

    /// A fragment merging three source streams through one SUnion into an
    /// SOutput — the Fig. 10 shape the paper's §5.1 experiments use.
    fn merge3_fragment(detect_secs: u64) -> (Fragment, Vec<StreamId>, StreamId) {
        let mut b = DiagramBuilder::new();
        let s1 = b.source("s1");
        let s2 = b.source("s2");
        let s3 = b.source("s3");
        let u = b.add("merged", LogicalOp::Union, &[s1, s2, s3]);
        b.output(u);
        let d = b.build().unwrap();
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(detect_secs),
            safety: 1.0,
            ..DpcConfig::default()
        };
        let p = plan(&d, &Deployment::single(&d), &cfg).unwrap();
        let f = Fragment::from_plan(&p.fragments[0]);
        (f, vec![s1, s2, s3], u)
    }

    fn data(id: u64, ms: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(ms),
            vec![Value::Int(id as i64)],
        )
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    /// Pushes a healthy round of data + boundaries on all streams.
    fn healthy_round(f: &mut Fragment, streams: &[StreamId], ms: u64, next_id: &mut u64) -> Batch {
        let mut total = Batch::default();
        let now = Time::from_millis(ms);
        for (k, &s) in streams.iter().enumerate() {
            total.merge(f.push(s, &data(*next_id, ms + k as u64), now));
            *next_id += 1;
        }
        for &s in streams {
            total.merge(f.push(s, &boundary(ms + 140), now));
        }
        total
    }

    #[test]
    fn stable_flow_emits_stable_tuples_in_order() {
        let (mut f, streams, out_stream) = merge3_fragment(2);
        let mut id = 1;
        let mut all = Vec::new();
        for round in 0..5 {
            let b = healthy_round(&mut f, &streams, round * 100 + 10, &mut id);
            all.extend(b.tuples());
        }
        let data_tuples: Vec<_> = all
            .iter()
            .filter(|(s, t)| *s == out_stream && t.is_data())
            .collect();
        // Rounds 0..4 pushed 15 tuples; each round's trailing boundary
        // (ms + 140) closes that round's bucket, so all 15 are emitted.
        assert_eq!(data_tuples.len(), 15);
        assert!(data_tuples
            .iter()
            .all(|(_, t)| t.kind == TupleKind::Insertion));
        // stimes must be non-decreasing (serialized order).
        let stimes: Vec<u64> = data_tuples
            .iter()
            .map(|(_, t)| t.stime.as_micros())
            .collect();
        assert!(stimes.windows(2).all(|w| w[0] <= w[1]), "{stimes:?}");
        assert!(!f.is_tainted());
    }

    #[test]
    fn missing_stream_triggers_checkpoint_and_tentative_data() {
        let (mut f, streams, out_stream) = merge3_fragment(2);
        let mut id = 1;
        // One healthy round, then stream 3 goes silent.
        healthy_round(&mut f, &streams, 10, &mut id);
        let now = Time::from_millis(200);
        for &s in &streams[..2] {
            f.push(s, &data(id, 200), now);
            id += 1;
            f.push(s, &boundary(300), now);
        }
        assert!(!f.is_tainted());
        // Tick past the detection delay: checkpoint, UP_FAILURE, tentative.
        let b = f.tick(Time::from_millis(2500));
        assert!(f.is_tainted());
        assert!(b.signals.contains(&ControlSignal::UpFailure));
        let emitted = b.tuples();
        let tentative: Vec<_> = emitted
            .iter()
            .filter(|(s, t)| *s == out_stream && t.is_tentative())
            .collect();
        assert_eq!(tentative.len(), 2, "both live-stream tuples released");
        assert!(!f.can_reconcile(), "stream 3 still missing");
    }

    #[test]
    fn reconcile_corrects_undoes_and_emits_rec_done_without_duplicates() {
        let (mut f, streams, out_stream) = merge3_fragment(2);
        let mut id = 1;
        healthy_round(&mut f, &streams, 10, &mut id);
        // Failure on stream 3 at t=200: only streams 1, 2 deliver.
        for &s in &streams[..2] {
            f.push(s, &data(100 + id, 200), Time::from_millis(200));
            id += 1;
            f.push(s, &boundary(300), Time::from_millis(200));
        }
        let b = f.tick(Time::from_millis(2300));
        let n_tentative = b.tuples().iter().filter(|(_, t)| t.is_tentative()).count();
        assert_eq!(n_tentative, 2);

        // Heal: stream 3 replays its backlog with boundaries; streams 1, 2
        // keep their boundaries advancing.
        let heal = Time::from_millis(2400);
        f.push(streams[2], &data(999, 205), heal);
        for &s in &streams {
            f.push(s, &boundary(400), heal);
        }
        assert!(f.can_reconcile(), "all inputs corrected");

        let mut b = f.reconcile(Time::from_millis(2500));
        b.merge(f.finish_reconciliation(Time::from_millis(2600)));
        let emitted = b.tuples();
        let out: Vec<&Tuple> = emitted
            .iter()
            .filter(|(s, _)| *s == out_stream)
            .map(|(_, t)| t)
            .collect();
        // Expect: UNDO (rolling back the 2 tentative), stable corrections
        // (the 2 + the missing 1), REC_DONE.
        let undo_pos = out
            .iter()
            .position(|t| t.kind == TupleKind::Undo)
            .expect("undo");
        let rec_pos = out
            .iter()
            .position(|t| t.kind == TupleKind::RecDone)
            .expect("rec_done");
        assert!(undo_pos < rec_pos);
        let stable: Vec<_> = out.iter().filter(|t| t.is_stable_data()).collect();
        assert_eq!(stable.len(), 3, "corrections: {out:?}");
        assert!(b.signals.contains(&ControlSignal::RecDone));
        assert!(!f.is_tainted());

        // No duplicates: stable ids strictly increase across the undo.
        let mut last = TupleId::NONE;
        for (s, t) in healthy_round(&mut f, &streams, 500, &mut id).tuples() {
            if s == out_stream && t.is_stable_data() {
                assert!(t.id > last);
                last = t.id;
            }
        }
    }

    /// The Fig. 11(b) scenario: a second failure strikes during recovery.
    /// Reconciliation corrects only the first failure's data, emits
    /// REC_DONE, and the second failure's data is re-released tentatively
    /// afterwards (with a fresh checkpoint).
    #[test]
    fn failure_during_recovery_reconciles_partially() {
        let (mut f, streams, out_stream) = merge3_fragment(2);
        let mut id = 1;
        healthy_round(&mut f, &streams, 10, &mut id);
        // Failure 1: stream 1 silent; streams 2, 3 deliver at t=200.
        for &s in &streams[1..] {
            f.push(s, &data(10 + id, 200), Time::from_millis(200));
            id += 1;
            f.push(s, &boundary(300), Time::from_millis(200));
        }
        f.tick(Time::from_millis(2300)); // tentative release
        assert!(f.is_tainted());

        // Failure 1 heals (stream 1 backlog) but stream 3 dies at the same
        // moment: its boundaries stop at 280.
        let heal = Time::from_millis(2400);
        f.push(streams[0], &data(500, 210), heal);
        f.push(streams[0], &boundary(400), heal);
        f.push(streams[1], &boundary(400), heal);
        // Stream 3's boundary stays at 300: buckets beyond are uncovered,
        // but everything emitted so far (bucket 2, ending at 300) is
        // covered.
        assert!(f.can_reconcile());

        let mut b = f.reconcile(Time::from_millis(2500));
        b.merge(f.finish_reconciliation(Time::from_millis(2600)));
        let emitted = b.tuples();
        let out: Vec<&Tuple> = emitted
            .iter()
            .filter(|(s, _)| *s == out_stream)
            .map(|(_, t)| t)
            .collect();
        assert!(out.iter().any(|t| t.kind == TupleKind::Undo));
        assert!(out.iter().any(|t| t.kind == TupleKind::RecDone));
        assert!(!f.is_tainted(), "fresh after reconcile");

        // New data on live streams while stream 3 stays dead: after the
        // detection delay the fragment checkpoints again and goes tentative.
        for &s in &streams[..2] {
            f.push(s, &data(600 + id, 2600), Time::from_millis(2600));
            id += 1;
            f.push(s, &boundary(2700), Time::from_millis(2600));
        }
        let b = f.tick(Time::from_millis(4700));
        assert!(f.is_tainted());
        assert!(b.tuples().iter().any(|(_, t)| t.is_tentative()));
    }

    #[test]
    fn filter_chain_fragment_preserves_dpc_flow() {
        // source -> filter(keep odd values) -> output, with auto-inserted
        // SUnion/SOutput.
        let mut b = DiagramBuilder::new();
        let s = b.source("in");
        let fz = b.add(
            "odd",
            LogicalOp::Filter {
                predicate: Expr::eq(Expr::modulo(Expr::field(0), Expr::int(2)), Expr::int(1)),
            },
            &[s],
        );
        b.output(fz);
        let d = b.build().unwrap();
        let p = plan(&d, &Deployment::single(&d), &DpcConfig::default()).unwrap();
        let mut f = Fragment::from_plan(&p.fragments[0]);

        let mut out = Vec::new();
        for i in 1..=6u64 {
            let t = Tuple::insertion(
                TupleId(i),
                Time::from_millis(i * 10),
                vec![Value::Int(i as i64)],
            );
            out.extend(f.push(s, &t, Time::from_millis(i * 10)).tuples());
        }
        out.extend(f.push(s, &boundary(100), Time::from_millis(100)).tuples());
        let kept: Vec<i64> = out
            .iter()
            .filter(|(_, t)| t.is_data())
            .map(|(_, t)| t.values[0].as_int().unwrap())
            .collect();
        assert_eq!(kept, vec![1, 3, 5]);
    }

    #[test]
    fn work_accounting_counts_data_tuples() {
        let (mut f, streams, _) = merge3_fragment(2);
        let mut id = 1;
        let b = healthy_round(&mut f, &streams, 10, &mut id);
        // 3 data tuples processed by the SUnion, then the round's trailing
        // boundary closes the bucket and the 3 emissions pass the SOutput.
        assert_eq!(b.work, 6);
        assert_eq!(f.total_work(), 6);
        let b2 = healthy_round(&mut f, &streams, 200, &mut id);
        assert_eq!(b2.work, 6, "same shape every round");
    }

    #[test]
    fn deadline_reflects_oldest_pending_bucket() {
        let (mut f, streams, _) = merge3_fragment(2);
        assert_eq!(f.next_deadline(), None);
        f.push(streams[0], &data(1, 100), Time::from_millis(120));
        let d = f.next_deadline().expect("bucket pending");
        assert_eq!(d, Time::from_millis(2120), "arrival + detect delay");
    }
}
