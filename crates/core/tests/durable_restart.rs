//! Durable restart under the deterministic simulator: a replica killed and
//! respawned mid-run recovers from its on-disk store (latest checkpoint +
//! bounded input-log replay) and the system's stable output stays exactly
//! the stream a failure-free run delivers — no duplicates, no gaps.

use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, QueryBuilder};
use borealis_dpc::{FaultSpec, MetricsHub, SourceConfig, SystemBuilder, TraceEntry};
use borealis_types::{Duration, StreamId, Time, TupleKind};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "borealis-durable-restart-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Stable stream a durable consumer retains: insertions append, UNDOs roll
/// back past their target.
fn stable_stream(trace: &[TraceEntry]) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = Vec::new();
    for e in trace {
        match e.kind {
            TupleKind::Insertion => v.push((e.id.0, e.stime.as_micros())),
            TupleKind::Undo => {
                let target = e.undo_target.map(|t| t.0).unwrap_or(0);
                while v.last().is_some_and(|&(id, _)| id > target) {
                    v.pop();
                }
            }
            _ => {}
        }
    }
    v
}

/// Two sources → union fragment (replication 2) → client.
fn merge_system(durable_root: Option<&Path>, faults: Vec<FaultSpec>) -> (SystemBuilder, StreamId) {
    let mut q = QueryBuilder::new();
    let s1 = q.source("s1");
    let s2 = q.source("s2");
    let u = q.union("merged", &[s1, s2]);
    q.output(u);
    let d = q.build().unwrap();
    let cfg = DpcConfig {
        total_delay: Duration::from_secs(2),
        ..DpcConfig::default()
    };
    let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
    let mut builder = SystemBuilder::new(11, Duration::from_millis(1))
        .source(SourceConfig::seq(s1.id(), 100.0))
        .source(SourceConfig::seq(s2.id(), 100.0))
        .plan(p)
        .client_streams(vec![u.id()])
        .faults(faults);
    if let Some(root) = durable_root {
        builder = builder.durability(root, Duration::from_millis(250), false);
    }
    (builder, u.id())
}

/// Reads every node store's `last_recovery` marker under `root`.
fn recovery_markers(root: &Path) -> Vec<String> {
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return found;
    };
    for e in entries.flatten() {
        let marker = e.path().join("last_recovery.marker");
        if let Ok(s) = std::fs::read_to_string(&marker) {
            found.push(s);
        }
    }
    found
}

/// Kill-and-respawn with durability: the restarted replica loads its
/// latest snapshot, replays the log suffix, rejoins — and the delivered
/// stable stream equals the failure-free run's, tuple for tuple.
#[test]
fn restarted_replica_recovers_from_disk_with_identical_stable_output() {
    let horizon = Time::from_secs(10);

    // Failure-free reference.
    let (builder, out) = merge_system(None, Vec::new());
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut clean = builder.metrics(metrics).build();
    clean.run_until(horizon);
    let clean_stable = clean
        .metrics
        .with(out, |m| stable_stream(m.trace.as_ref().expect("trace")));

    // Same deployment, durable stores, one replica killed and respawned.
    let root = scratch("restart");
    let (builder, out2) = merge_system(
        Some(&root),
        vec![FaultSpec::RestartReplica {
            frag: 0,
            shard: 0,
            replica: 0,
            after: Time::from_secs(3),
        }],
    );
    assert_eq!(out, out2);
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sys = builder.metrics(metrics).build();
    sys.run_until(horizon);
    let (stable, dups) = sys.metrics.with(out, |m| {
        (
            stable_stream(m.trace.as_ref().expect("trace")),
            m.dup_stable,
        )
    });

    assert_eq!(dups, 0, "restart must not re-deliver stable tuples");
    let markers = recovery_markers(&root);
    assert_eq!(
        markers.len(),
        1,
        "exactly the respawned replica recovers from disk: {markers:?}"
    );
    assert!(
        markers[0].starts_with("snapshot="),
        "marker records the snapshot id: {}",
        markers[0]
    );
    let snap_id: u64 = markers[0]
        .split(['=', ' '])
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("snapshot id in marker");
    assert!(
        snap_id >= 3,
        "3 s of 250 ms checkpoints must have published several snapshots, recovered #{snap_id}"
    );

    // Eventual consistency across the restart: the durable run's stable
    // stream is byte-identical to the failure-free run's common prefix.
    let common = stable.len().min(clean_stable.len());
    assert!(common >= 1500, "substantial stream: {common}");
    assert_eq!(
        stable[..common],
        clean_stable[..common],
        "disk recovery changed the stable output"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The same scripted restart *without* durability still converges (the
/// §4.5 empty-state + upstream-replay path this PR supplements) — and with
/// durability the restarted node replays a bounded suffix instead: the log
/// is pruned by snapshot coverage, so recovery work is proportional to the
/// checkpoint interval, not to the run length.
#[test]
fn durable_restart_replays_a_bounded_suffix() {
    let root = scratch("bounded");
    let (builder, out) = merge_system(
        Some(&root),
        vec![FaultSpec::RestartReplica {
            frag: 0,
            shard: 0,
            replica: 1,
            after: Time::from_secs(6),
        }],
    );
    let metrics = MetricsHub::new();
    metrics.enable_trace(out);
    let mut sys = builder.metrics(metrics).build();
    sys.run_until(Time::from_secs(9));
    let dups = sys.metrics.with(out, |m| m.dup_stable);
    assert_eq!(dups, 0);

    let markers = recovery_markers(&root);
    assert_eq!(markers.len(), 1, "markers: {markers:?}");
    let replayed: u64 = markers[0]
        .split("replayed=")
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .expect("replay count in marker");
    // 6 s × 2 sources × 100 tuples/s ≈ 1200 input tuples total; a 250 ms
    // checkpoint interval leaves at most a few hundred log records (data
    // batches + boundaries) past the last snapshot. The bound is loose but
    // rules out a full-history replay.
    assert!(
        replayed > 0,
        "a restart mid-stream must replay some logged input"
    );
    assert!(
        replayed < 400,
        "replay must be bounded by the checkpoint interval, got {replayed} records"
    );
    let _ = std::fs::remove_dir_all(&root);
}
