//! The transport layer unifying the two runtimes' link substrates.
//!
//! Both execution engines move [`NetMsg`]s over reliable, in-order,
//! point-to-point links with the same fault model — but through different
//! mechanics: the deterministic simulator's kernel delivers through its
//! event queue, the thread engine through `mpsc` mailboxes. [`Transport`]
//! is the contract the two share, and since this PR it is **bounded with
//! credit-based flow control**:
//!
//! * every *data* message admitted to a directed link consumes one credit
//!   ([`Transport::try_send`]); with the window exhausted the message
//!   queues at the sender ([`SendOutcome::Queued`]);
//! * the receiver's (modeled) CPU consumption returns the credit
//!   ([`Transport::consumed`]), releasing the oldest queued message in
//!   FIFO order — links never reorder;
//! * control traffic (subscriptions, acks, heartbeats, the stagger
//!   protocol) bypasses credits entirely, so backpressure cannot be
//!   mistaken for a dead peer;
//! * queue depth and stall time are continuously gauged
//!   ([`Transport::flow_gauges`]), and per-link stall durations are
//!   queryable ([`Transport::stalled_for`]) — that query is what
//!   [`RuntimeCtx::inbound_stall`](crate::runtime::RuntimeCtx::inbound_stall)
//!   exposes to protocol code, and what the Consistency Manager forwards
//!   into `SUnion` so an overloaded consumer manifests as *delayed*
//!   buckets under the §6 delay budget.
//!
//! Implementors:
//!
//! * [`borealis_sim::FlowControl<NetMsg>`] — the kernel's delivery
//!   substrate (this impl, below); the kernel consults it on every
//!   `Depart`/`Message`/`Replenish` event.
//! * `borealis_runtime::LinkTable` — the thread engine's shared link
//!   table, which layers the same ledger behind its lock and drives it
//!   from the actor threads' send/receive paths.
//!
//! The scripted fault controller runs unchanged on top: faults gate
//! reachability *around* the credit ledger (a send to a dead peer is a
//! counted drop, never a queued stall), and a node crash purges its links'
//! queues like in-flight segments of a broken connection.

use crate::msg::NetMsg;
use borealis_sim::FlowControl;
use borealis_types::{CreditPolicy, Duration, FlowGauges, NodeId, SendOutcome, Time};

/// The credit-controlled link substrate shared by both runtimes.
///
/// Mutating verbs take `&mut self`; implementations backed by shared state
/// (the thread engine's lock-guarded table) expose interior-mutability
/// siblings for their hot paths and forward here.
pub trait Transport {
    /// The governing credit policy.
    fn credit_policy(&self) -> CreditPolicy;

    /// Admits `msg` to the directed link `from → to`. Returns the outcome
    /// plus the message to hand to the link now ([`SendOutcome::Delivered`])
    /// — `None` means the transport queued it awaiting credit.
    ///
    /// Callers gate on reachability *first*: a faulted link is a counted
    /// drop ([`SendOutcome::DroppedFault`]) and must never reach admission.
    fn try_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: NetMsg,
        now: Time,
    ) -> (SendOutcome, Option<NetMsg>);

    /// One delivery on `from → to` was consumed by the receiver: returns
    /// the next queued message to release, if any.
    fn consumed(&mut self, from: NodeId, to: NodeId, now: Time) -> Option<NetMsg>;

    /// Continuous credit-stall duration of `from → to`.
    fn stalled_for(&self, from: NodeId, to: NodeId, now: Time) -> Duration;

    /// Queue-depth and stall-time gauges.
    fn flow_gauges(&self) -> FlowGauges;
}

/// The simulator-side implementation: the kernel's own credit ledger.
impl Transport for FlowControl<NetMsg> {
    fn credit_policy(&self) -> CreditPolicy {
        self.policy()
    }

    fn try_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: NetMsg,
        now: Time,
    ) -> (SendOutcome, Option<NetMsg>) {
        if !self.tracks(&msg) {
            return (SendOutcome::Delivered, Some(msg));
        }
        match self.admit(from, to, msg, now) {
            Some(m) => (SendOutcome::Delivered, Some(m)),
            None => (SendOutcome::Queued, None),
        }
    }

    fn consumed(&mut self, from: NodeId, to: NodeId, now: Time) -> Option<NetMsg> {
        self.replenish(from, to, now)
    }

    fn stalled_for(&self, from: NodeId, to: NodeId, now: Time) -> Duration {
        FlowControl::stalled_for(self, from, to, now)
    }

    fn flow_gauges(&self) -> FlowGauges {
        self.gauges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{StreamId, TupleBatch};

    fn data() -> NetMsg {
        NetMsg::Data {
            stream: StreamId(0),
            tuples: TupleBatch::single(borealis_types::Tuple::boundary(
                borealis_types::TupleId::NONE,
                Time::ZERO,
            ))
            .into(),
        }
    }

    /// Drives the sim-side implementor through the trait object — the
    /// same sequence the thread engine's table must satisfy.
    fn exercise(t: &mut dyn Transport, window: u32) {
        let (a, b) = (NodeId(0), NodeId(1));
        assert_eq!(t.credit_policy(), CreditPolicy::Window(window));
        for i in 0..window {
            let (out, m) = t.try_send(a, b, data(), Time::from_millis(i as u64));
            assert_eq!(out, SendOutcome::Delivered);
            assert!(m.is_some());
        }
        let (out, m) = t.try_send(a, b, data(), Time::from_millis(10));
        assert_eq!(out, SendOutcome::Queued);
        assert!(m.is_none());
        assert_eq!(
            t.stalled_for(a, b, Time::from_millis(25)),
            Duration::from_millis(15)
        );
        assert!(
            t.consumed(a, b, Time::from_millis(30)).is_some(),
            "released"
        );
        assert_eq!(t.stalled_for(a, b, Time::from_millis(40)), Duration::ZERO);
        let g = t.flow_gauges();
        assert_eq!(g.queued, 1);
        assert_eq!(g.released, 1);
        assert_eq!(g.inflight_peak, window as u64);
    }

    #[test]
    fn sim_flow_control_satisfies_transport() {
        let mut flow: FlowControl<NetMsg> = FlowControl::new(CreditPolicy::Window(2));
        exercise(&mut flow, 2);
    }

    #[test]
    fn control_traffic_bypasses_credits() {
        let mut flow: FlowControl<NetMsg> = FlowControl::new(CreditPolicy::Window(1));
        let (a, b) = (NodeId(0), NodeId(1));
        let (out, _) = flow.try_send(a, b, data(), Time::ZERO);
        assert_eq!(out, SendOutcome::Delivered);
        // Window exhausted for data...
        let (out, _) = flow.try_send(a, b, data(), Time::ZERO);
        assert_eq!(out, SendOutcome::Queued);
        // ...but heartbeats always pass: a stalled link still keep-alives.
        for _ in 0..5 {
            let (out, m) = flow.try_send(a, b, NetMsg::HeartbeatReq, Time::ZERO);
            assert_eq!(out, SendOutcome::Delivered);
            assert!(m.is_some());
        }
    }
}
