//! The client proxy (§2.2): applications "communicate with the system
//! through proxies … that implement the required functionality".
//!
//! The proxy runs the consumer half of DPC for each output stream it
//! watches: subscription with exact resume positions, keep-alive monitoring
//! of the producing replicas, Table II switching (preferring stable
//! replicas — Property 3), UNDO/correction application, and cumulative acks
//! for upstream buffer truncation. Every arriving tuple is recorded into a
//! [`MetricsHub`] so experiments can read `Procnew` and `Ntentative`
//! afterwards.

use crate::metrics::{MetricsHub, StreamRecorder};
use crate::msg::NetMsg;
use crate::runtime::{DpcActor, RuntimeCtx};
use crate::upstream::{UpstreamAction, UpstreamManager};
use borealis_sim::{Actor, Ctx, FaultEvent};
use borealis_types::{Duration, NodeId, StreamId, Tuple};

/// Tuning knobs for a client proxy.
#[derive(Debug, Clone)]
pub struct ClientTuning {
    /// Keep-alive period.
    pub heartbeat_period: Duration,
    /// Silence after which a producing replica is considered Failed.
    pub stale_timeout: Duration,
    /// Cumulative-ack period.
    pub ack_period: Duration,
}

impl Default for ClientTuning {
    fn default() -> Self {
        ClientTuning {
            heartbeat_period: Duration::from_millis(100),
            stale_timeout: Duration::from_millis(250),
            ack_period: Duration::from_secs(1),
        }
    }
}

/// One watched stream: the stream and the replicas producing it.
#[derive(Debug, Clone)]
pub struct ClientStream {
    /// Output stream to consume.
    pub stream: StreamId,
    /// Producing replicas (monitored and switched between).
    pub candidates: Vec<NodeId>,
}

const TIMER_HEARTBEAT: u64 = 1;
const TIMER_ACK: u64 = 2;

/// The client-proxy actor.
pub struct ClientProxy {
    streams: Vec<ClientStream>,
    tuning: ClientTuning,
    metrics: MetricsHub,
    ums: Vec<UpstreamManager>,
    /// Per-watched-stream metric shards, parallel to `ums` — resolved once
    /// at startup so the delivery hot path locks only its own stream's
    /// recorder (once per batch), never the hub registry.
    recorders: Vec<StreamRecorder>,
}

impl ClientProxy {
    /// Creates a proxy consuming `streams`, recording into `metrics`.
    pub fn new(streams: Vec<ClientStream>, tuning: ClientTuning, metrics: MetricsHub) -> Self {
        ClientProxy {
            streams,
            tuning,
            metrics,
            ums: Vec::new(),
            recorders: Vec::new(),
        }
    }

    fn apply_actions<C: RuntimeCtx + ?Sized>(
        &self,
        ctx: &mut C,
        stream: StreamId,
        actions: Vec<UpstreamAction>,
    ) {
        for a in actions {
            match a {
                UpstreamAction::Subscribe {
                    to,
                    last_stable,
                    saw_tentative,
                    fresh_only,
                } => {
                    ctx.send(
                        to,
                        NetMsg::Subscribe {
                            stream,
                            last_stable,
                            saw_tentative,
                            fresh_only,
                        },
                    );
                }
                UpstreamAction::Unsubscribe { from } => {
                    ctx.send(from, NetMsg::Unsubscribe { stream });
                }
            }
        }
    }
}

/// The protocol body, written once against [`RuntimeCtx`]; the adapters
/// below expose it to both runtimes.
impl ClientProxy {
    /// Startup: subscribe to every watched stream, arm the timers.
    pub fn start<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        let now = ctx.now();
        for cs in self.streams.clone() {
            let monitor = cs.candidates.len() > 1;
            let mut um = UpstreamManager::new(cs.stream, cs.candidates, monitor, now);
            let actions = um.initial_subscribe();
            self.ums.push(um);
            self.recorders.push(self.metrics.recorder(cs.stream));
            self.apply_actions(ctx, cs.stream, actions);
        }
        ctx.set_timer(now + self.tuning.heartbeat_period, TIMER_HEARTBEAT);
        ctx.set_timer(now + self.tuning.ack_period, TIMER_ACK);
    }

    /// Handles one protocol message.
    pub fn message<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Data { stream, tuples } => {
                let now = ctx.now();
                let Some(i) = self.ums.iter().position(|u| u.stream() == stream) else {
                    return;
                };
                if !self.ums[i].accepts_from(from) {
                    return;
                }
                let mut actions = Vec::new();
                let mut accepted: Vec<&Tuple> = Vec::with_capacity(tuples.len());
                for t in tuples.iter() {
                    if self.ums[i].is_duplicate(t) {
                        continue; // retransmission after a link heal
                    }
                    actions.extend(self.ums[i].observe_tuple(from, t));
                    accepted.push(t);
                }
                // One lock acquisition per delivered batch, on this
                // stream's own shard (none when everything was a
                // duplicate, e.g. a post-heal retransmission storm).
                if !accepted.is_empty() {
                    self.recorders[i].record_all(now, accepted);
                }
                self.apply_actions(ctx, stream, actions);
            }
            NetMsg::HeartbeatResp {
                node_state,
                stream_states,
            } => {
                let now = ctx.now();
                let stale = self.tuning.stale_timeout;
                for i in 0..self.ums.len() {
                    self.ums[i].heartbeat_response(from, node_state, &stream_states, now);
                    let actions = self.ums[i].evaluate(now, stale);
                    let stream = self.ums[i].stream();
                    self.apply_actions(ctx, stream, actions);
                }
            }
            _ => {}
        }
    }

    /// Handles one timer callback.
    pub fn timer<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, kind: u64) {
        let now = ctx.now();
        match kind {
            TIMER_HEARTBEAT => {
                let stale = self.tuning.stale_timeout;
                for i in 0..self.ums.len() {
                    let actions = self.ums[i].evaluate(now, stale);
                    let stream = self.ums[i].stream();
                    self.apply_actions(ctx, stream, actions);
                    for target in self.ums[i].heartbeat_targets() {
                        ctx.send(target, NetMsg::HeartbeatReq);
                    }
                }
                ctx.set_timer(now + self.tuning.heartbeat_period, TIMER_HEARTBEAT);
            }
            TIMER_ACK => {
                for um in &self.ums {
                    let through = um.last_stable();
                    for &cand in um.candidates() {
                        ctx.send(
                            cand,
                            NetMsg::Ack {
                                stream: um.stream(),
                                through,
                            },
                        );
                    }
                }
                ctx.set_timer(now + self.tuning.ack_period, TIMER_ACK);
            }
            _ => {}
        }
    }

    /// Reacts to a fault notification: a torn transport connection (crash
    /// of a producer's process) invalidates the subscriptions that process
    /// held for us — the next evaluation switches to a live replica or
    /// re-subscribes when the producer recovers from disk.
    pub fn fault<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, fault: &FaultEvent) {
        if let FaultEvent::NodeDown(n) = fault {
            if *n == ctx.id() {
                return;
            }
            let now = ctx.now();
            for um in &mut self.ums {
                um.connection_lost(*n, now);
            }
        }
    }
}

/// Simulator adapter: static dispatch into the shared protocol body.
impl Actor<NetMsg> for ClientProxy {
    fn on_start(&mut self, ctx: &mut Ctx<NetMsg>) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Ctx<NetMsg>, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut Ctx<NetMsg>, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut Ctx<NetMsg>, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}

/// Thread-engine adapter: dynamic dispatch into the shared protocol body.
impl DpcActor for ClientProxy {
    fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut dyn RuntimeCtx, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut dyn RuntimeCtx, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}
