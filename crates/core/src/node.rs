//! The DPC processing node: fragment execution + Data Path + Consistency
//! Manager (§3, Fig. 4(b)).
//!
//! Each node actor runs one replica of one query-diagram fragment and
//! implements, around it:
//!
//! * the **Data Path**: per-output-stream emission logs with
//!   subscription/replay (Fig. 8) and ack-driven truncation (§8.1), and
//!   per-input-stream upstream managers;
//! * the **Consistency Manager**: the node state machine (Fig. 5),
//!   keep-alive monitoring of upstream replicas with the Table II switching
//!   rules, per-stream state advertisement (§8.2), and the inter-replica
//!   stagger protocol that keeps one replica live while the other
//!   stabilizes (§4.4.3, Fig. 9);
//! * a **CPU cost model**: each processed tuple charges a configurable
//!   service time; outputs leave the node when the work completes. This is
//!   what makes reconciliation of a long failure take proportionally long
//!   (the effect behind the paper's §6.1 trade-off study) and creates the
//!   queueing delays §6.3 subtracts from the delay budget.

use crate::buffers::{BufferPolicy, OutputBuffer};
use crate::durable::{DurabilityConfig, NodeDisk};
use crate::msg::{NetMsg, NodeState};
use crate::runtime::{DpcActor, RuntimeCtx};
use crate::upstream::{UpstreamAction, UpstreamManager};
use borealis_diagram::FragmentPlan;
use borealis_engine::{Batch, Fragment};
use borealis_sim::{Actor, Ctx, FaultEvent};
use borealis_types::{BatchView, Duration, NodeId, StreamId, Time, Tuple, TupleBatch, TupleId};
use std::collections::HashMap;

/// Upstream binding of one input stream.
#[derive(Debug, Clone)]
pub struct UpstreamSpec {
    /// The input stream.
    pub stream: StreamId,
    /// Nodes able to produce it (a source, or the replicas of the upstream
    /// fragment).
    pub candidates: Vec<NodeId>,
    /// Whether to monitor and switch between candidates.
    pub monitor: bool,
}

/// Performance/protocol tuning knobs shared by all nodes of a deployment.
#[derive(Debug, Clone)]
pub struct NodeTuning {
    /// CPU service time per processed data tuple.
    pub per_tuple_cost: Duration,
    /// Keep-alive period (100 ms in the paper's §5.1).
    pub heartbeat_period: Duration,
    /// Silence after which an upstream replica is considered Failed.
    pub stale_timeout: Duration,
    /// Cumulative-ack period for buffer truncation.
    pub ack_period: Duration,
    /// Output buffer policy (§8.1).
    pub buffer_policy: BufferPolicy,
    /// Tuples per Data message when draining large output windows.
    pub dispatch_chunk: usize,
    /// How long a stabilization grant to a replica remains binding.
    pub grant_timeout: Duration,
    /// Wait before retrying a rejected stabilization request.
    pub retry_wait: Duration,
}

impl Default for NodeTuning {
    fn default() -> Self {
        NodeTuning {
            per_tuple_cost: Duration::from_micros(60),
            heartbeat_period: Duration::from_millis(100),
            stale_timeout: Duration::from_millis(250),
            ack_period: Duration::from_secs(1),
            buffer_policy: BufferPolicy::Unbounded,
            dispatch_chunk: 500,
            grant_timeout: Duration::from_secs(120),
            retry_wait: Duration::from_millis(100),
        }
    }
}

/// Full configuration of one node replica.
pub struct NodeConfig {
    /// The fragment this node executes.
    pub plan: FragmentPlan,
    /// The other replicas of the same fragment.
    pub replicas: Vec<NodeId>,
    /// Input stream bindings.
    pub upstreams: Vec<UpstreamSpec>,
    /// Expected number of downstream consumers per output stream (replicas
    /// of consuming fragments plus clients) — required for safe truncation.
    pub downstream_counts: Vec<(StreamId, usize)>,
    /// Tuning knobs.
    pub tuning: NodeTuning,
    /// Durable checkpoints + input log (None: volatile node, crash
    /// recovery rebuilds from an empty state as in §4.5).
    pub durability: Option<DurabilityConfig>,
}

const TIMER_TICK: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;
const TIMER_ACK: u64 = 3;
const TIMER_RETRY: u64 = 4;
const TIMER_STAB_DONE: u64 = 5;
const TIMER_GRANT_TIMEOUT: u64 = 6;
const TIMER_RECOVERY_DONE: u64 = 7;
const TIMER_CHECKPOINT: u64 = 8;

/// The processing-node actor.
pub struct ProcessingNode {
    cfg: NodeConfig,
    fragment: Fragment,
    ums: Vec<UpstreamManager>,
    out: HashMap<StreamId, OutputBuffer>,
    /// Per-output-stream subscriber positions into the emission log.
    subscribers: HashMap<StreamId, HashMap<NodeId, usize>>,
    /// Per-output-stream cumulative acks.
    acks: HashMap<StreamId, HashMap<NodeId, TupleId>>,
    busy_until: Time,
    state: NodeState,
    /// Outstanding stabilization request target.
    pending_request: Option<NodeId>,
    /// Replicas we promised to stay available for, with grant times.
    granted_to: Vec<(NodeId, Time)>,
    /// Who authorized our current stabilization.
    authorized_by: Option<NodeId>,
    /// End of the current stabilization's busy window.
    stab_done_at: Option<Time>,
    scheduled_tick: Option<Time>,
    /// True while rebuilding after a crash (§4.5): no requests answered.
    recovering: bool,
    /// Open durable store, when configured.
    disk: Option<NodeDisk>,
}

impl ProcessingNode {
    /// Creates the node from its configuration.
    pub fn new(cfg: NodeConfig) -> ProcessingNode {
        let fragment = Fragment::from_plan(&cfg.plan);
        let out = fragment
            .output_streams()
            .into_iter()
            .map(|s| (s, OutputBuffer::new(cfg.tuning.buffer_policy)))
            .collect();
        ProcessingNode {
            cfg,
            fragment,
            ums: Vec::new(),
            out,
            subscribers: HashMap::new(),
            acks: HashMap::new(),
            busy_until: Time::ZERO,
            state: NodeState::Stable,
            pending_request: None,
            granted_to: Vec::new(),
            authorized_by: None,
            stab_done_at: None,
            scheduled_tick: None,
            recovering: false,
            disk: None,
        }
    }

    /// Current node state (tests/diagnostics).
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Fragment access (tests/diagnostics).
    pub fn fragment(&self) -> &Fragment {
        &self.fragment
    }

    fn apply_actions<C: RuntimeCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
        stream: StreamId,
        actions: Vec<UpstreamAction>,
    ) {
        for a in actions {
            match a {
                UpstreamAction::Subscribe {
                    to,
                    last_stable,
                    saw_tentative,
                    fresh_only,
                } => {
                    ctx.send(
                        to,
                        NetMsg::Subscribe {
                            stream,
                            last_stable,
                            saw_tentative,
                            fresh_only,
                        },
                    );
                }
                UpstreamAction::Unsubscribe { from } => {
                    ctx.send(from, NetMsg::Unsubscribe { stream });
                }
            }
        }
    }

    /// Charges CPU time for a batch and retains its output batches by
    /// shared view, then dispatches across the busy window.
    fn handle_batch<C: RuntimeCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
        batch: Batch,
        event_time: Time,
    ) {
        let start = self.busy_until.max(event_time);
        let cost = Duration::from_micros(
            self.cfg
                .tuning
                .per_tuple_cost
                .as_micros()
                .saturating_mul(batch.work),
        );
        self.busy_until = start + cost;
        for (stream, tuples) in batch.outputs {
            if let Some(buf) = self.out.get_mut(&stream) {
                buf.append_batch(tuples);
            }
        }
        self.flush_subscribers(ctx, start, self.busy_until);
    }

    /// Sends every subscriber its pending emission-log suffix, spreading
    /// departures across `[w_start, w_end]` (outputs stream out as the CPU
    /// produces them, rather than in one burst at the end).
    ///
    /// The suffix is taken as shared batch views and re-chunked by range
    /// split, so N subscribers behind the same position cost N
    /// reference-count bumps per batch — fan-out is independent of
    /// replication degree.
    fn flush_subscribers<C: RuntimeCtx + ?Sized>(
        &mut self,
        ctx: &mut C,
        w_start: Time,
        w_end: Time,
    ) {
        let chunk = self.cfg.tuning.dispatch_chunk.max(1);
        for (&stream, subs) in &mut self.subscribers {
            let Some(buf) = self.out.get(&stream) else {
                continue;
            };
            let end = buf.end();
            for (&sub, pos) in subs.iter_mut() {
                if *pos >= end {
                    continue;
                }
                let pieces: Vec<_> = buf
                    .batches_from(*pos)
                    .iter()
                    .flat_map(|b| b.chunks_shared(chunk))
                    .collect();
                *pos = end;
                let n_chunks = pieces.len();
                let window = w_end.since(w_start);
                for (j, piece) in pieces.into_iter().enumerate() {
                    let frac = (j + 1) as u64;
                    let depart = w_start
                        + Duration::from_micros(window.as_micros() * frac / n_chunks.max(1) as u64);
                    ctx.send_after(
                        sub,
                        NetMsg::Data {
                            stream,
                            tuples: piece.into(),
                        },
                        depart,
                    );
                }
            }
        }
    }

    fn refresh_state(&mut self) {
        if self.state != NodeState::Stabilization {
            let input_dead = self.ums.iter().any(|u| !u.has_live_producer());
            self.state = if self.fragment.is_tainted() || input_dead {
                NodeState::UpFailure
            } else {
                NodeState::Stable
            };
        }
    }

    fn post_event<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        self.refresh_state();
        if let Some(d) = self.fragment.next_deadline() {
            let at = d.max(ctx.now());
            if self.scheduled_tick != Some(at) {
                self.scheduled_tick = Some(at);
                ctx.set_timer(at, TIMER_TICK);
            }
        }
        self.check_reconcile(ctx);
    }

    /// The stagger protocol's requesting side (Fig. 9).
    fn check_reconcile<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        if self.state == NodeState::Stabilization
            || self.pending_request.is_some()
            || !self.granted_to.is_empty()
            || !self.fragment.can_reconcile()
        {
            return;
        }
        let reachable: Vec<NodeId> = self
            .cfg
            .replicas
            .iter()
            .copied()
            .filter(|&r| ctx.reachable(r))
            .collect();
        if reachable.is_empty() {
            // No partner can cover for us (or we are unreplicated, as in
            // the paper's Fig. 11 single-node runs): reconcile directly.
            self.do_reconcile(ctx);
            return;
        }
        let target = reachable[ctx.rand_range(reachable.len() as u64) as usize];
        self.pending_request = Some(target);
        ctx.send(target, NetMsg::ReconcileRequest);
        ctx.set_timer(
            ctx.now() + self.cfg.tuning.retry_wait.saturating_mul(5),
            TIMER_RETRY,
        );
    }

    fn do_reconcile<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        let now = ctx.now();
        self.state = NodeState::Stabilization;
        let batch = self.fragment.reconcile(now);
        self.handle_batch(ctx, batch, now);
        self.stab_done_at = Some(self.busy_until.max(now));
        ctx.set_timer(self.busy_until.max(now), TIMER_STAB_DONE);
    }

    fn stream_states(&self) -> Vec<(StreamId, NodeState)> {
        // With an input stream whose every producer is unreachable, all
        // outputs are suspect (coarse §8.2 fallback: we do not track which
        // branch each input feeds).
        let input_dead = self.ums.iter().any(|u| !u.has_live_producer());
        self.fragment
            .output_health()
            .into_iter()
            .map(|(s, tentative)| {
                let st = if self.state == NodeState::Stabilization {
                    NodeState::Stabilization
                } else if tentative || input_dead {
                    NodeState::UpFailure
                } else {
                    NodeState::Stable
                };
                (s, st)
            })
            .collect()
    }
}

/// The protocol body, written once against [`RuntimeCtx`]. The
/// `borealis_sim::Actor` and [`DpcActor`] impls below forward here, so the
/// identical logic runs under the simulator (static dispatch) and the
/// thread engine (dynamic dispatch).
impl ProcessingNode {
    /// Startup: recover from disk if a durable store exists, then
    /// subscribe to upstreams and arm the periodic timers. The disk
    /// recovery runs *before* the first `Subscribe`, so the subscription
    /// carries the recovered stable positions — the upstream replays only
    /// the suffix the disk image does not cover.
    pub fn start<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        let now = ctx.now();
        let specs = self.cfg.upstreams.clone();
        for spec in specs {
            self.ums.push(UpstreamManager::new(
                spec.stream,
                spec.candidates,
                spec.monitor,
                now,
            ));
        }
        if let Some(dcfg) = self.cfg.durability.clone() {
            self.recover_from_disk(ctx, &dcfg);
            ctx.set_timer(now + dcfg.interval, TIMER_CHECKPOINT);
        }
        for i in 0..self.ums.len() {
            let actions = self.ums[i].initial_subscribe();
            let stream = self.ums[i].stream();
            self.apply_actions(ctx, stream, actions);
        }
        ctx.set_timer(now + self.cfg.tuning.heartbeat_period, TIMER_HEARTBEAT);
        ctx.set_timer(now + self.cfg.tuning.ack_period, TIMER_ACK);
    }

    /// Opens the durable store and, when it holds a snapshot, performs
    /// the crash→restart→catch-up sequence: restore the operator states,
    /// replay the logged input suffix through the fragment (charging the
    /// modeled CPU — catching up takes real time), and seed the upstream
    /// managers so their first `Subscribe` resumes where the disk image
    /// ends. A cold or unreadable store degrades to the volatile §4.5
    /// empty-state start.
    fn recover_from_disk<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, dcfg: &DurabilityConfig) {
        self.disk = None; // close a previous incarnation's handles first
        let wall_start = std::time::Instant::now();
        let mut disk = match NodeDisk::open(dcfg) {
            Ok(d) => d,
            Err(_) => return, // disk unavailable: run without durability
        };
        let image = match disk.recover() {
            Ok(Some(image)) => image,
            Ok(None) | Err(_) => {
                self.disk = Some(disk);
                return;
            }
        };
        if self.fragment.restore_durable(&image.ops_bytes).is_err() {
            // Undecodable operator region (e.g. plan changed across the
            // restart): fall back to the empty-state rebuild.
            self.disk = Some(disk);
            return;
        }
        let now = ctx.now();
        for &(stream, last_stable, saw_tentative) in &image.positions {
            if let Some(um) = self.ums.iter_mut().find(|u| u.stream() == stream) {
                um.seed_recovered(last_stable, saw_tentative);
            }
        }
        let n_replay = image.replay.len();
        for (stream, tuples) in image.replay {
            if let Some(um) = self.ums.iter_mut().find(|u| u.stream() == stream) {
                for t in tuples.as_slice() {
                    um.observe_replay(t);
                }
            }
            let batch = self.fragment.push_batch(stream, &tuples, now);
            self.handle_batch(ctx, batch, now);
        }
        let recover_us = wall_start.elapsed().as_micros() as u64;
        disk.write_recovery_marker(image.snapshot_id, recover_us, n_replay);
        self.disk = Some(disk);
        self.recovering = true;
        ctx.set_timer(self.busy_until.max(now), TIMER_RECOVERY_DONE);
    }

    /// Handles one protocol message.
    pub fn message<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Data { stream, tuples } => {
                let now = ctx.now();
                let Some(i) = self.ums.iter().position(|u| u.stream() == stream) else {
                    return;
                };
                if !self.ums[i].accepts_from(from) {
                    return; // stale sender (already unsubscribed)
                }
                let mut actions = Vec::new();
                // Duplicate detection (retransmissions after a link heal)
                // interleaves with prefix bookkeeping, as tuple-at-a-time
                // processing would.
                let mut dup_idx: Vec<usize> = Vec::new();
                for (k, t) in tuples.iter().enumerate() {
                    if self.ums[i].is_duplicate(t) {
                        dup_idx.push(k);
                        continue;
                    }
                    actions.extend(self.ums[i].observe_tuple(from, t));
                }
                let batch = if dup_idx.is_empty() {
                    // Common case: the received view enters the fragment
                    // run by run as shared slices, no tuple copies.
                    if let Some(disk) = self.disk.as_mut() {
                        disk.append_input(stream, &tuples);
                    }
                    self.fragment.push_view(stream, &tuples, now)
                } else {
                    let mut fresh: Vec<Tuple> = Vec::with_capacity(tuples.len() - dup_idx.len());
                    let mut d = 0;
                    for (k, t) in tuples.iter().enumerate() {
                        if d < dup_idx.len() && dup_idx[d] == k {
                            d += 1;
                            continue;
                        }
                        fresh.push(t.clone());
                    }
                    let fresh: BatchView = TupleBatch::from_vec(fresh).into();
                    // Only deduplicated input reaches the log, so a replay
                    // feeds the fragment the exact accepted stream.
                    if let Some(disk) = self.disk.as_mut() {
                        disk.append_input(stream, &fresh);
                    }
                    self.fragment.push_view(stream, &fresh, now)
                };
                self.handle_batch(ctx, batch, now);
                // Credit accounting: this delivery is consumed when the
                // modeled CPU has processed it — a saturated node returns
                // credits late, which is what makes its upstream links
                // stall instead of flooding its mailbox.
                ctx.data_consumed_at(self.busy_until);
                self.apply_actions(ctx, stream, actions);
                self.post_event(ctx);
            }
            NetMsg::Subscribe {
                stream,
                last_stable,
                saw_tentative,
                fresh_only,
            } => {
                if self.recovering {
                    return;
                }
                let Some(buf) = self.out.get_mut(&stream) else {
                    return;
                };
                let pos = if fresh_only {
                    buf.end()
                } else {
                    buf.position_after_stable(last_stable)
                };
                if saw_tentative && !fresh_only {
                    ctx.send(
                        from,
                        NetMsg::Data {
                            stream,
                            tuples: TupleBatch::single(Tuple::undo(TupleId::NONE, last_stable))
                                .into(),
                        },
                    );
                }
                self.subscribers
                    .entry(stream)
                    .or_default()
                    .insert(from, pos);
                let start = self.busy_until.max(ctx.now());
                self.flush_subscribers(ctx, start, start);
            }
            NetMsg::Unsubscribe { stream } => {
                if let Some(subs) = self.subscribers.get_mut(&stream) {
                    subs.remove(&from);
                }
            }
            NetMsg::Ack { stream, through } => {
                let acks = self.acks.entry(stream).or_default();
                let e = acks.entry(from).or_insert(TupleId::NONE);
                *e = (*e).max(through);
                let expected = self
                    .cfg
                    .downstream_counts
                    .iter()
                    .find(|(s, _)| *s == stream)
                    .map(|(_, n)| *n)
                    .unwrap_or(usize::MAX);
                if acks.len() >= expected {
                    let min = acks.values().copied().min().unwrap_or(TupleId::NONE);
                    if let Some(buf) = self.out.get_mut(&stream) {
                        buf.truncate_through(min);
                    }
                }
            }
            NetMsg::HeartbeatReq => {
                if self.recovering {
                    return; // §4.5: no replies until consistent again
                }
                let resp = NetMsg::HeartbeatResp {
                    node_state: self.state,
                    stream_states: self.stream_states(),
                };
                ctx.send(from, resp);
            }
            NetMsg::HeartbeatResp {
                node_state,
                stream_states,
            } => {
                let now = ctx.now();
                let stale = self.cfg.tuning.stale_timeout;
                for i in 0..self.ums.len() {
                    self.ums[i].heartbeat_response(from, node_state, &stream_states, now);
                    let actions = self.ums[i].evaluate(now, stale);
                    let stream = self.ums[i].stream();
                    self.apply_actions(ctx, stream, actions);
                }
            }
            NetMsg::ReconcileRequest => {
                let must_reject = self.state == NodeState::Stabilization
                    || self.recovering
                    || (self.fragment.can_reconcile() && ctx.id() < from);
                if must_reject {
                    ctx.send(from, NetMsg::ReconcileReject);
                } else {
                    self.granted_to.push((from, ctx.now()));
                    ctx.set_timer(
                        ctx.now() + self.cfg.tuning.grant_timeout,
                        TIMER_GRANT_TIMEOUT,
                    );
                    ctx.send(from, NetMsg::ReconcileGrant);
                }
            }
            NetMsg::ReconcileGrant => {
                if self.pending_request == Some(from) {
                    self.pending_request = None;
                    if self.state != NodeState::Stabilization
                        && self.granted_to.is_empty()
                        && self.fragment.can_reconcile()
                    {
                        self.authorized_by = Some(from);
                        self.do_reconcile(ctx);
                    }
                }
            }
            NetMsg::ReconcileReject => {
                if self.pending_request == Some(from) {
                    self.pending_request = None;
                    ctx.set_timer(ctx.now() + self.cfg.tuning.retry_wait, TIMER_RETRY);
                }
            }
            NetMsg::ReconcileDone => {
                self.granted_to.retain(|(n, _)| *n != from);
                self.check_reconcile(ctx);
            }
        }
    }

    /// Handles one timer callback.
    pub fn timer<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, kind: u64) {
        let now = ctx.now();
        match kind {
            TIMER_TICK => {
                self.scheduled_tick = None;
                let batch = self.fragment.tick(now);
                self.handle_batch(ctx, batch, now);
                self.post_event(ctx);
            }
            TIMER_HEARTBEAT => {
                let stale = self.cfg.tuning.stale_timeout;
                for i in 0..self.ums.len() {
                    let actions = self.ums[i].evaluate(now, stale);
                    let stream = self.ums[i].stream();
                    self.apply_actions(ctx, stream, actions);
                    for target in self.ums[i].heartbeat_targets() {
                        ctx.send(target, NetMsg::HeartbeatReq);
                    }
                }
                // A stabilization grant held for a peer that is no longer
                // reachable (crashed or partitioned away) staggers nothing
                // — the partner cannot be mid-stabilization relying on us
                // if it cannot even talk to us. Drop such grants so this
                // replica stays free to reconcile its own state; the
                // grant_timeout remains the backstop for in-flight races.
                let before = self.granted_to.len();
                self.granted_to.retain(|(n, _)| ctx.reachable(*n));
                if self.granted_to.len() < before {
                    self.check_reconcile(ctx);
                }
                // Credit-stall surfacing: when the active producer of an
                // input stream has its sends queued awaiting credit, report
                // the stall to that stream's input SUnions. A stall that
                // outlasts the detection delay becomes an explicit
                // UP_FAILURE — overload turns into delayed buckets under
                // the DelayMode budget, not silent unbounded buffering.
                for i in 0..self.ums.len() {
                    let from = self.ums[i].current();
                    let stalled = ctx.inbound_stall(from);
                    if stalled > Duration::ZERO {
                        let stream = self.ums[i].stream();
                        let batch = self.fragment.note_input_stall(stream, stalled, now);
                        self.handle_batch(ctx, batch, now);
                        self.post_event(ctx);
                    }
                }
                self.refresh_state();
                ctx.set_timer(now + self.cfg.tuning.heartbeat_period, TIMER_HEARTBEAT);
            }
            TIMER_ACK => {
                for um in &self.ums {
                    let through = um.last_stable();
                    for &cand in um.candidates() {
                        ctx.send(
                            cand,
                            NetMsg::Ack {
                                stream: um.stream(),
                                through,
                            },
                        );
                    }
                }
                ctx.set_timer(now + self.cfg.tuning.ack_period, TIMER_ACK);
            }
            TIMER_RETRY => {
                self.pending_request = None;
                self.check_reconcile(ctx);
            }
            TIMER_STAB_DONE => {
                if self.stab_done_at.is_none() {
                    return; // stale timer from a superseded stabilization
                }
                if now < self.busy_until {
                    // Fresh input extended the queue past the original
                    // estimate: stabilization ends only when the node
                    // "catches up with normal execution" (§4.4.2).
                    self.stab_done_at = Some(self.busy_until);
                    ctx.set_timer(self.busy_until, TIMER_STAB_DONE);
                    return;
                }
                self.stab_done_at = None;
                // Caught up: emit REC_DONE (and any final UNDO) on every
                // output stream, then leave STABILIZATION.
                let batch = self.fragment.finish_reconciliation(now);
                self.handle_batch(ctx, batch, now);
                self.state = if self.fragment.is_tainted() {
                    NodeState::UpFailure
                } else {
                    NodeState::Stable
                };
                if let Some(partner) = self.authorized_by.take() {
                    ctx.send(partner, NetMsg::ReconcileDone);
                }
                self.post_event(ctx);
            }
            TIMER_CHECKPOINT => {
                if let Some(disk) = self.disk.as_mut() {
                    // Only an untainted fragment yields a durable image
                    // (checkpoint-before-tentative, §4.4.1: tentative eras
                    // are recovered via upstream replay, not from disk).
                    if let Some(parts) = self.fragment.capture_durable() {
                        let positions: Vec<(StreamId, TupleId, bool)> = self
                            .ums
                            .iter()
                            .map(|u| (u.stream(), u.last_stable(), u.saw_tentative()))
                            .collect();
                        disk.checkpoint(parts, &positions);
                    }
                    let interval = self
                        .cfg
                        .durability
                        .as_ref()
                        .map(|d| d.interval)
                        .unwrap_or(Duration::from_millis(250));
                    ctx.set_timer(now + interval, TIMER_CHECKPOINT);
                }
            }
            TIMER_GRANT_TIMEOUT => {
                let timeout = self.cfg.tuning.grant_timeout;
                self.granted_to.retain(|(_, t)| now.since(*t) < timeout);
                self.check_reconcile(ctx);
            }
            TIMER_RECOVERY_DONE => {
                if now >= self.busy_until {
                    self.recovering = false;
                    self.post_event(ctx);
                } else {
                    // Still draining the recovery backlog: check again when
                    // the CPU catches up.
                    ctx.set_timer(self.busy_until, TIMER_RECOVERY_DONE);
                }
            }
            _ => {}
        }
    }

    /// Reacts to a fault notification (link heals, own crash/restart).
    pub fn fault<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, fault: &FaultEvent) {
        match fault {
            FaultEvent::LinkUp { a, b } => {
                // In-flight output tuples may have been lost: rewind healed
                // subscribers to their acknowledged positions and resend
                // (consumers deduplicate the overlap).
                let peer = if *a == ctx.id() { *b } else { *a };
                for (&stream, subs) in &mut self.subscribers {
                    let Some(pos) = subs.get_mut(&peer) else {
                        continue;
                    };
                    let acked = self
                        .acks
                        .get(&stream)
                        .and_then(|m| m.get(&peer))
                        .copied()
                        .unwrap_or(TupleId::NONE);
                    if let Some(buf) = self.out.get_mut(&stream) {
                        *pos = (*pos).min(buf.position_after_stable(acked));
                    }
                }
                let start = self.busy_until.max(ctx.now());
                self.flush_subscribers(ctx, start, start);
            }
            FaultEvent::NodeUp(n) if *n == ctx.id() => {
                // Crash recovery: restart from an empty state (§4.5) —
                // unless a durable store is configured, in which case
                // `start` reloads the newest snapshot and replays the
                // logged input suffix before resubscribing.
                self.fragment = Fragment::from_plan(&self.cfg.plan);
                self.out = self
                    .fragment
                    .output_streams()
                    .into_iter()
                    .map(|s| (s, OutputBuffer::new(self.cfg.tuning.buffer_policy)))
                    .collect();
                self.subscribers.clear();
                self.acks.clear();
                self.ums.clear();
                self.busy_until = ctx.now();
                self.state = NodeState::Stable;
                self.pending_request = None;
                self.granted_to.clear();
                self.authorized_by = None;
                self.recovering = true;
                self.start(ctx);
                ctx.set_timer(ctx.now() + Duration::from_millis(500), TIMER_RECOVERY_DONE);
            }
            FaultEvent::NodeDown(n) if *n != ctx.id() => {
                // The transport saw the connection to `n`'s process torn (a
                // crash, not a scripted fault — those only notify the
                // victim). Everything `n` knew about us died with it:
                // upstream subscriptions we held there are gone even if it
                // restarts before a keep-alive goes stale, and a
                // subscription *it* held here will be re-requested from
                // scratch once it recovers.
                let now = ctx.now();
                for um in &mut self.ums {
                    um.connection_lost(*n, now);
                }
                for subs in self.subscribers.values_mut() {
                    subs.remove(n);
                }
                for acks in self.acks.values_mut() {
                    acks.remove(n);
                }
            }
            _ => {}
        }
    }
}

/// Simulator adapter: static dispatch into the shared protocol body.
impl Actor<NetMsg> for ProcessingNode {
    fn on_start(&mut self, ctx: &mut Ctx<NetMsg>) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Ctx<NetMsg>, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut Ctx<NetMsg>, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut Ctx<NetMsg>, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}

/// Thread-engine adapter: dynamic dispatch into the shared protocol body.
impl DpcActor for ProcessingNode {
    fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut dyn RuntimeCtx, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut dyn RuntimeCtx, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}
