//! Per-node durability: periodic durable checkpoints plus a replayable
//! input log, so a crashed node restarts from disk instead of from an
//! empty state (§4.5's recovery, supplemented with persistent storage).
//!
//! Layout (one [`borealis_store::NodeStore`] per node replica):
//!
//! * `objects/<hash>.obj` — immutable, content-addressed checkpoint
//!   objects: a small header (recovered subscription positions, the log
//!   prefix the snapshot covers) followed by every operator's
//!   [`SnapshotCodec`]-encoded state.
//! * `HEAD` / `HEAD.prev` — the atomically flipped pointer to the newest
//!   intact object (write–rename–fsync; a torn flip falls back).
//! * `log/` — the append-only input log, truncated by snapshot id: once a
//!   published snapshot covers a log prefix, the covered closed segments
//!   are removed.
//!
//! Capture stays off the hot path: the node hands the copy-on-write
//! [`OpSnapshot`] `Arc`s to a background flusher (or serializes inline in
//! deterministic simulator runs); encoding and fsync happen outside the
//! actor's message loop.

use borealis_engine::encode_durable_capture;
use borealis_ops::{OpSnapshot, SnapshotCodec};
use borealis_store::{LogWriter, NodeStore, StoreError};
use borealis_types::wire::{self, Reader};
use borealis_types::{BatchView, Duration, StreamId, TupleBatch, TupleId};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;

/// Durability settings of one node replica (see
/// `SystemBuilder::durability` for deployment-wide wiring).
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory of this node's store.
    pub dir: PathBuf,
    /// Checkpoint period.
    pub interval: Duration,
    /// Serialize and publish snapshots on a background flusher thread
    /// (real runtimes) instead of inline (deterministic simulator runs,
    /// where wall-clock work must not depend on scheduling).
    pub background: bool,
    /// `fsync` the input log after every append. Correctness does not
    /// require it: the log suffix past the last *published* snapshot is
    /// re-fetched from upstream on restart (the initial `Subscribe`
    /// carries the recovered position), so an unsynced tail only widens
    /// the replay window.
    pub sync_log: bool,
}

impl DurabilityConfig {
    /// Defaults: 250 ms interval, inline flush, no per-append fsync.
    pub fn new(dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            dir: dir.into(),
            interval: Duration::from_millis(250),
            background: false,
            sync_log: false,
        }
    }
}

const SNAPSHOT_VERSION: u32 = 1;

/// Parsed snapshot header: (snapshot id, covered log seq, per-stream
/// `(stream, last stable, saw tentative)` positions).
type SnapshotHeader = (u64, u64, Vec<(StreamId, TupleId, bool)>);

/// Everything a restarting node recovers from its store.
pub struct RecoveredImage {
    /// Id of the snapshot the image is based on.
    pub snapshot_id: u64,
    /// Per-input-stream subscription positions at capture time:
    /// `(stream, last_stable, saw_tentative)`.
    pub positions: Vec<(StreamId, TupleId, bool)>,
    /// The operator-state region (fed to `Fragment::restore_durable`).
    pub ops_bytes: Vec<u8>,
    /// Input-log suffix past the snapshot, in append order.
    pub replay: Vec<(StreamId, TupleBatch)>,
    /// True when `HEAD` was torn by a crash mid-flip and the previous
    /// snapshot was used instead.
    pub fell_back: bool,
}

/// One durable checkpoint handed to the flusher: the header is already
/// encoded; the operator states are still shared `Arc`s (serialized off
/// the hot path).
struct FlushJob {
    snapshot_id: u64,
    covered_seq: u64,
    header: Vec<u8>,
    parts: Vec<(SnapshotCodec, OpSnapshot)>,
}

struct Flusher {
    tx: Option<mpsc::Sender<FlushJob>>,
    handle: Option<thread::JoinHandle<()>>,
}

/// A node's open durable state: the store, the input-log writer, and the
/// optional background flusher.
pub struct NodeDisk {
    store: NodeStore,
    log: LogWriter,
    next_snapshot_id: u64,
    flusher: Option<Flusher>,
}

fn publish_job(store: &NodeStore, job: FlushJob) {
    let mut payload = job.header;
    encode_durable_capture(&job.parts, &mut payload);
    // A full disk must not take the stream down: durability degrades, the
    // DPC replica protocol still covers the node.
    if store.publish(job.snapshot_id, &payload).is_ok() {
        let _ = store.prune_log(job.covered_seq);
    }
}

impl NodeDisk {
    /// Opens (or creates) the store and resumes the input log.
    pub fn open(cfg: &DurabilityConfig) -> Result<NodeDisk, StoreError> {
        let store = NodeStore::open(&cfg.dir)?;
        let log = LogWriter::open(&store, cfg.sync_log)?;
        let next_snapshot_id = store.head()?.map_or(1, |h| h.snapshot_id + 1);
        let flusher = if cfg.background {
            let own = NodeStore::open(&cfg.dir)?;
            let (tx, rx) = mpsc::channel::<FlushJob>();
            let handle = thread::Builder::new()
                .name("borealis-flusher".into())
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        publish_job(&own, job);
                    }
                })
                .map_err(StoreError::Io)?;
            Some(Flusher {
                tx: Some(tx),
                handle: Some(handle),
            })
        } else {
            None
        };
        Ok(NodeDisk {
            store,
            log,
            next_snapshot_id,
            flusher,
        })
    }

    /// The underlying store (markers, diagnostics).
    pub fn store(&self) -> &NodeStore {
        &self.store
    }

    /// Appends one deduplicated input view to the log, encoding straight
    /// from the selection (the record format matches `wire::put_batch`, so
    /// recovery still decodes contiguous batches).
    pub fn append_input(&mut self, stream: StreamId, tuples: &BatchView) {
        let mut buf = Vec::with_capacity(16 + tuples.len() * 24);
        wire::put_u64(&mut buf, stream.0 as u64);
        wire::put_view(&mut buf, tuples);
        let _ = self.log.append(&buf);
    }

    /// Captures one durable checkpoint. The CoW `Arc`s in `parts` are
    /// serialized by the flusher (or inline when none), so this returns in
    /// microseconds regardless of state size. The snapshot covers the
    /// current log prefix, which is synced first so recovery never resumes
    /// from a snapshot whose input basis is gone.
    pub fn checkpoint(
        &mut self,
        parts: Vec<(SnapshotCodec, OpSnapshot)>,
        positions: &[(StreamId, TupleId, bool)],
    ) -> u64 {
        let covered_seq = self.log.last_seq();
        let _ = self.log.sync();
        let snapshot_id = self.next_snapshot_id;
        self.next_snapshot_id += 1;
        let mut header = Vec::new();
        wire::put_u32(&mut header, SNAPSHOT_VERSION);
        wire::put_u64(&mut header, snapshot_id);
        wire::put_u64(&mut header, covered_seq);
        wire::put_u32(&mut header, positions.len() as u32);
        for &(stream, last_stable, saw_tentative) in positions {
            wire::put_u64(&mut header, stream.0 as u64);
            wire::put_u64(&mut header, last_stable.0);
            wire::put_u8(&mut header, saw_tentative as u8);
        }
        let job = FlushJob {
            snapshot_id,
            covered_seq,
            header,
            parts,
        };
        match self.flusher.as_ref().and_then(|f| f.tx.as_ref()) {
            Some(tx) => {
                let _ = tx.send(job);
            }
            None => publish_job(&self.store, job),
        }
        snapshot_id
    }

    /// Loads the newest intact snapshot and the replayable log suffix past
    /// it. `Ok(None)` on a cold (empty) store. A torn log tail is expected
    /// after a crash — the valid prefix is kept, the rest is re-fetched
    /// from upstream.
    pub fn recover(&mut self) -> Result<Option<RecoveredImage>, StoreError> {
        let Some(loaded) = self.store.load_latest()? else {
            return Ok(None);
        };
        let fell_back = loaded.fell_back.is_some();
        let mut r = Reader::new(&loaded.payload);
        let parse = |r: &mut Reader<'_>| -> Result<SnapshotHeader, StoreError> {
            let version = r.u32()?;
            if version != SNAPSHOT_VERSION {
                return Err(StoreError::Corrupt {
                    what: "snapshot version",
                    detail: format!("unsupported version {version}"),
                });
            }
            let snapshot_id = r.u64()?;
            let covered_seq = r.u64()?;
            let n = r.u32()? as usize;
            let mut positions = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let stream = StreamId(r.u64()? as u32);
                let last_stable = TupleId(r.u64()?);
                let saw_tentative = r.u8()? != 0;
                positions.push((stream, last_stable, saw_tentative));
            }
            Ok((snapshot_id, covered_seq, positions))
        };
        let (snapshot_id, covered_seq, positions) = parse(&mut r)?;
        let ops_bytes = r.bytes(r.remaining())?.to_vec();

        let (records, _torn_tail) = self.store.read_log(covered_seq)?;
        let mut replay = Vec::with_capacity(records.len());
        for (_seq, body) in records {
            let mut rr = Reader::new(&body);
            let stream = StreamId(rr.u64()? as u32);
            let batch = rr.batch()?;
            rr.finish()?;
            replay.push((stream, batch));
        }
        Ok(Some(RecoveredImage {
            snapshot_id,
            positions,
            ops_bytes,
            replay,
            fell_back,
        }))
    }

    /// Records the outcome of a recovery in a marker file (read by tests
    /// and the recovery benchmark): the snapshot restored, the wall-clock
    /// micros the load + replay took, and the number of log records
    /// replayed (kept last so simple suffix parsers keep working).
    pub fn write_recovery_marker(&self, snapshot_id: u64, recover_us: u64, replayed: usize) {
        let contents =
            format!("snapshot={snapshot_id} recover_us={recover_us} replayed={replayed}");
        let _ = self
            .store
            .write_marker("last_recovery", contents.as_bytes());
    }
}

impl Drop for NodeDisk {
    fn drop(&mut self) {
        // Queued snapshots reach disk before shutdown: close the channel,
        // then join the flusher.
        if let Some(mut f) = self.flusher.take() {
            drop(f.tx.take());
            if let Some(h) = f.handle.take() {
                let _ = h.join();
            }
        }
        let _ = self.log.sync();
    }
}
