//! Deployment description and launchers: wires sources, replicated fragment
//! nodes, and a client proxy into one runnable system (the Fig. 2
//! replicated query diagram).
//!
//! The pipeline is split into a **runtime-independent** half and
//! **per-runtime launchers**:
//!
//! 1. [`SystemBuilder`] accumulates the description: sources, plan,
//!    replication, tuning, watched streams, and a fault script expressed
//!    against the *topology* (stream ids, fragment indexes, replica
//!    indexes — never raw actor ids).
//! 2. [`SystemBuilder::layout`] resolves it into a [`SystemLayout`]: a
//!    deterministic actor-id assignment (sources, then each fragment's
//!    replicas in order, then the client), per-actor configurations with
//!    upstream candidate sets and downstream consumer counts (for §8.1
//!    truncation), and the fault script lowered to concrete
//!    [`FaultEvent`]s.
//! 3. A launcher turns the layout into a running system:
//!    [`SystemLayout::deploy_sim`] (or the [`SystemBuilder::build`]
//!    shorthand) under the deterministic simulator, and
//!    `borealis_runtime::deploy_threads` under the real-time thread
//!    engine. Both deploy the *same* actor objects — the protocol code
//!    never knows which runtime drives it.

use crate::client::{ClientProxy, ClientStream, ClientTuning};
use crate::durable::DurabilityConfig;
use crate::metrics::MetricsHub;
use crate::msg::NetMsg;
use crate::node::{NodeConfig, NodeTuning, ProcessingNode, UpstreamSpec};
use crate::runtime::DpcActor;
use crate::source::{DataSource, SourceConfig};
use borealis_diagram::{PhysicalPlan, StreamOrigin};
use borealis_sim::{Actor, FaultEvent, Network, Sim};
use borealis_types::{CreditPolicy, Duration, FlowGauges, NodeId, PartitionSpec, StreamId, Time};
use std::collections::HashMap;

/// A scripted fault expressed against the runtime-independent topology:
/// streams, fragment indexes, and replica indexes instead of raw actor
/// ids, so the same script runs under any runtime.
#[derive(Debug, Clone)]
pub enum FaultSpec {
    /// Disconnect `stream`'s source from every replica of fragment `frag`
    /// between `from` and `to` (§5/§6.1: "temporarily disconnecting one of
    /// the input streams without stopping the data source").
    DisconnectSource {
        /// The source's stream.
        stream: StreamId,
        /// Fragment whose replicas lose the source.
        frag: usize,
        /// Disconnection instant.
        from: Time,
        /// Heal instant.
        to: Time,
    },
    /// Mute only the boundary tuples of `stream`'s source between `from`
    /// and `to` (the §6.2 chain-experiment failure: data keeps flowing).
    MuteBoundaries {
        /// The source's stream.
        stream: StreamId,
        /// Mute instant.
        from: Time,
        /// Unmute instant.
        to: Time,
    },
    /// Crash replica `replica` of shard `shard` of logical fragment `frag`
    /// at `from`; restart at `to` if given (§2.2 crash failures: volatile
    /// state is lost). Unsharded fragments have a single shard 0.
    CrashReplica {
        /// Logical fragment index (deployment-spec order).
        frag: usize,
        /// Shard index within the fragment (0 for unsharded fragments).
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
        /// Crash instant.
        from: Time,
        /// Optional restart instant.
        to: Option<Time>,
    },
    /// Kill replica `replica` of shard `shard` of logical fragment `frag`
    /// at `after`, then respawn it [`RESTART_DELAY`] later. With
    /// durability enabled ([`SystemBuilder::durability`]) the respawned
    /// node restarts *from disk*: it loads its latest checkpoint, replays
    /// the bounded input-log suffix, re-registers with its upstreams, and
    /// rejoins the DPC protocol.
    RestartReplica {
        /// Logical fragment index (deployment-spec order).
        frag: usize,
        /// Shard index within the fragment (0 for unsharded fragments).
        shard: usize,
        /// Replica index within the shard.
        replica: usize,
        /// Kill instant; the respawn follows [`RESTART_DELAY`] later.
        after: Time,
    },
}

/// How long a [`FaultSpec::RestartReplica`] stays down: the modeled
/// process-respawn time between the kill and the restart.
pub const RESTART_DELAY: Duration = Duration::from_millis(300);

/// Builds a complete deployment description from a planned
/// [`PhysicalPlan`] (which carries the fragment cut, per-fragment
/// replication, and sharding — see `borealis_diagram::plan_deployment`),
/// the data sources, the watched client streams, and a [`FaultSpec`] list.
pub struct SystemBuilder {
    seed: u64,
    latency: Duration,
    sources: Vec<SourceConfig>,
    plan: Option<PhysicalPlan>,
    node_tuning: NodeTuning,
    client_tuning: ClientTuning,
    client_streams: Vec<StreamId>,
    metrics: MetricsHub,
    faults: Vec<FaultSpec>,
    flow_policy: CreditPolicy,
    workers: Option<usize>,
    durability: Option<(std::path::PathBuf, Duration, bool)>,
}

impl SystemBuilder {
    /// Starts a builder with the given determinism seed and link latency
    /// (the latency applies to the simulator; the thread engine runs at
    /// native channel latency).
    pub fn new(seed: u64, latency: Duration) -> SystemBuilder {
        SystemBuilder {
            seed,
            latency,
            sources: Vec::new(),
            plan: None,
            node_tuning: NodeTuning::default(),
            client_tuning: ClientTuning::default(),
            client_streams: Vec::new(),
            metrics: MetricsHub::new(),
            faults: Vec::new(),
            flow_policy: CreditPolicy::default(),
            workers: None,
            durability: None,
        }
    }

    /// Enables durable checkpoints and a replayable input log on every
    /// node replica. Each replica gets its own store under
    /// `root/node-<id>`; `interval` is the checkpoint period;
    /// `background` moves snapshot serialization to a flusher thread
    /// (keep it `false` for deterministic simulator runs).
    pub fn durability(
        mut self,
        root: impl Into<std::path::PathBuf>,
        interval: Duration,
        background: bool,
    ) -> Self {
        self.durability = Some((root.into(), interval, background));
        self
    }

    /// Sets the transport's credit-based flow-control policy (all links;
    /// defaults to [`CreditPolicy::Unbounded`], the pre-credit behavior).
    pub fn credit_policy(mut self, policy: CreditPolicy) -> Self {
        self.flow_policy = policy;
        self
    }

    /// Sets the thread runtime's worker-pool size (the number of OS
    /// threads every actor multiplexes onto). Ignored by the simulator.
    /// Unset, the runtime picks a machine-derived default (overridable via
    /// the `BOREALIS_WORKERS` environment variable).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Adds a data source.
    pub fn source(mut self, cfg: SourceConfig) -> Self {
        self.sources.push(cfg);
        self
    }

    /// Sets the physical plan to deploy. The plan's groups determine each
    /// fragment's replication degree, shard fan-out, and CPU-cost override.
    pub fn plan(mut self, plan: PhysicalPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Node tuning knobs (deployment-wide defaults; a fragment's
    /// `work_cost` override takes precedence for its replicas).
    pub fn node_tuning(mut self, t: NodeTuning) -> Self {
        self.node_tuning = t;
        self
    }

    /// Client tuning knobs.
    pub fn client_tuning(mut self, t: ClientTuning) -> Self {
        self.client_tuning = t;
        self
    }

    /// The client consumes these output streams.
    pub fn client_streams(mut self, streams: Vec<StreamId>) -> Self {
        self.client_streams = streams;
        self
    }

    /// Shares a metrics hub (to read results after the run).
    pub fn metrics(mut self, hub: MetricsHub) -> Self {
        self.metrics = hub;
        self
    }

    /// Adds one scripted fault (topology-level; see [`FaultSpec`]).
    pub fn fault(mut self, f: FaultSpec) -> Self {
        self.faults.push(f);
        self
    }

    /// Adds a list of scripted faults.
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultSpec>) -> Self {
        self.faults.extend(faults);
        self
    }

    /// Resolves the description into a runtime-independent [`SystemLayout`].
    ///
    /// # Panics
    /// Panics if no plan was provided, a consumed stream has no producer,
    /// or a scripted fault references a missing source/fragment/replica —
    /// all deployment bugs.
    pub fn layout(self) -> SystemLayout {
        let plan = self.plan.expect("SystemBuilder requires a plan");
        let n_sources = self.sources.len();
        let n_fragments = plan.fragments.len();

        // Per-physical-fragment settings from the plan's groups.
        let mut replication = vec![2usize; n_fragments];
        let mut cost_override: Vec<Option<Duration>> = vec![None; n_fragments];
        let mut buffer_override: Vec<Option<crate::buffers::BufferPolicy>> =
            vec![None; n_fragments];
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(plan.groups.len());
        for g in &plan.groups {
            for &fi in &g.fragments {
                replication[fi] = g.replication;
                cost_override[fi] = g.per_tuple_cost;
                buffer_override[fi] = g.buffer_policy;
            }
            groups.push(g.fragments.clone());
        }

        // Deterministic id layout: sources, then each physical fragment's
        // replicas in order (cumulative — replication varies per fragment),
        // then the client.
        let source_id = |i: usize| NodeId(i as u32);
        let mut frag_base = Vec::with_capacity(n_fragments);
        let mut next = n_sources;
        for &r in &replication {
            frag_base.push(next);
            next += r;
        }
        let node_id = |frag: usize, rep: usize| NodeId((frag_base[frag] + rep) as u32);
        let client_id = NodeId(next as u32);

        // Stream producers.
        let mut producers: HashMap<StreamId, Vec<NodeId>> = HashMap::new();
        for (i, s) in self.sources.iter().enumerate() {
            producers.insert(s.stream, vec![source_id(i)]);
        }
        for (fi, fp) in plan.fragments.iter().enumerate() {
            for out in &fp.outputs {
                let reps = (0..replication[fi]).map(|r| node_id(fi, r)).collect();
                producers.insert(out.stream, reps);
            }
        }

        // Downstream consumer counts per crossing stream.
        let mut consumer_counts: HashMap<StreamId, usize> = HashMap::new();
        for (fi, fp) in plan.fragments.iter().enumerate() {
            for input in &fp.inputs {
                *consumer_counts.entry(input.stream).or_default() += replication[fi];
            }
        }
        for s in &self.client_streams {
            *consumer_counts.entry(*s).or_default() += 1;
        }

        let mut actors: Vec<ActorSpec> = Vec::new();
        let mut source_ids = Vec::new();
        for (i, cfg) in self.sources.iter().enumerate() {
            actors.push(ActorSpec::Source(cfg.clone()));
            source_ids.push((cfg.stream, source_id(i)));
        }

        let mut fragment_replicas: Vec<Vec<NodeId>> = Vec::new();
        let mut partitions: Vec<(NodeId, PartitionSpec)> = Vec::new();
        for (fi, fp) in plan.fragments.iter().enumerate() {
            let ids: Vec<NodeId> = (0..replication[fi]).map(|r| node_id(fi, r)).collect();
            // A shard's replicas only accept their key partition of any
            // data stream: the layout turns the plan's shard assignment
            // into per-receiver filters both runtimes install.
            if let Some(sa) = &fp.shard {
                for &id in &ids {
                    partitions.push((
                        id,
                        PartitionSpec {
                            key: sa.key.clone(),
                            shards: sa.count,
                            index: sa.index,
                        },
                    ));
                }
            }
            let mut tuning = self.node_tuning.clone();
            if let Some(cost) = cost_override[fi] {
                tuning.per_tuple_cost = cost;
            }
            if let Some(policy) = buffer_override[fi] {
                tuning.buffer_policy = policy;
            }
            for &my_id in &ids {
                let replicas = ids.iter().copied().filter(|&r| r != my_id).collect();
                // One upstream spec per distinct input stream.
                let mut upstreams: Vec<UpstreamSpec> = Vec::new();
                for input in &fp.inputs {
                    if upstreams.iter().any(|u| u.stream == input.stream) {
                        continue;
                    }
                    let candidates = producers
                        .get(&input.stream)
                        .unwrap_or_else(|| panic!("no producer for {}", input.stream))
                        .clone();
                    // Fragment streams are monitored for Table II switching;
                    // source streams are monitored so that a node cut off
                    // from its sources detects the silence via missed
                    // keep-alives (Fig. 5) even with no data in flight.
                    let _ = matches!(input.origin, StreamOrigin::Fragment(_));
                    upstreams.push(UpstreamSpec {
                        stream: input.stream,
                        candidates,
                        monitor: true,
                    });
                }
                let downstream_counts = fp
                    .outputs
                    .iter()
                    .map(|o| {
                        (
                            o.stream,
                            consumer_counts.get(&o.stream).copied().unwrap_or(0),
                        )
                    })
                    .collect();
                debug_assert_eq!(actors.len(), my_id.index(), "id layout mismatch");
                let durability = self
                    .durability
                    .as_ref()
                    .map(|(root, interval, background)| DurabilityConfig {
                        dir: root.join(format!("node-{}", my_id.index())),
                        interval: *interval,
                        background: *background,
                        sync_log: false,
                    });
                actors.push(ActorSpec::Node(Box::new(NodeConfig {
                    plan: fp.clone(),
                    replicas,
                    upstreams,
                    downstream_counts,
                    tuning: tuning.clone(),
                    durability,
                })));
            }
            fragment_replicas.push(ids);
        }

        let client = if self.client_streams.is_empty() {
            None
        } else {
            let streams = self
                .client_streams
                .iter()
                .map(|&s| ClientStream {
                    stream: s,
                    candidates: producers
                        .get(&s)
                        .unwrap_or_else(|| panic!("no producer for {s}"))
                        .clone(),
                })
                .collect();
            debug_assert_eq!(actors.len(), client_id.index(), "id layout mismatch");
            actors.push(ActorSpec::Client {
                streams,
                tuning: self.client_tuning.clone(),
            });
            Some(client_id)
        };

        let mut layout = SystemLayout {
            seed: self.seed,
            latency: self.latency,
            metrics: self.metrics,
            actors,
            source_ids,
            fragment_replicas,
            groups,
            partitions,
            client,
            script: Vec::new(),
            flow_policy: self.flow_policy,
            workers: self.workers,
        };
        for f in &self.faults {
            layout.lower_fault(f);
        }
        layout.script.sort_by_key(|(at, _)| *at);
        layout
    }

    /// Resolves and deploys under the deterministic simulator (shorthand
    /// for `self.layout().deploy_sim()`; kept as the primary entry point of
    /// simulator-based tests and experiments).
    pub fn build(self) -> RunningSystem {
        self.layout().deploy_sim()
    }
}

/// Configuration of one actor in the deterministic id layout — everything a
/// runtime needs to instantiate it.
pub enum ActorSpec {
    /// A data source.
    Source(SourceConfig),
    /// A processing-node replica (boxed: a node's fragment plan dwarfs the
    /// other variants).
    Node(Box<NodeConfig>),
    /// The client proxy.
    Client {
        /// Watched output streams with their producing replicas.
        streams: Vec<ClientStream>,
        /// Client tuning knobs.
        tuning: ClientTuning,
    },
}

impl ActorSpec {
    /// Instantiates the actor behind the runtime-agnostic [`DpcActor`]
    /// interface (used by the thread engine).
    pub fn into_dpc_actor(self, metrics: &MetricsHub) -> Box<dyn DpcActor> {
        match self {
            ActorSpec::Source(cfg) => Box::new(DataSource::new(cfg)),
            ActorSpec::Node(cfg) => Box::new(ProcessingNode::new(*cfg)),
            ActorSpec::Client { streams, tuning } => {
                Box::new(ClientProxy::new(streams, tuning, metrics.clone()))
            }
        }
    }

    /// Instantiates the actor behind the simulator's `Actor` interface.
    pub fn into_sim_actor(self, metrics: &MetricsHub) -> Box<dyn Actor<NetMsg>> {
        match self {
            ActorSpec::Source(cfg) => Box::new(DataSource::new(cfg)),
            ActorSpec::Node(cfg) => Box::new(ProcessingNode::new(*cfg)),
            ActorSpec::Client { streams, tuning } => {
                Box::new(ClientProxy::new(streams, tuning, metrics.clone()))
            }
        }
    }
}

/// A resolved, runtime-independent deployment: actor configurations in
/// deterministic id order, topology lookup tables, and the fault script
/// lowered to concrete events. Feed it to [`SystemLayout::deploy_sim`] or
/// to `borealis_runtime::deploy_threads`.
pub struct SystemLayout {
    /// Determinism seed (simulator RNG; ignored by the thread engine except
    /// for per-actor RNG seeding).
    pub seed: u64,
    /// Link latency (simulated; the thread engine runs at native latency).
    pub latency: Duration,
    /// Metrics hub shared with the client proxy.
    pub metrics: MetricsHub,
    /// Actor configurations; index `i` is actor `NodeId(i)`.
    pub actors: Vec<ActorSpec>,
    /// Source actor ids, per stream.
    pub source_ids: Vec<(StreamId, NodeId)>,
    /// Node ids per physical fragment (outer index = physical fragment
    /// index; a sharded group contributes one entry per shard).
    pub fragment_replicas: Vec<Vec<NodeId>>,
    /// Physical fragment indexes per logical fragment, in shard order
    /// (identity for unsharded plans).
    pub groups: Vec<Vec<usize>>,
    /// Key-partition filters per shard-replica node, installed into the
    /// runtime's link routing at deploy time.
    pub partitions: Vec<(NodeId, PartitionSpec)>,
    /// The client proxy, if any.
    pub client: Option<NodeId>,
    /// Scripted faults, lowered to concrete events, sorted by time.
    pub script: Vec<(Time, FaultEvent)>,
    /// Credit-based flow-control policy of every link (both runtimes
    /// install it into their transport at deploy time).
    pub flow_policy: CreditPolicy,
    /// Worker-pool size for the thread runtime (`None`: runtime default).
    /// The simulator ignores it — scheduling there is virtual-time driven.
    pub workers: Option<usize>,
}

impl SystemLayout {
    /// Replica node ids of shard `shard` of logical fragment `frag`.
    ///
    /// # Panics
    /// Panics if the indexes are out of range (an experiment-script bug).
    pub fn shard_replicas(&self, frag: usize, shard: usize) -> &[NodeId] {
        &self.fragment_replicas[self.groups[frag][shard]]
    }
    /// The actor id of the source producing `stream`.
    ///
    /// # Panics
    /// Panics if no source produces `stream` (an experiment-script bug).
    pub fn source_of(&self, stream: StreamId) -> NodeId {
        self.source_ids
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("no source for {stream}"))
    }

    /// Lowers one topology-level fault into concrete events.
    fn lower_fault(&mut self, f: &FaultSpec) {
        match *f {
            FaultSpec::DisconnectSource {
                stream,
                frag,
                from,
                to,
            } => {
                let src = self.source_of(stream);
                for &fi in &self.groups[frag] {
                    for &node in &self.fragment_replicas[fi] {
                        self.script
                            .push((from, FaultEvent::LinkDown { a: src, b: node }));
                        self.script
                            .push((to, FaultEvent::LinkUp { a: src, b: node }));
                    }
                }
            }
            FaultSpec::MuteBoundaries { stream, from, to } => {
                let src = self.source_of(stream);
                self.script.push((
                    from,
                    FaultEvent::Custom {
                        target: src,
                        tag: DataSource::MUTE_BOUNDARIES,
                    },
                ));
                self.script.push((
                    to,
                    FaultEvent::Custom {
                        target: src,
                        tag: DataSource::UNMUTE_BOUNDARIES,
                    },
                ));
            }
            FaultSpec::CrashReplica {
                frag,
                shard,
                replica,
                from,
                to,
            } => {
                let node = self.shard_replicas(frag, shard)[replica];
                self.script.push((from, FaultEvent::NodeDown(node)));
                if let Some(to) = to {
                    self.script.push((to, FaultEvent::NodeUp(node)));
                }
            }
            FaultSpec::RestartReplica {
                frag,
                shard,
                replica,
                after,
            } => {
                let node = self.shard_replicas(frag, shard)[replica];
                self.script.push((after, FaultEvent::NodeDown(node)));
                self.script
                    .push((after + RESTART_DELAY, FaultEvent::NodeUp(node)));
            }
        }
    }

    /// Launches the layout under the deterministic simulator.
    pub fn deploy_sim(self) -> RunningSystem {
        let mut net = Network::new(self.latency);
        for (node, spec) in self.partitions {
            net.set_partition(node, spec);
        }
        let mut sim: Sim<NetMsg> = Sim::new(self.seed, net);
        sim.set_flow_policy(self.flow_policy);
        for (i, spec) in self.actors.into_iter().enumerate() {
            let id = sim.add_actor(spec.into_sim_actor(&self.metrics));
            assert_eq!(id, NodeId(i as u32), "id layout mismatch");
        }
        for (at, fault) in self.script {
            sim.schedule_fault(at, fault);
        }
        RunningSystem {
            sim,
            metrics: self.metrics,
            source_ids: self.source_ids,
            fragment_replicas: self.fragment_replicas,
            groups: self.groups,
            client: self.client,
        }
    }
}

/// A deployment running under the simulator, ready to run and script
/// (further) faults against.
pub struct RunningSystem {
    /// The simulation.
    pub sim: Sim<NetMsg>,
    /// Metrics collected by the client proxy.
    pub metrics: MetricsHub,
    /// Source actor ids, per stream.
    pub source_ids: Vec<(StreamId, NodeId)>,
    /// Node ids per physical fragment (outer index = physical fragment
    /// index; a sharded group contributes one entry per shard).
    pub fragment_replicas: Vec<Vec<NodeId>>,
    /// Physical fragment indexes per logical fragment, in shard order.
    pub groups: Vec<Vec<usize>>,
    /// The client proxy, if any.
    pub client: Option<NodeId>,
}

impl RunningSystem {
    /// The actor id of the source producing `stream`.
    ///
    /// # Panics
    /// Panics if no source produces `stream` (an experiment-script bug).
    pub fn source_of(&self, stream: StreamId) -> NodeId {
        self.source_ids
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("no source for {stream}"))
    }

    /// Disconnects `stream`'s source from every replica of every shard of
    /// logical fragment `frag` between `from` and `to` — the §5/§6.1
    /// failure: "temporarily disconnecting one of the input streams
    /// without stopping the data source".
    pub fn disconnect_source(&mut self, stream: StreamId, frag: usize, from: Time, to: Time) {
        let src = self.source_of(stream);
        for fi in self.groups[frag].clone() {
            for &node in self.fragment_replicas[fi].clone().iter() {
                self.sim
                    .schedule_fault(from, FaultEvent::LinkDown { a: src, b: node });
                self.sim
                    .schedule_fault(to, FaultEvent::LinkUp { a: src, b: node });
            }
        }
    }

    /// Mutes only the boundary tuples of `stream`'s source between `from`
    /// and `to` — the §6.2 failure used in the chain experiments (data keeps
    /// flowing, so the output rate is unchanged).
    pub fn mute_boundaries(&mut self, stream: StreamId, from: Time, to: Time) {
        let src = self.source_of(stream);
        self.sim.schedule_fault(
            from,
            FaultEvent::Custom {
                target: src,
                tag: DataSource::MUTE_BOUNDARIES,
            },
        );
        self.sim.schedule_fault(
            to,
            FaultEvent::Custom {
                target: src,
                tag: DataSource::UNMUTE_BOUNDARIES,
            },
        );
    }

    /// Crashes one replica of (shard 0 of) logical fragment `frag` between
    /// `from` and `to`; use [`RunningSystem::crash_shard_node`] to target a
    /// specific shard.
    pub fn crash_node(&mut self, frag: usize, replica: usize, from: Time, to: Option<Time>) {
        self.crash_shard_node(frag, 0, replica, from, to);
    }

    /// Crashes one replica of shard `shard` of logical fragment `frag`.
    pub fn crash_shard_node(
        &mut self,
        frag: usize,
        shard: usize,
        replica: usize,
        from: Time,
        to: Option<Time>,
    ) {
        let node = self.fragment_replicas[self.groups[frag][shard]][replica];
        self.sim.schedule_fault(from, FaultEvent::NodeDown(node));
        if let Some(to) = to {
            self.sim.schedule_fault(to, FaultEvent::NodeUp(node));
        }
    }

    /// Runs the simulation to `until`, then refreshes the metrics hub's
    /// transport gauges.
    pub fn run_until(&mut self, until: Time) {
        self.sim.run_until(until);
        self.metrics.record_flow(self.sim.flow_gauges());
    }

    /// Queue-depth and stall-time gauges of the transport's credit ledger.
    pub fn flow_gauges(&self) -> FlowGauges {
        self.sim.flow_gauges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_diagram::{
        plan_deployment, DeploymentSpec, DpcConfig, FragmentSpec, QueryBuilder,
    };
    use borealis_types::Expr;

    fn tiny_layout(faults: Vec<FaultSpec>) -> SystemLayout {
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let s2 = q.source("s2");
        let u = q.union("u", &[s1, s2]);
        q.output(u);
        let d = q.build().unwrap();
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(2),
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
        SystemBuilder::new(1, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 100.0))
            .source(SourceConfig::seq(s2.id(), 100.0))
            .plan(p)
            .client_streams(vec![u.id()])
            .faults(faults)
            .layout()
    }

    #[test]
    fn layout_assigns_sources_nodes_client_in_order() {
        let l = tiny_layout(Vec::new());
        assert_eq!(l.actors.len(), 5, "2 sources + 2 replicas + 1 client");
        assert!(matches!(l.actors[0], ActorSpec::Source(_)));
        assert!(matches!(l.actors[1], ActorSpec::Source(_)));
        assert!(matches!(l.actors[2], ActorSpec::Node(_)));
        assert!(matches!(l.actors[3], ActorSpec::Node(_)));
        assert!(matches!(l.actors[4], ActorSpec::Client { .. }));
        assert_eq!(l.fragment_replicas, vec![vec![NodeId(2), NodeId(3)]]);
        assert_eq!(l.client, Some(NodeId(4)));
        assert_eq!(l.source_of(StreamId(1)), NodeId(1));
    }

    #[test]
    fn topology_faults_lower_to_concrete_events_on_both_replicas() {
        let l = tiny_layout(vec![
            FaultSpec::DisconnectSource {
                stream: StreamId(0),
                frag: 0,
                from: Time::from_secs(1),
                to: Time::from_secs(2),
            },
            FaultSpec::CrashReplica {
                frag: 0,
                shard: 0,
                replica: 1,
                from: Time::from_secs(3),
                to: None,
            },
        ]);
        // 2 link-downs + 2 link-ups + 1 node-down, sorted by time.
        assert_eq!(l.script.len(), 5);
        assert!(l.script.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(l
            .script
            .iter()
            .any(|(at, f)| *at == Time::from_secs(3) && *f == FaultEvent::NodeDown(NodeId(3))));
        let downs = l
            .script
            .iter()
            .filter(|(_, f)| matches!(f, FaultEvent::LinkDown { .. }))
            .count();
        assert_eq!(downs, 2, "one link-down per replica");
    }

    fn sharded_layout(k: u32, work_replication: usize) -> SystemLayout {
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let s2 = q.source("s2");
        let u = q.union("ingest", &[s1, s2]);
        let w = q.map("work", u, vec![Expr::field(0)]);
        let out = q.map("deliver", w, vec![Expr::field(0)]);
        q.output(out);
        let d = q.build().unwrap();
        let spec = DeploymentSpec::new()
            .fragment(FragmentSpec::named("ingest").op("ingest"))
            .fragment(
                FragmentSpec::named("work")
                    .op("work")
                    .replication(work_replication)
                    .shards(k, Expr::field(0))
                    .work_cost(Duration::from_micros(80)),
            )
            .fragment(FragmentSpec::named("deliver").op("deliver"));
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(3),
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &spec, &cfg).unwrap();
        SystemBuilder::new(5, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 150.0))
            .source(SourceConfig::seq(s2.id(), 150.0))
            .plan(p)
            .client_streams(vec![out.id()])
            .layout()
    }

    /// Sharded layouts: cumulative id assignment across heterogeneous
    /// replication, one partition filter per shard replica, and
    /// logical→physical fragment groups.
    #[test]
    fn sharded_layout_assigns_ids_partitions_and_groups() {
        let l = sharded_layout(2, 2);
        // 2 sources + ingest 2 + work 2 shards × 2 + deliver 2 + client.
        assert_eq!(l.actors.len(), 2 + 2 + 4 + 2 + 1);
        assert_eq!(l.groups, vec![vec![0], vec![1, 2], vec![3]]);
        assert_eq!(l.fragment_replicas.len(), 4);
        assert_eq!(l.shard_replicas(1, 1), &[NodeId(6), NodeId(7)]);
        assert_eq!(l.client, Some(NodeId(10)));
        // One filter per work replica, with matching shard indexes.
        assert_eq!(l.partitions.len(), 4);
        for (node, spec) in &l.partitions {
            assert_eq!(spec.shards, 2);
            let shard = if node.index() < 6 { 0 } else { 1 };
            assert_eq!(spec.index, shard);
        }
        // Work-stage cost override sticks to work replicas only.
        let cost_of = |id: usize| match &l.actors[id] {
            ActorSpec::Node(cfg) => cfg.tuning.per_tuple_cost,
            _ => panic!("not a node"),
        };
        assert_eq!(cost_of(4), Duration::from_micros(80));
        assert_ne!(cost_of(2), Duration::from_micros(80));
    }

    /// A scripted shard-replica crash lowers to the right physical node,
    /// and a source disconnect hits every shard's replicas.
    #[test]
    fn shard_faults_lower_to_physical_nodes() {
        let mut l = sharded_layout(2, 2);
        l.lower_fault(&FaultSpec::CrashReplica {
            frag: 1,
            shard: 1,
            replica: 0,
            from: Time::from_secs(1),
            to: None,
        });
        assert!(l
            .script
            .iter()
            .any(|(_, f)| *f == FaultEvent::NodeDown(NodeId(6))));
        l.lower_fault(&FaultSpec::DisconnectSource {
            stream: StreamId(0),
            frag: 1,
            from: Time::from_secs(2),
            to: Time::from_secs(3),
        });
        let downs = l
            .script
            .iter()
            .filter(|(_, f)| matches!(f, FaultEvent::LinkDown { .. }))
            .count();
        assert_eq!(downs, 4, "all four work replicas lose the source");
    }

    /// End to end under the simulator: a sharded middle stage produces the
    /// same deduplicated stable stream a client expects, and the downstream
    /// SUnion merges the shard substreams.
    #[test]
    fn sharded_system_runs_clean_under_sim() {
        let out = StreamId(4);
        let mut sys = sharded_layout(2, 2).deploy_sim();
        sys.run_until(Time::from_secs(10));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 1500, "stable = {}", m.n_stable);
            assert_eq!(m.n_tentative, 0);
            assert_eq!(m.dup_stable, 0);
        });
    }

    /// A per-fragment buffer override from the deployment spec replaces the
    /// deployment-wide `NodeTuning` default on exactly that fragment's
    /// replicas.
    #[test]
    fn buffer_policy_override_reaches_node_tuning() {
        use crate::buffers::BufferPolicy;
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let f = q.map("front", s1, vec![borealis_types::Expr::field(0)]);
        let b = q.map("back", f, vec![borealis_types::Expr::field(0)]);
        q.output(b);
        let d = q.build().unwrap();
        let spec = DeploymentSpec::new()
            .fragment(
                FragmentSpec::named("front")
                    .op("front")
                    .buffer(BufferPolicy::DropOldest(256)),
            )
            .fragment(FragmentSpec::named("back").op("back"));
        let p = plan_deployment(&d, &spec, &DpcConfig::default()).unwrap();
        let l = SystemBuilder::new(1, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 50.0))
            .plan(p)
            .client_streams(vec![b.id()])
            .layout();
        let policy_of = |id: usize| match &l.actors[id] {
            ActorSpec::Node(cfg) => cfg.tuning.buffer_policy,
            _ => panic!("not a node"),
        };
        // ids: source 0, front replicas 1-2, back replicas 3-4, client 5.
        assert_eq!(policy_of(1), BufferPolicy::DropOldest(256));
        assert_eq!(policy_of(2), BufferPolicy::DropOldest(256));
        assert_eq!(policy_of(3), BufferPolicy::Unbounded, "tuning default");
    }

    /// The builder's credit policy reaches the simulator's transport, and
    /// a bounded deployment still runs clean below saturation (credits are
    /// returned as the modeled CPU consumes, so a healthy run never sees
    /// the window as a limit).
    #[test]
    fn credit_policy_reaches_sim_transport() {
        let l = tiny_layout(Vec::new());
        let sys = l.deploy_sim();
        assert_eq!(sys.sim.flow_policy(), CreditPolicy::Unbounded);

        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let u = q.relay("out", s1);
        q.output(u);
        let d = q.build().unwrap();
        let cfg = DpcConfig {
            total_delay: Duration::from_secs(2),
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &DeploymentSpec::single(2), &cfg).unwrap();
        let mut sys = SystemBuilder::new(9, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 200.0))
            .plan(p)
            .client_streams(vec![u.id()])
            .credit_policy(CreditPolicy::Window(32))
            .build();
        assert_eq!(sys.sim.flow_policy(), CreditPolicy::Window(32));
        sys.run_until(Time::from_secs(5));
        sys.metrics.with(u.id(), |m| {
            assert!(m.n_stable > 500, "stable = {}", m.n_stable);
            assert_eq!(m.n_tentative, 0, "no stall below saturation");
            assert_eq!(m.dup_stable, 0);
        });
        let g = sys.flow_gauges();
        assert!(g.delivered > 0, "data messages were metered: {g:?}");
        assert_eq!(sys.metrics.flow_gauges(), g, "hub mirrors the gauges");
    }

    #[test]
    fn scripted_layout_deploys_and_runs_under_sim() {
        let l = tiny_layout(vec![FaultSpec::DisconnectSource {
            stream: StreamId(0),
            frag: 0,
            from: Time::from_secs(3),
            to: Time::from_secs(5),
        }]);
        let out = StreamId(2);
        let mut sys = l.deploy_sim();
        sys.run_until(Time::from_secs(12));
        sys.metrics.with(out, |m| {
            assert!(m.n_stable > 0);
            assert!(
                m.n_rec_done >= 1,
                "scripted disconnect must trigger a stabilization"
            );
            assert_eq!(m.dup_stable, 0);
        });
    }
}
