//! Deployment builder: wires sources, replicated fragment nodes, and a
//! client proxy into one simulated system (the Fig. 2 replicated query
//! diagram).
//!
//! The builder assigns actor ids deterministically (sources, then each
//! fragment's replicas in order, then the client), computes who produces
//! each stream, derives every node's upstream candidate sets and expected
//! downstream consumer counts (for §8.1 truncation), and exposes fault
//! scripting helpers for the experiments.

use crate::client::{ClientProxy, ClientStream, ClientTuning};
use crate::metrics::MetricsHub;
use crate::msg::NetMsg;
use crate::node::{NodeConfig, NodeTuning, ProcessingNode, UpstreamSpec};
use crate::source::{DataSource, SourceConfig};
use borealis_diagram::{PhysicalPlan, StreamOrigin};
use borealis_sim::{FaultEvent, Network, Sim};
use borealis_types::{Duration, NodeId, StreamId, Time};
use std::collections::HashMap;

/// Builds a complete simulated deployment.
pub struct SystemBuilder {
    seed: u64,
    latency: Duration,
    sources: Vec<SourceConfig>,
    plan: Option<PhysicalPlan>,
    replication: usize,
    node_tuning: NodeTuning,
    client_tuning: ClientTuning,
    client_streams: Vec<StreamId>,
    metrics: MetricsHub,
}

impl SystemBuilder {
    /// Starts a builder with the given determinism seed and link latency.
    pub fn new(seed: u64, latency: Duration) -> SystemBuilder {
        SystemBuilder {
            seed,
            latency,
            sources: Vec::new(),
            plan: None,
            replication: 2,
            node_tuning: NodeTuning::default(),
            client_tuning: ClientTuning::default(),
            client_streams: Vec::new(),
            metrics: MetricsHub::new(),
        }
    }

    /// Adds a data source.
    pub fn source(mut self, cfg: SourceConfig) -> Self {
        self.sources.push(cfg);
        self
    }

    /// Sets the physical plan to deploy.
    pub fn plan(mut self, plan: PhysicalPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Number of replicas per fragment (the paper requires at least two for
    /// availability during stabilization; one is allowed for Fig. 11-style
    /// single-node studies).
    pub fn replication(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one replica per fragment");
        self.replication = n;
        self
    }

    /// Node tuning knobs.
    pub fn node_tuning(mut self, t: NodeTuning) -> Self {
        self.node_tuning = t;
        self
    }

    /// Client tuning knobs.
    pub fn client_tuning(mut self, t: ClientTuning) -> Self {
        self.client_tuning = t;
        self
    }

    /// The client consumes these output streams.
    pub fn client_streams(mut self, streams: Vec<StreamId>) -> Self {
        self.client_streams = streams;
        self
    }

    /// Shares a metrics hub (to read results after the run).
    pub fn metrics(mut self, hub: MetricsHub) -> Self {
        self.metrics = hub;
        self
    }

    /// Instantiates the system.
    ///
    /// # Panics
    /// Panics if no plan was provided or a consumed stream has no producer —
    /// both deployment bugs.
    pub fn build(self) -> RunningSystem {
        let plan = self.plan.expect("SystemBuilder requires a plan");
        let n_sources = self.sources.len();
        let n_fragments = plan.fragments.len();

        // Deterministic id layout.
        let source_id = |i: usize| NodeId(i as u32);
        let node_id =
            |frag: usize, rep: usize| NodeId((n_sources + frag * self.replication + rep) as u32);
        let client_id = NodeId((n_sources + n_fragments * self.replication) as u32);

        // Stream producers.
        let mut producers: HashMap<StreamId, Vec<NodeId>> = HashMap::new();
        for (i, s) in self.sources.iter().enumerate() {
            producers.insert(s.stream, vec![source_id(i)]);
        }
        for (fi, fp) in plan.fragments.iter().enumerate() {
            for out in &fp.outputs {
                let reps = (0..self.replication).map(|r| node_id(fi, r)).collect();
                producers.insert(out.stream, reps);
            }
        }

        // Downstream consumer counts per crossing stream.
        let mut consumer_counts: HashMap<StreamId, usize> = HashMap::new();
        for fp in &plan.fragments {
            for input in &fp.inputs {
                *consumer_counts.entry(input.stream).or_default() += self.replication;
            }
        }
        for s in &self.client_streams {
            *consumer_counts.entry(*s).or_default() += 1;
        }

        let mut sim: Sim<NetMsg> = Sim::new(self.seed, Network::new(self.latency));
        let mut source_ids = Vec::new();
        for cfg in &self.sources {
            let id = sim.add_actor(Box::new(DataSource::new(cfg.clone())));
            source_ids.push((cfg.stream, id));
        }

        let mut fragment_replicas: Vec<Vec<NodeId>> = Vec::new();
        for (fi, fp) in plan.fragments.iter().enumerate() {
            let ids: Vec<NodeId> = (0..self.replication).map(|r| node_id(fi, r)).collect();
            for &my_id in &ids {
                let replicas = ids.iter().copied().filter(|&r| r != my_id).collect();
                // One upstream spec per distinct input stream.
                let mut upstreams: Vec<UpstreamSpec> = Vec::new();
                for input in &fp.inputs {
                    if upstreams.iter().any(|u| u.stream == input.stream) {
                        continue;
                    }
                    let candidates = producers
                        .get(&input.stream)
                        .unwrap_or_else(|| panic!("no producer for {}", input.stream))
                        .clone();
                    // Fragment streams are monitored for Table II switching;
                    // source streams are monitored so that a node cut off
                    // from its sources detects the silence via missed
                    // keep-alives (Fig. 5) even with no data in flight.
                    let _ = matches!(input.origin, StreamOrigin::Fragment(_));
                    upstreams.push(UpstreamSpec {
                        stream: input.stream,
                        candidates,
                        monitor: true,
                    });
                }
                let downstream_counts = fp
                    .outputs
                    .iter()
                    .map(|o| {
                        (
                            o.stream,
                            consumer_counts.get(&o.stream).copied().unwrap_or(0),
                        )
                    })
                    .collect();
                let cfg = NodeConfig {
                    plan: fp.clone(),
                    replicas,
                    upstreams,
                    downstream_counts,
                    tuning: self.node_tuning.clone(),
                };
                let actual = sim.add_actor(Box::new(ProcessingNode::new(cfg)));
                assert_eq!(actual, my_id, "id layout mismatch");
            }
            fragment_replicas.push(ids);
        }

        let client = if self.client_streams.is_empty() {
            None
        } else {
            let streams = self
                .client_streams
                .iter()
                .map(|&s| ClientStream {
                    stream: s,
                    candidates: producers
                        .get(&s)
                        .unwrap_or_else(|| panic!("no producer for {s}"))
                        .clone(),
                })
                .collect();
            let id = sim.add_actor(Box::new(ClientProxy::new(
                streams,
                self.client_tuning.clone(),
                self.metrics.clone(),
            )));
            assert_eq!(id, client_id, "id layout mismatch");
            Some(id)
        };

        RunningSystem {
            sim,
            metrics: self.metrics,
            source_ids,
            fragment_replicas,
            client,
        }
    }
}

/// A built deployment, ready to run and script faults against.
pub struct RunningSystem {
    /// The simulation.
    pub sim: Sim<NetMsg>,
    /// Metrics collected by the client proxy.
    pub metrics: MetricsHub,
    /// Source actor ids, per stream.
    pub source_ids: Vec<(StreamId, NodeId)>,
    /// Node ids per fragment (outer index = fragment index).
    pub fragment_replicas: Vec<Vec<NodeId>>,
    /// The client proxy, if any.
    pub client: Option<NodeId>,
}

impl RunningSystem {
    /// The actor id of the source producing `stream`.
    ///
    /// # Panics
    /// Panics if no source produces `stream` (an experiment-script bug).
    pub fn source_of(&self, stream: StreamId) -> NodeId {
        self.source_ids
            .iter()
            .find(|(s, _)| *s == stream)
            .map(|(_, id)| *id)
            .unwrap_or_else(|| panic!("no source for {stream}"))
    }

    /// Disconnects `stream`'s source from every replica of fragment `frag`
    /// between `from` and `to` — the §5/§6.1 failure: "temporarily
    /// disconnecting one of the input streams without stopping the data
    /// source".
    pub fn disconnect_source(&mut self, stream: StreamId, frag: usize, from: Time, to: Time) {
        let src = self.source_of(stream);
        for &node in self.fragment_replicas[frag].clone().iter() {
            self.sim
                .schedule_fault(from, FaultEvent::LinkDown { a: src, b: node });
            self.sim
                .schedule_fault(to, FaultEvent::LinkUp { a: src, b: node });
        }
    }

    /// Mutes only the boundary tuples of `stream`'s source between `from`
    /// and `to` — the §6.2 failure used in the chain experiments (data keeps
    /// flowing, so the output rate is unchanged).
    pub fn mute_boundaries(&mut self, stream: StreamId, from: Time, to: Time) {
        let src = self.source_of(stream);
        self.sim.schedule_fault(
            from,
            FaultEvent::Custom {
                target: src,
                tag: DataSource::MUTE_BOUNDARIES,
            },
        );
        self.sim.schedule_fault(
            to,
            FaultEvent::Custom {
                target: src,
                tag: DataSource::UNMUTE_BOUNDARIES,
            },
        );
    }

    /// Crashes one replica of a fragment between `from` and `to`.
    pub fn crash_node(&mut self, frag: usize, replica: usize, from: Time, to: Option<Time>) {
        let node = self.fragment_replicas[frag][replica];
        self.sim.schedule_fault(from, FaultEvent::NodeDown(node));
        if let Some(to) = to {
            self.sim.schedule_fault(to, FaultEvent::NodeUp(node));
        }
    }

    /// Runs the simulation to `until`.
    pub fn run_until(&mut self, until: Time) {
        self.sim.run_until(until);
    }
}
