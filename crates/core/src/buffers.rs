//! Output-buffer management (§8.1).
//!
//! "A node must buffer the output tuples it produces until all replicas of
//! all downstream neighbors receive these tuples" — any downstream replica
//! may subscribe at any time and ask for everything after its last stable
//! tuple. The buffer is the emission *log* of one output stream (stable
//! data, boundaries, tentative data, undo and rec-done markers, in emission
//! order); new subscriptions are served by replaying a suffix of the log.
//!
//! Truncation: cumulative acknowledgments from downstream consumers move
//! the safe horizon forward; everything at or before the acked stable tuple
//! is dropped. With bounded buffers ([`BufferPolicy::DropOldest`]) the
//! buffer additionally evicts its oldest entries under memory pressure —
//! the paper's convergent-capable mode, where only "a predefined window of
//! most recent results will be corrected after the failure heals".

use borealis_types::{Tuple, TupleId, TupleKind};
use std::collections::VecDeque;

/// What to do when an output buffer grows past its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Keep everything (the paper's default assumption, §2.2).
    Unbounded,
    /// Keep at most this many entries, evicting the oldest. Downstream
    /// replicas that fall behind the eviction horizon permanently miss the
    /// evicted tuples (tracked by [`OutputBuffer::truncation_misses`]).
    DropOldest(usize),
}

#[derive(Debug)]
struct LogEntry {
    tuple: Tuple,
    /// Tentative entries rolled back by a later UNDO: current subscribers
    /// already received them (and the UNDO), and new subscribers must not —
    /// replaying dead history would only re-inflate their tentative input.
    dead: bool,
}

/// The emission log of one output stream.
#[derive(Debug)]
pub struct OutputBuffer {
    /// Logical index of `log[0]` (grows as the prefix is truncated).
    base: usize,
    log: VecDeque<LogEntry>,
    last_stable_id: TupleId,
    policy: BufferPolicy,
    truncation_misses: u64,
}

impl OutputBuffer {
    /// An empty buffer with the given policy.
    pub fn new(policy: BufferPolicy) -> OutputBuffer {
        OutputBuffer {
            base: 0,
            log: VecDeque::new(),
            last_stable_id: TupleId::NONE,
            policy,
            truncation_misses: 0,
        }
    }

    /// Appends one emitted tuple. Appending an UNDO marks the tentative
    /// suffix it rolls back as dead (excluded from future replays).
    pub fn append(&mut self, t: Tuple) {
        if t.is_stable_data() {
            self.last_stable_id = self.last_stable_id.max(t.id);
        }
        if t.kind == TupleKind::Undo {
            let target = t.undo_target().unwrap_or(TupleId::NONE);
            for e in self.log.iter_mut().rev() {
                if e.tuple.is_stable_data() && e.tuple.id <= target {
                    break;
                }
                if e.tuple.is_tentative() {
                    e.dead = true;
                }
            }
        }
        self.log.push_back(LogEntry { tuple: t, dead: false });
        if let BufferPolicy::DropOldest(max) = self.policy {
            while self.log.len() > max {
                self.log.pop_front();
                self.base += 1;
            }
        }
    }

    /// Logical end position (total entries ever appended).
    pub fn end(&self) -> usize {
        self.base + self.log.len()
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Id of the most recent stable data tuple appended.
    pub fn last_stable_id(&self) -> TupleId {
        self.last_stable_id
    }

    /// Number of subscriptions that requested data older than the buffer
    /// holds (possible only with bounded buffers).
    pub fn truncation_misses(&self) -> u64 {
        self.truncation_misses
    }

    /// Live entries from logical position `pos` (clamped to what remains;
    /// undone tentative history is skipped).
    pub fn entries_from(&self, pos: usize) -> impl Iterator<Item = &Tuple> {
        let skip = pos.saturating_sub(self.base);
        self.log.iter().skip(skip).filter(|e| !e.dead).map(|e| &e.tuple)
    }

    /// The logical position just after the stable data tuple `id` — where a
    /// subscriber that already has the stable prefix through `id` should
    /// start replaying. If the buffer was truncated past `id`, replay
    /// starts at the earliest retained entry (and the miss is counted).
    pub fn position_after_stable(&mut self, id: TupleId) -> usize {
        if id == TupleId::NONE {
            if self.base > 0 {
                self.truncation_misses += 1;
            }
            return self.base;
        }
        // Scan for the first stable data entry beyond `id`; everything
        // before it (including interleaved boundaries and undone
        // tentatives) was already covered by the subscriber's prefix.
        let mut pos_after = None;
        for (i, e) in self.log.iter().enumerate() {
            let t = &e.tuple;
            if t.is_stable_data() {
                if t.id <= id {
                    pos_after = Some(self.base + i + 1);
                } else {
                    break;
                }
            }
        }
        match pos_after {
            Some(p) => p,
            None => {
                // Either the prefix was truncated away (subscriber misses
                // data) or the buffer holds no stable tuple <= id yet
                // (subscriber is ahead of the truncation horizon: replay
                // from the start of what we hold).
                if self.base > 0 && self.last_stable_id > id {
                    self.truncation_misses += 1;
                }
                self.base
            }
        }
    }

    /// Drops every entry up to and including the stable tuple `through`
    /// (cumulative-ack truncation, §8.1).
    pub fn truncate_through(&mut self, through: TupleId) {
        while let Some(front) = self.log.front() {
            let stop = match front.tuple.kind {
                TupleKind::Insertion => front.tuple.id > through,
                // Non-stable entries before the acked point are history
                // that no future subscriber needs.
                _ => !self
                    .log
                    .iter()
                    .any(|e| e.tuple.is_stable_data() && e.tuple.id <= through),
            };
            if stop {
                break;
            }
            self.log.pop_front();
            self.base += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{Time, Value};

    fn stable(id: u64) -> Tuple {
        Tuple::insertion(TupleId(id), Time::from_millis(id), vec![Value::Int(id as i64)])
    }

    fn tentative(id: u64) -> Tuple {
        Tuple::tentative(TupleId(id), Time::from_millis(id), vec![])
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    #[test]
    fn append_and_replay_from_position() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(boundary(10));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId(1));
        let rest: Vec<_> = b.entries_from(pos).cloned().collect();
        assert_eq!(rest, vec![boundary(10), stable(2)]);
    }

    #[test]
    fn replay_from_none_returns_everything() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId::NONE);
        assert_eq!(b.entries_from(pos).count(), 2);
    }

    #[test]
    fn replay_skips_undone_tentative_history() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(tentative(2));
        b.append(Tuple::undo(TupleId::NONE, TupleId(1)));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId(1));
        let rest: Vec<TupleKind> = b.entries_from(pos).map(|t| t.kind).collect();
        // The rolled-back tentative tuple is dead history: a new subscriber
        // gets the undo (harmless) and the corrections only.
        assert_eq!(rest, vec![TupleKind::Undo, TupleKind::Insertion]);
    }

    #[test]
    fn live_tentative_suffix_still_replays() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(tentative(2));
        b.append(tentative(3));
        let pos = b.position_after_stable(TupleId(1));
        assert_eq!(b.entries_from(pos).count(), 2, "uncorrected suffix replays");
    }

    #[test]
    fn truncation_drops_prefix_and_tracks_base() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        for i in 1..=5 {
            b.append(stable(i));
        }
        b.truncate_through(TupleId(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.end(), 5);
        let pos = b.position_after_stable(TupleId(4));
        let rest: Vec<_> = b.entries_from(pos).map(|t| t.id.0).collect();
        assert_eq!(rest, vec![5]);
    }

    #[test]
    fn truncated_past_subscriber_counts_miss() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        for i in 1..=5 {
            b.append(stable(i));
        }
        b.truncate_through(TupleId(4));
        // Subscriber only has tuple 1; tuples 2-4 are gone.
        let pos = b.position_after_stable(TupleId(1));
        assert_eq!(pos, b.end() - 1, "replay starts at earliest retained");
        assert_eq!(b.truncation_misses(), 1);
    }

    #[test]
    fn bounded_buffer_evicts_oldest() {
        let mut b = OutputBuffer::new(BufferPolicy::DropOldest(3));
        for i in 1..=10 {
            b.append(stable(i));
        }
        assert_eq!(b.len(), 3);
        let all: Vec<u64> = b.entries_from(0).map(|t| t.id.0).collect();
        assert_eq!(all, vec![8, 9, 10]);
    }

    #[test]
    fn truncate_keeps_interleaved_metadata_after_point() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(boundary(5));
        b.append(stable(2));
        b.append(boundary(15));
        b.truncate_through(TupleId(1));
        let rest: Vec<TupleKind> = b.entries_from(b.end() - b.len()).map(|t| t.kind).collect();
        // The boundary directly after stable 1 is retained: a subscriber
        // resuming after stable 1 still needs that watermark.
        assert_eq!(
            rest,
            vec![TupleKind::Boundary, TupleKind::Insertion, TupleKind::Boundary]
        );
    }
}
