//! Output-buffer management (§8.1).
//!
//! "A node must buffer the output tuples it produces until all replicas of
//! all downstream neighbors receive these tuples" — any downstream replica
//! may subscribe at any time and ask for everything after its last stable
//! tuple. The buffer is the emission *log* of one output stream (stable
//! data, boundaries, tentative data, undo and rec-done markers, in emission
//! order); new subscriptions are served by replaying a suffix of the log.
//!
//! The log retains the engine's emitted [`TupleBatch`]es as shared
//! segments: the node appends a batch by view (no copy), and replay hands
//! out O(1) sub-views of the same allocations ([`OutputBuffer::batches_from`]),
//! so one emission backs the buffer *and* every subscriber's in-flight
//! messages simultaneously. Rolled-back (dead) entries are tracked by
//! segment-local flags — never by mutating the shared tuples.
//!
//! Truncation: cumulative acknowledgments from downstream consumers move
//! the safe horizon forward; everything at or before the acked stable tuple
//! is dropped by *splitting ranges* — whole segments are released, a
//! partially-acked segment is narrowed to its live sub-range. Views already
//! handed to slower subscribers keep their shared backing alive until they
//! drop, so acking mid-batch can never free or corrupt tuples another
//! replay cursor still references. With bounded buffers
//! ([`BufferPolicy::DropOldest`]) the buffer additionally evicts its oldest
//! entries under memory pressure — the paper's convergent-capable mode,
//! where only "a predefined window of most recent results will be corrected
//! after the failure heals".

use borealis_types::{Tuple, TupleBatch, TupleId, TupleKind};
use std::collections::VecDeque;

// The policy type lives in `borealis-types` so the deployment planner
// (`borealis-diagram`) can carry per-fragment overrides without depending
// on this crate; re-exported here at its historical path.
pub use borealis_types::BufferPolicy;

/// One retained emission batch plus segment-local liveness flags.
#[derive(Debug)]
struct Segment {
    batch: TupleBatch,
    /// Aligned with `batch`; empty means every entry is live. Allocated
    /// lazily — only reconciliations (UNDO appends) ever populate it.
    dead: Vec<bool>,
}

impl Segment {
    fn len(&self) -> usize {
        self.batch.len()
    }

    fn is_dead(&self, i: usize) -> bool {
        !self.dead.is_empty() && self.dead[i]
    }

    fn mark_dead(&mut self, i: usize) {
        if self.dead.is_empty() {
            self.dead = vec![false; self.batch.len()];
        }
        self.dead[i] = true;
    }

    /// Narrows the segment to `[k, len)` — range arithmetic on the view;
    /// the shared backing is untouched.
    fn drop_front(&mut self, k: usize) {
        self.batch = self.batch.slice(k..self.batch.len());
        if !self.dead.is_empty() {
            self.dead.drain(..k);
        }
    }

    /// Appends the live (non-dead) runs of `[start, len)` as O(1) shared
    /// views.
    fn push_live_runs(&self, start: usize, out: &mut Vec<TupleBatch>) {
        if start >= self.len() {
            return;
        }
        if self.dead.is_empty() {
            out.push(self.batch.slice(start..self.len()));
            return;
        }
        let mut run_start = start;
        for i in start..self.len() {
            if self.dead[i] {
                if i > run_start {
                    out.push(self.batch.slice(run_start..i));
                }
                run_start = i + 1;
            }
        }
        if self.len() > run_start {
            out.push(self.batch.slice(run_start..self.len()));
        }
    }
}

/// The emission log of one output stream.
#[derive(Debug)]
pub struct OutputBuffer {
    /// Logical index of the first retained entry (grows as the prefix is
    /// truncated).
    base: usize,
    segs: VecDeque<Segment>,
    /// Retained entries (sum of segment lengths).
    retained: usize,
    last_stable_id: TupleId,
    /// Highest stable id ever dropped from the front (ack truncation or
    /// bounded eviction): a subscriber is "missed" only when it resumes
    /// behind this horizon.
    dropped_stable_id: TupleId,
    policy: BufferPolicy,
    truncation_misses: u64,
}

impl OutputBuffer {
    /// An empty buffer with the given policy.
    pub fn new(policy: BufferPolicy) -> OutputBuffer {
        OutputBuffer {
            base: 0,
            segs: VecDeque::new(),
            retained: 0,
            last_stable_id: TupleId::NONE,
            dropped_stable_id: TupleId::NONE,
            policy,
            truncation_misses: 0,
        }
    }

    /// Appends one emitted tuple (wrapper over [`OutputBuffer::append_batch`]
    /// for tests and single-tuple emissions).
    pub fn append(&mut self, t: Tuple) {
        self.append_batch(TupleBatch::single(t));
    }

    /// Appends an emitted batch by shared view — the zero-copy retention
    /// path. Appending a batch containing an UNDO marks the tentative
    /// suffix it rolls back as dead (excluded from future replays): current
    /// subscribers already received those tuples (and the UNDO), and new
    /// subscribers must not — replaying dead history would only re-inflate
    /// their tentative input.
    pub fn append_batch(&mut self, batch: TupleBatch) {
        if batch.is_empty() {
            return;
        }
        let seg_start = self.end();
        let mut undos: Vec<(usize, TupleId)> = Vec::new();
        for (i, t) in batch.as_slice().iter().enumerate() {
            if t.is_stable_data() {
                self.last_stable_id = self.last_stable_id.max(t.id);
            } else if t.kind == TupleKind::Undo {
                undos.push((i, t.undo_target().unwrap_or(TupleId::NONE)));
            }
        }
        self.retained += batch.len();
        self.segs.push_back(Segment {
            batch,
            dead: Vec::new(),
        });
        for (i, target) in undos {
            self.mark_dead_before(seg_start + i, target);
        }
        if let BufferPolicy::DropOldest(max) = self.policy {
            if self.retained > max {
                self.drop_front_entries(self.retained - max);
            }
        }
    }

    /// Walks backward from logical position `upto` (exclusive), marking
    /// tentative entries dead until the first stable entry with
    /// `id <= target`.
    fn mark_dead_before(&mut self, upto: usize, target: TupleId) {
        let mut seg_end = self.end();
        for si in (0..self.segs.len()).rev() {
            let seg_len = self.segs[si].len();
            let seg_start = seg_end - seg_len;
            let hi = upto.min(seg_end);
            if hi > seg_start {
                for li in (0..hi - seg_start).rev() {
                    let (kind, id) = {
                        let t = &self.segs[si].batch[li];
                        (t.kind, t.id)
                    };
                    if kind == TupleKind::Insertion && id <= target {
                        return;
                    }
                    if kind == TupleKind::Tentative {
                        self.segs[si].mark_dead(li);
                    }
                }
            }
            seg_end = seg_start;
        }
    }

    /// Drops the `k` oldest retained entries by releasing whole segments
    /// and narrowing the first survivor (range split, no copying).
    fn drop_front_entries(&mut self, mut k: usize) {
        while k > 0 {
            let Some(front) = self.segs.front_mut() else {
                return;
            };
            let dropped = front.len().min(k);
            for t in &front.batch.as_slice()[..dropped] {
                if t.is_stable_data() {
                    self.dropped_stable_id = self.dropped_stable_id.max(t.id);
                }
            }
            if front.len() <= k {
                k -= front.len();
                self.base += front.len();
                self.retained -= front.len();
                self.segs.pop_front();
            } else {
                front.drop_front(k);
                self.base += k;
                self.retained -= k;
                k = 0;
            }
        }
    }

    /// Logical end position (total entries ever appended).
    pub fn end(&self) -> usize {
        self.base + self.retained
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.retained
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.retained == 0
    }

    /// Id of the most recent stable data tuple appended.
    pub fn last_stable_id(&self) -> TupleId {
        self.last_stable_id
    }

    /// Number of subscriptions that requested data older than the buffer
    /// holds (possible only with bounded buffers).
    pub fn truncation_misses(&self) -> u64 {
        self.truncation_misses
    }

    /// Live entries from logical position `pos` (clamped to what remains;
    /// undone tentative history is skipped).
    pub fn entries_from(&self, pos: usize) -> impl Iterator<Item = &Tuple> {
        let skip = pos.saturating_sub(self.base);
        self.segs
            .iter()
            .flat_map(|s| (0..s.len()).map(move |i| (s, i)))
            .skip(skip)
            .filter(|(s, i)| !s.is_dead(*i))
            .map(|(s, i)| &s.batch[i])
    }

    /// Live entries from logical position `pos` as O(1) shared batch views
    /// — the zero-copy replay path. Every returned batch shares its backing
    /// allocation with the buffer (and with every other replay cursor),
    /// so serving N subscribers costs N reference-count bumps, not N deep
    /// copies.
    pub fn batches_from(&self, pos: usize) -> Vec<TupleBatch> {
        let mut skip = pos.saturating_sub(self.base);
        let mut out = Vec::new();
        for seg in &self.segs {
            if skip >= seg.len() {
                skip -= seg.len();
                continue;
            }
            seg.push_live_runs(skip, &mut out);
            skip = 0;
        }
        out
    }

    /// The logical position just after the stable data tuple `id` — where a
    /// subscriber that already has the stable prefix through `id` should
    /// start replaying. If the buffer was truncated past `id`, replay
    /// starts at the earliest retained entry (and the miss is counted).
    pub fn position_after_stable(&mut self, id: TupleId) -> usize {
        if id == TupleId::NONE {
            if self.dropped_stable_id > TupleId::NONE {
                self.truncation_misses += 1;
            }
            return self.base;
        }
        // Scan for the first stable data entry beyond `id`; everything
        // before it (including interleaved boundaries and undone
        // tentatives) was already covered by the subscriber's prefix.
        let mut pos_after = None;
        let mut idx = self.base;
        'scan: for seg in &self.segs {
            for t in seg.batch.as_slice() {
                if t.is_stable_data() {
                    if t.id <= id {
                        pos_after = Some(idx + 1);
                    } else {
                        break 'scan;
                    }
                }
                idx += 1;
            }
        }
        match pos_after {
            Some(p) => p,
            None => {
                // Either the prefix was truncated away (subscriber misses
                // data dropped beyond its prefix) or the subscriber is
                // exactly at / ahead of the truncation horizon: replay
                // from the start of what we hold.
                if self.dropped_stable_id > id {
                    self.truncation_misses += 1;
                }
                self.base
            }
        }
    }

    /// Drops every entry up to and including the last stable tuple with
    /// `id <= through` (cumulative-ack truncation, §8.1). Segments are
    /// released whole or narrowed by range split; batch views already
    /// handed out for replay keep their shared backing alive.
    pub fn truncate_through(&mut self, through: TupleId) {
        let mut last: Option<usize> = None;
        let mut idx = 0;
        // Stable ids increase monotonically along the log, so the scan can
        // stop at the first stable entry beyond the ack instead of walking
        // everything retained.
        'scan: for seg in &self.segs {
            for t in seg.batch.as_slice() {
                if t.is_stable_data() {
                    if t.id <= through {
                        last = Some(idx);
                    } else {
                        break 'scan;
                    }
                }
                idx += 1;
            }
        }
        if let Some(p) = last {
            self.drop_front_entries(p + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{Time, Value};

    fn stable(id: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(id),
            vec![Value::Int(id as i64)],
        )
    }

    fn tentative(id: u64) -> Tuple {
        Tuple::tentative(TupleId(id), Time::from_millis(id), vec![])
    }

    fn boundary(ms: u64) -> Tuple {
        Tuple::boundary(TupleId::NONE, Time::from_millis(ms))
    }

    #[test]
    fn append_and_replay_from_position() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(boundary(10));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId(1));
        let rest: Vec<_> = b.entries_from(pos).cloned().collect();
        assert_eq!(rest, vec![boundary(10), stable(2)]);
    }

    #[test]
    fn replay_from_none_returns_everything() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId::NONE);
        assert_eq!(b.entries_from(pos).count(), 2);
    }

    #[test]
    fn replay_skips_undone_tentative_history() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(tentative(2));
        b.append(Tuple::undo(TupleId::NONE, TupleId(1)));
        b.append(stable(2));
        let pos = b.position_after_stable(TupleId(1));
        let rest: Vec<TupleKind> = b.entries_from(pos).map(|t| t.kind).collect();
        // The rolled-back tentative tuple is dead history: a new subscriber
        // gets the undo (harmless) and the corrections only.
        assert_eq!(rest, vec![TupleKind::Undo, TupleKind::Insertion]);
    }

    #[test]
    fn undo_inside_one_appended_batch_kills_earlier_tentatives() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append_batch(TupleBatch::from_vec(vec![
            stable(1),
            tentative(2),
            tentative(3),
            Tuple::undo(TupleId::NONE, TupleId(1)),
            stable(2),
        ]));
        let pos = b.position_after_stable(TupleId(1));
        let rest: Vec<TupleKind> = b.entries_from(pos).map(|t| t.kind).collect();
        assert_eq!(rest, vec![TupleKind::Undo, TupleKind::Insertion]);
        let batches = b.batches_from(pos);
        let kinds: Vec<TupleKind> = batches
            .iter()
            .flat_map(|c| c.iter().map(|t| t.kind))
            .collect();
        assert_eq!(kinds, vec![TupleKind::Undo, TupleKind::Insertion]);
    }

    #[test]
    fn live_tentative_suffix_still_replays() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(tentative(2));
        b.append(tentative(3));
        let pos = b.position_after_stable(TupleId(1));
        assert_eq!(b.entries_from(pos).count(), 2, "uncorrected suffix replays");
    }

    #[test]
    fn truncation_drops_prefix_and_tracks_base() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        for i in 1..=5 {
            b.append(stable(i));
        }
        b.truncate_through(TupleId(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.end(), 5);
        let pos = b.position_after_stable(TupleId(4));
        let rest: Vec<_> = b.entries_from(pos).map(|t| t.id.0).collect();
        assert_eq!(rest, vec![5]);
    }

    #[test]
    fn truncated_past_subscriber_counts_miss() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        for i in 1..=5 {
            b.append(stable(i));
        }
        b.truncate_through(TupleId(4));
        // Subscriber only has tuple 1; tuples 2-4 are gone.
        let pos = b.position_after_stable(TupleId(1));
        assert_eq!(pos, b.end() - 1, "replay starts at earliest retained");
        assert_eq!(b.truncation_misses(), 1);
    }

    #[test]
    fn bounded_buffer_evicts_oldest() {
        let mut b = OutputBuffer::new(BufferPolicy::DropOldest(3));
        for i in 1..=10 {
            b.append(stable(i));
        }
        assert_eq!(b.len(), 3);
        let all: Vec<u64> = b.entries_from(0).map(|t| t.id.0).collect();
        assert_eq!(all, vec![8, 9, 10]);
    }

    #[test]
    fn truncate_keeps_interleaved_metadata_after_point() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append(stable(1));
        b.append(boundary(5));
        b.append(stable(2));
        b.append(boundary(15));
        b.truncate_through(TupleId(1));
        let rest: Vec<TupleKind> = b.entries_from(b.end() - b.len()).map(|t| t.kind).collect();
        // The boundary directly after stable 1 is retained: a subscriber
        // resuming after stable 1 still needs that watermark.
        assert_eq!(
            rest,
            vec![
                TupleKind::Boundary,
                TupleKind::Insertion,
                TupleKind::Boundary
            ]
        );
    }

    // ------------------------------------------------------------------
    // Shared-ownership semantics: retention, replay, and ack truncation
    // must never copy or invalidate tuples another cursor references.
    // ------------------------------------------------------------------

    #[test]
    fn retention_and_replay_share_the_emitted_allocation() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        let emitted = TupleBatch::from_vec((1..=4).map(stable).collect());
        b.append_batch(emitted.clone());

        // Two subscribers at different positions: both replays are views of
        // the emitted batch — zero tuple copies for either.
        let fast_pos = b.position_after_stable(TupleId(3));
        let slow_pos = b.position_after_stable(TupleId::NONE);
        let fast = b.batches_from(fast_pos);
        let slow = b.batches_from(slow_pos);
        assert_eq!(fast.len(), 1);
        assert_eq!(slow.len(), 1);
        assert!(fast[0].shares_backing(&emitted));
        assert!(slow[0].shares_backing(&emitted));
        assert_eq!(fast[0].iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![4]);
        assert_eq!(slow[0].len(), 4);
    }

    #[test]
    fn ack_mid_batch_splits_ranges_without_touching_shared_views() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        let emitted = TupleBatch::from_vec((1..=6).map(stable).collect());
        b.append_batch(emitted.clone());

        // A slow subscriber's replay cursor took its views first.
        let slow_pos = b.position_after_stable(TupleId::NONE);
        let slow_view = b.batches_from(slow_pos);
        assert_eq!(slow_view[0].len(), 6);

        // Ack lands mid-batch: the buffer narrows its segment by range
        // split rather than draining tuples.
        b.truncate_through(TupleId(4));
        assert_eq!(b.len(), 2);
        assert_eq!(b.end(), 6);

        // The slow subscriber's already-taken views are intact: same
        // tuples, same values, still backed by the original allocation.
        assert_eq!(
            slow_view[0].iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 6],
            "ack truncation must not mutate shared replay views"
        );
        assert!(slow_view[0].shares_backing(&emitted));
        assert_eq!(slow_view[0][0].values, vec![Value::Int(1)]);

        // And the buffer's own retained suffix still shares that backing
        // (narrowed view, not a copy).
        let rest = b.batches_from(b.end() - b.len());
        assert_eq!(rest.len(), 1);
        assert!(rest[0].shares_backing(&emitted));
        assert_eq!(
            rest[0].iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![5, 6]
        );
    }

    #[test]
    fn ack_from_one_subscriber_leaves_other_cursor_replayable() {
        // Two replicas subscribe; replica A acks through 5, but replica B
        // is still at 2. Truncation follows the *minimum* ack (computed by
        // the node), so position_after_stable for B must stay serviceable —
        // and if an over-eager ack did truncate past B, the miss is counted
        // rather than handing B corrupted data.
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        b.append_batch(TupleBatch::from_vec((1..=6).map(stable).collect()));

        // Min-ack truncation (B's position): nothing before 2 is needed.
        b.truncate_through(TupleId(2));
        let pos_b = b.position_after_stable(TupleId(2));
        let replay_b: Vec<u64> = b
            .batches_from(pos_b)
            .iter()
            .flat_map(|c| c.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(replay_b, vec![3, 4, 5, 6]);
        assert_eq!(b.truncation_misses(), 0);

        // Once every subscriber acked through 5, truncation narrows
        // further; B resumes exactly at its ack with no miss.
        b.truncate_through(TupleId(5));
        let pos_b = b.position_after_stable(TupleId(5));
        let replay_b: Vec<u64> = b
            .batches_from(pos_b)
            .iter()
            .flat_map(|c| c.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(
            replay_b,
            vec![6],
            "entries at/before the min ack were split off"
        );
        assert_eq!(b.truncation_misses(), 0);

        // A subscriber genuinely behind the horizon (ack 4 < dropped 5) is
        // detected as a miss instead of being handed corrupted data.
        let pos_late = b.position_after_stable(TupleId(4));
        assert_eq!(pos_late, b.end() - b.len(), "resume at earliest retained");
        assert_eq!(b.truncation_misses(), 1);
    }

    #[test]
    fn dead_marking_never_mutates_shared_tuples() {
        let mut b = OutputBuffer::new(BufferPolicy::Unbounded);
        let emitted = TupleBatch::from_vec(vec![stable(1), tentative(2), tentative(3)]);
        b.append_batch(emitted.clone());
        // A subscriber took the tentative suffix before the rollback.
        let view_pos = b.position_after_stable(TupleId(1));
        let view = b.batches_from(view_pos);
        b.append(Tuple::undo(TupleId::NONE, TupleId(1)));

        // The buffer's replay now skips the dead tentatives...
        let after_pos = b.position_after_stable(TupleId(1));
        let after: Vec<TupleKind> = b
            .batches_from(after_pos)
            .iter()
            .flat_map(|c| c.iter().map(|t| t.kind))
            .collect();
        assert_eq!(after, vec![TupleKind::Undo]);

        // ...but the earlier view still sees the original, unmutated tuples
        // (its consumer will roll them back via the UNDO it receives).
        let kinds: Vec<TupleKind> = view.iter().flat_map(|c| c.iter().map(|t| t.kind)).collect();
        assert_eq!(kinds, vec![TupleKind::Tentative, TupleKind::Tentative]);
        assert!(view[0].shares_backing(&emitted));
    }

    #[test]
    fn bounded_eviction_splits_segments_by_range() {
        let mut b = OutputBuffer::new(BufferPolicy::DropOldest(4));
        let first = TupleBatch::from_vec((1..=6).map(stable).collect());
        b.append_batch(first.clone());
        assert_eq!(b.len(), 4, "evicted down to the bound");
        let kept = b.batches_from(b.end() - b.len());
        assert!(kept[0].shares_backing(&first), "narrowed, not copied");
        assert_eq!(
            kept[0].iter().map(|t| t.id.0).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );

        b.append_batch(TupleBatch::from_vec((7..=8).map(stable).collect()));
        assert_eq!(b.len(), 4);
        let all: Vec<u64> = b
            .batches_from(b.end() - b.len())
            .iter()
            .flat_map(|c| c.iter().map(|t| t.id.0))
            .collect();
        assert_eq!(all, vec![5, 6, 7, 8]);
    }
}
