//! Data sources (§2.2).
//!
//! Sources stamp tuples with the (virtual) clock, emit periodic boundary
//! tuples as punctuation + heartbeat (§4.2.1), and "log input tuples
//! persistently before transmitting them to all replicas that process the
//! corresponding streams" — here, an in-memory log per source with
//! per-subscriber delivery positions. A subscriber that was unreachable
//! (link failure) simply stops advancing; when the link heals, the next
//! delivery flushes the whole backlog — the paper's "the data source
//! replays all missing tuples while continuing to produce new tuples".
//!
//! Scripted faults: [`DataSource::MUTE_BOUNDARIES`] suppresses boundary
//! production only (the §6.2 failure mode used by the chain experiments,
//! where the output rate must stay unchanged), and link failures are
//! injected at the network layer.

use crate::msg::{NetMsg, NodeState};
use crate::runtime::{DpcActor, RuntimeCtx};
use borealis_sim::{Actor, Ctx, FaultEvent};
use borealis_types::{
    BatchLog, Duration, NodeId, StreamId, Time, Tuple, TupleBatch, TupleId, Value,
};
use std::collections::HashMap;

/// Deterministic tuple-payload generators.
#[derive(Debug, Clone)]
pub enum ValueGen {
    /// `[Int(seq)]` — a sequence number.
    Seq,
    /// `[Int(seq % keys), Int(seq)]` — a group key plus sequence.
    Keyed {
        /// Number of distinct keys.
        keys: i64,
    },
    /// `[Int(seq % keys), Float(amplitude * f(seq))]` — a keyed reading with
    /// a deterministic wave, for sensor-style workloads.
    Reading {
        /// Number of distinct keys (sensors).
        keys: i64,
        /// Reading amplitude.
        amplitude: f64,
    },
}

impl ValueGen {
    fn gen(&self, seq: u64) -> Vec<Value> {
        match self {
            ValueGen::Seq => vec![Value::Int(seq as i64)],
            ValueGen::Keyed { keys } => {
                vec![Value::Int(seq as i64 % keys), Value::Int(seq as i64)]
            }
            ValueGen::Reading { keys, amplitude } => {
                let phase = (seq % 97) as f64 / 97.0;
                vec![
                    Value::Int(seq as i64 % keys),
                    Value::Float(amplitude * (2.0 * std::f64::consts::PI * phase).sin()),
                ]
            }
        }
    }
}

/// Static configuration of one data source.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// The stream this source produces.
    pub stream: StreamId,
    /// Data rate in tuples per second.
    pub rate: f64,
    /// Boundary (punctuation/heartbeat) period; `Duration::ZERO` disables
    /// boundaries (the paper's non-fault-tolerant baseline).
    pub boundary_interval: Duration,
    /// Generation tick: tuples are produced in batches every tick.
    pub batch_period: Duration,
    /// Payload generator.
    pub values: ValueGen,
    /// Stop generating data after this many tuples (`None` = unbounded).
    /// Boundaries keep flowing afterwards, so downstream buckets still
    /// stabilize — this models a finite load episode (e.g. an overload
    /// burst that later drains).
    pub limit: Option<u64>,
}

impl SourceConfig {
    /// A sequence source at `rate` tuples/second with 100 ms boundaries.
    pub fn seq(stream: StreamId, rate: f64) -> SourceConfig {
        SourceConfig {
            stream,
            rate,
            boundary_interval: Duration::from_millis(100),
            batch_period: Duration::from_millis(10),
            values: ValueGen::Seq,
            limit: None,
        }
    }
}

const TIMER_GEN: u64 = 1;
const TIMER_BOUNDARY: u64 = 2;

/// The data-source actor.
pub struct DataSource {
    cfg: SourceConfig,
    /// The persistent input log, stored as shared batches: replaying a
    /// backlog to N subscribers shares one allocation N ways.
    log: BatchLog,
    next_id: u64,
    subscribers: HashMap<NodeId, usize>,
    /// Last stable tuple each subscriber acknowledged (rewind point after
    /// a link failure: in-flight tuples may have been lost).
    acked: HashMap<NodeId, TupleId>,
    boundaries_muted: bool,
}

impl DataSource {
    /// Custom fault tag: stop producing boundary tuples (§6.2 failures).
    pub const MUTE_BOUNDARIES: u64 = 1;
    /// Custom fault tag: resume producing boundary tuples.
    pub const UNMUTE_BOUNDARIES: u64 = 2;

    /// Creates a source from its configuration.
    pub fn new(cfg: SourceConfig) -> DataSource {
        DataSource {
            cfg,
            log: BatchLog::new(),
            next_id: 1,
            subscribers: HashMap::new(),
            acked: HashMap::new(),
            boundaries_muted: false,
        }
    }

    /// Size of the persistent log (tests, buffer accounting).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    fn flush<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        let stream = self.cfg.stream;
        for (&sub, pos) in &mut self.subscribers {
            if *pos >= self.log.len() || !ctx.reachable(sub) {
                continue;
            }
            // Shared views of the log suffix: every subscriber behind the
            // same position receives reference-counted clones of the same
            // sealed batches.
            for tuples in self.log.batches_from(*pos) {
                ctx.send(
                    sub,
                    NetMsg::Data {
                        stream,
                        tuples: tuples.into(),
                    },
                );
            }
            *pos = self.log.len();
        }
    }

    /// The deterministic stime of sequence number `id`: `id / rate` after
    /// the origin, independent of when generation actually runs.
    fn stime_of(&self, id: u64) -> Time {
        Time((id as f64 * 1_000_000.0 / self.cfg.rate) as u64)
    }

    /// Generates every tuple whose stime has been reached by `now`.
    ///
    /// Generation is time-based (not tick-based) so it can run from both
    /// the generation timer and the boundary timer: a boundary with stime
    /// `now` may only be emitted after every tuple with stime <= `now` is
    /// in the log — the §4.2.1 punctuation contract.
    ///
    /// Stimes (and payloads) are pure functions of the sequence number, so
    /// the logged stream is identical run to run and **runtime to
    /// runtime**: the discrete-event simulator and the wall-clock thread
    /// engine feed byte-identical input into the diagram, which is what
    /// makes cross-runtime output equivalence testable. Timer jitter only
    /// affects *when* a tuple is released, never its content.
    fn generate(&mut self, now: Time) {
        while self.cfg.limit.is_none_or(|l| self.next_id <= l) && self.stime_of(self.next_id) <= now
        {
            let t = Tuple::insertion(
                TupleId(self.next_id),
                self.stime_of(self.next_id),
                self.cfg.values.gen(self.next_id),
            );
            self.next_id += 1;
            self.log.push(t);
        }
    }
}

/// The protocol body, written once against [`RuntimeCtx`]; the adapters
/// below expose it to both runtimes.
impl DataSource {
    /// Startup: arm the generation and boundary timers.
    pub fn start<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
        ctx.set_timer(ctx.now() + self.cfg.batch_period, TIMER_GEN);
        if self.cfg.boundary_interval > Duration::ZERO {
            ctx.set_timer(ctx.now() + self.cfg.boundary_interval, TIMER_BOUNDARY);
        }
    }

    /// Handles one protocol message.
    pub fn message<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, from: NodeId, msg: NetMsg) {
        match msg {
            NetMsg::Subscribe {
                stream,
                last_stable,
                saw_tentative,
                fresh_only,
            } => {
                if stream != self.cfg.stream {
                    return;
                }
                // Find the position after the subscriber's stable prefix.
                let pos = if fresh_only {
                    self.log.len()
                } else {
                    self.log.position_after_stable(last_stable)
                };
                self.subscribers.insert(from, pos);
                if saw_tentative {
                    // Sources never produce tentative data, but a recovering
                    // subscriber may hold junk from a dead upstream: clear it.
                    ctx.send(
                        from,
                        NetMsg::Data {
                            stream,
                            tuples: TupleBatch::single(Tuple::undo(TupleId::NONE, last_stable))
                                .into(),
                        },
                    );
                }
                self.flush(ctx);
            }
            NetMsg::Unsubscribe { stream } if stream == self.cfg.stream => {
                self.subscribers.remove(&from);
            }
            NetMsg::HeartbeatReq => {
                ctx.send(
                    from,
                    NetMsg::HeartbeatResp {
                        node_state: NodeState::Stable,
                        stream_states: vec![(self.cfg.stream, NodeState::Stable)],
                    },
                );
            }
            NetMsg::Ack { stream, through } if stream == self.cfg.stream => {
                // The persistent log is never truncated (§2.2), but acks
                // mark the safe rewind point after link failures.
                let e = self.acked.entry(from).or_insert(TupleId::NONE);
                *e = (*e).max(through);
            }
            _ => {}
        }
    }

    /// Handles one timer callback.
    pub fn timer<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, kind: u64) {
        match kind {
            TIMER_GEN => {
                self.generate(ctx.now());
                self.flush(ctx);
                ctx.set_timer(ctx.now() + self.cfg.batch_period, TIMER_GEN);
            }
            TIMER_BOUNDARY => {
                if !self.boundaries_muted {
                    // Data with stime <= now must precede the boundary.
                    self.generate(ctx.now());
                    self.log.push(Tuple::boundary(TupleId::NONE, ctx.now()));
                    self.flush(ctx);
                }
                ctx.set_timer(ctx.now() + self.cfg.boundary_interval, TIMER_BOUNDARY);
            }
            _ => {}
        }
    }

    /// Reacts to a fault notification (boundary muting, link heals).
    pub fn fault<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, fault: &FaultEvent) {
        match fault {
            FaultEvent::Custom { tag, .. } if *tag == Self::MUTE_BOUNDARIES => {
                self.boundaries_muted = true;
            }
            FaultEvent::Custom { tag, .. } if *tag == Self::UNMUTE_BOUNDARIES => {
                self.boundaries_muted = false;
            }
            FaultEvent::LinkUp { a, b } => {
                // Tuples in flight when the link broke were lost; rewind the
                // healed subscriber to its last acknowledged tuple (the
                // consumer deduplicates any overlap) and resend the backlog.
                for peer in [*a, *b] {
                    if let Some(pos) = self.subscribers.get_mut(&peer) {
                        let acked = self.acked.get(&peer).copied().unwrap_or(TupleId::NONE);
                        let rewind = self.log.position_after_stable(acked);
                        *pos = (*pos).min(rewind);
                    }
                }
                self.flush(ctx);
            }
            FaultEvent::NodeDown(n) if *n != ctx.id() => {
                // A crashed subscriber process lost its subscription state;
                // it re-subscribes from scratch (with its recovered
                // position) when it comes back.
                self.subscribers.remove(n);
                self.acked.remove(n);
            }
            _ => {}
        }
    }
}

/// Simulator adapter: static dispatch into the shared protocol body.
impl Actor<NetMsg> for DataSource {
    fn on_start(&mut self, ctx: &mut Ctx<NetMsg>) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut Ctx<NetMsg>, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut Ctx<NetMsg>, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut Ctx<NetMsg>, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}

/// Thread-engine adapter: dynamic dispatch into the shared protocol body.
impl DpcActor for DataSource {
    fn on_start(&mut self, ctx: &mut dyn RuntimeCtx) {
        self.start(ctx)
    }
    fn on_message(&mut self, ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg) {
        self.message(ctx, from, msg)
    }
    fn on_timer(&mut self, ctx: &mut dyn RuntimeCtx, kind: u64) {
        self.timer(ctx, kind)
    }
    fn on_fault(&mut self, ctx: &mut dyn RuntimeCtx, fault: &FaultEvent) {
        self.fault(ctx, fault)
    }
}
