//! Per-input-stream upstream management: the downstream half of the Data
//! Path plus the Consistency Manager's monitoring and switching logic
//! (§4.2.3, §4.3, Table II).
//!
//! For each input stream a node (or client proxy) tracks the set of
//! upstream replicas able to produce it, their advertised consistency
//! states (from keep-alive responses), and what this consumer has received
//! so far (last stable tuple, tentative suffix). From those facts it
//! decides, per Table II:
//!
//! * stay with a STABLE upstream;
//! * switch to a STABLE replica as soon as the current upstream is not
//!   STABLE;
//! * otherwise prefer an UP_FAILURE replica (tentative data maintains
//!   availability);
//! * while the current upstream is STABILIZING, stay connected for the
//!   corrections *and* subscribe to an UP_FAILURE replica for fresh
//!   tentative data — the §4.4.3 dual subscription — until a REC_DONE
//!   arrives, at which point the stabilized upstream becomes the sole
//!   provider.

use crate::msg::NodeState;
use borealis_types::{Duration, NodeId, StreamId, Time, Tuple, TupleId, TupleKind};
use std::collections::BTreeSet;

/// Subscription changes requested by the manager; the owning actor turns
/// them into `Subscribe`/`Unsubscribe` messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpstreamAction {
    /// Subscribe to `to`, resuming after `last_stable` (with `saw_tentative`
    /// signalling that an UNDO + corrections are needed first).
    Subscribe {
        /// Replica to subscribe to.
        to: NodeId,
        /// Stable prefix already held.
        last_stable: TupleId,
        /// True if an uncorrected tentative suffix follows the prefix.
        saw_tentative: bool,
        /// Skip history: deliver only new emissions (dual subscription).
        fresh_only: bool,
    },
    /// Drop the subscription to `from`.
    Unsubscribe {
        /// Replica to leave.
        from: NodeId,
    },
}

#[derive(Debug, Clone, Copy)]
struct PeerInfo {
    state: NodeState,
    last_heard: Time,
}

/// Manager for one input stream of one consumer.
#[derive(Debug)]
pub struct UpstreamManager {
    /// Debug tracing (set via BOREALIS_TRACE_SWITCH env).
    trace: bool,
    stream: StreamId,
    candidates: Vec<NodeId>,
    /// Whether to monitor and switch (false for single-source streams).
    monitor: bool,
    /// The primary upstream (Curr(s) in Table II).
    curr: NodeId,
    /// All live subscriptions (curr plus, during upstream stabilization,
    /// one UP_FAILURE replica for fresh data).
    subscribed: BTreeSet<NodeId>,
    peers: Vec<PeerInfo>,
    last_stable: TupleId,
    saw_tentative: bool,
}

impl UpstreamManager {
    /// Creates a manager; the first candidate is the initial upstream.
    ///
    /// # Panics
    /// Panics if `candidates` is empty — a stream with no producer is a
    /// deployment bug.
    pub fn new(stream: StreamId, candidates: Vec<NodeId>, monitor: bool, now: Time) -> Self {
        assert!(!candidates.is_empty(), "stream {stream} has no producers");
        let curr = candidates[0];
        let peers = candidates
            .iter()
            .map(|_| PeerInfo {
                state: NodeState::Stable,
                last_heard: now,
            })
            .collect();
        UpstreamManager {
            trace: std::env::var("BOREALIS_TRACE_SWITCH").is_ok(),
            stream,
            candidates,
            monitor,
            curr,
            subscribed: BTreeSet::new(),
            peers,
            last_stable: TupleId::NONE,
            saw_tentative: false,
        }
    }

    /// The managed stream.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Current primary upstream.
    pub fn current(&self) -> NodeId {
        self.curr
    }

    /// All upstream replicas of this stream.
    pub fn candidates(&self) -> &[NodeId] {
        &self.candidates
    }

    /// Id of the last stable tuple received.
    pub fn last_stable(&self) -> TupleId {
        self.last_stable
    }

    /// Whether tentative data was accepted since the stable prefix.
    pub fn saw_tentative(&self) -> bool {
        self.saw_tentative
    }

    /// Seeds the position recovered from a durable checkpoint. Must run
    /// before [`UpstreamManager::initial_subscribe`], so the first
    /// `Subscribe` resumes after the disk image instead of replaying the
    /// upstream buffer from the beginning.
    pub fn seed_recovered(&mut self, last_stable: TupleId, saw_tentative: bool) {
        self.last_stable = last_stable;
        self.saw_tentative = saw_tentative;
    }

    /// Replays one logged input tuple's prefix bookkeeping during a
    /// durable restart — the same transitions as live
    /// [`UpstreamManager::observe_tuple`], minus the subscription actions
    /// (there is no live peer yet).
    pub fn observe_replay(&mut self, t: &Tuple) {
        match t.kind {
            TupleKind::Insertion => self.last_stable = self.last_stable.max(t.id),
            TupleKind::Tentative => self.saw_tentative = true,
            TupleKind::Undo => {
                if let Some(target) = t.undo_target() {
                    self.last_stable = self.last_stable.min(target);
                }
                self.saw_tentative = false;
            }
            TupleKind::RecDone => self.saw_tentative = false,
            TupleKind::Boundary => {}
        }
    }

    /// The transport reported the connection to `peer` torn (a process
    /// crash seen as a TCP reset). The peer has lost our subscription
    /// state, so the subscription is gone even if the peer restarts before
    /// any keep-alive goes stale: mark it failed and forget the
    /// subscription — the next [`UpstreamManager::evaluate`] switches to a
    /// live replica (Table II) or re-subscribes when the peer recovers.
    pub fn connection_lost(&mut self, peer: NodeId, now: Time) {
        if !self.monitor {
            // Unmonitored (single-producer) streams have no switch/
            // re-subscribe machinery; leave their state untouched.
            return;
        }
        let Some(i) = self.candidates.iter().position(|&c| c == peer) else {
            return;
        };
        if self.trace {
            eprintln!("[um {}] connection to {} lost", self.stream, peer);
        }
        self.peers[i] = PeerInfo {
            state: NodeState::Failed,
            last_heard: now,
        };
        self.subscribed.remove(&peer);
    }

    /// True if data from `from` should be accepted (we are subscribed).
    pub fn accepts_from(&self, from: NodeId) -> bool {
        self.subscribed.contains(&from)
    }

    /// True for stable tuples already received (an upstream retransmission
    /// after a link heal): consumers drop these before processing. Stable
    /// ids are identical across replicas (determinism), so the check is
    /// valid across switches too.
    pub fn is_duplicate(&self, t: &Tuple) -> bool {
        t.is_stable_data() && t.id <= self.last_stable
    }

    /// Peers to send keep-alive requests to.
    pub fn heartbeat_targets(&self) -> Vec<NodeId> {
        if self.monitor {
            self.candidates.clone()
        } else {
            Vec::new()
        }
    }

    /// True if at least one producer of this stream is believed reachable.
    /// A stream whose every producer misses keep-alives is a failed input
    /// even before any data deadline expires (Fig. 5: "missing
    /// heartbeats").
    pub fn has_live_producer(&self) -> bool {
        self.peers.iter().any(|p| p.state != NodeState::Failed)
    }

    /// The initial subscription at startup.
    pub fn initial_subscribe(&mut self) -> Vec<UpstreamAction> {
        self.subscribed.insert(self.curr);
        vec![UpstreamAction::Subscribe {
            to: self.curr,
            last_stable: self.last_stable,
            saw_tentative: self.saw_tentative,
            fresh_only: false,
        }]
    }

    /// Records a keep-alive response.
    pub fn heartbeat_response(
        &mut self,
        from: NodeId,
        node_state: NodeState,
        stream_states: &[(StreamId, NodeState)],
        now: Time,
    ) {
        let Some(i) = self.candidates.iter().position(|&c| c == from) else {
            return;
        };
        // Fine-grained (§8.2): the per-stream state overrides the node
        // state when advertised.
        let state = stream_states
            .iter()
            .find(|(s, _)| *s == self.stream)
            .map(|(_, st)| *st)
            .unwrap_or(node_state);
        self.peers[i] = PeerInfo {
            state,
            last_heard: now,
        };
    }

    /// Updates received-prefix bookkeeping and handles the REC_DONE
    /// switchback. Returns subscription changes to apply.
    pub fn observe_tuple(&mut self, from: NodeId, t: &Tuple) -> Vec<UpstreamAction> {
        match t.kind {
            TupleKind::Insertion => {
                self.last_stable = self.last_stable.max(t.id);
            }
            TupleKind::Tentative => {
                self.saw_tentative = true;
            }
            TupleKind::Undo => {
                if let Some(target) = t.undo_target() {
                    self.last_stable = self.last_stable.min(target);
                }
                self.saw_tentative = false;
            }
            TupleKind::RecDone => {
                // §4.4: "The downstream node stays connected to both
                // upstream replicas until it receives a REC_DONE tuple on
                // the corrected stream" — then the stabilized replica is
                // up to date and becomes the sole provider.
                self.saw_tentative = false;
                if self.trace {
                    eprintln!("[um {}] RecDone from {} -> collapse", self.stream, from);
                }
                if self.subscribed.contains(&from) {
                    let mut actions = Vec::new();
                    for other in self.subscribed.clone() {
                        if other != from {
                            actions.push(UpstreamAction::Unsubscribe { from: other });
                            self.subscribed.remove(&other);
                        }
                    }
                    self.curr = from;
                    return actions;
                }
            }
            TupleKind::Boundary => {}
        }
        Vec::new()
    }

    fn state_of(&self, node: NodeId) -> NodeState {
        self.candidates
            .iter()
            .position(|&c| c == node)
            .map(|i| self.peers[i].state)
            .unwrap_or(NodeState::Failed)
    }

    /// Applies staleness (missed keep-alives => Failed) and the Table II
    /// condition-action rules. Returns subscription changes.
    pub fn evaluate(&mut self, now: Time, stale_after: Duration) -> Vec<UpstreamAction> {
        if !self.monitor {
            return Vec::new();
        }
        for (i, p) in self.peers.iter_mut().enumerate() {
            if now.since(p.last_heard) > stale_after && p.state != NodeState::Failed {
                p.state = NodeState::Failed;
                // A peer that stopped answering keep-alives has lost (or
                // will lose) our subscription state: treat the connection
                // as broken, like a TCP reset.
                self.subscribed.remove(&self.candidates[i]);
            }
        }
        let curr_state = self.state_of(self.curr);
        let mut actions = Vec::new();
        if self.trace {
            let states: Vec<String> = self
                .candidates
                .iter()
                .map(|&c| format!("{}={:?}", c, self.state_of(c)))
                .collect();
            eprintln!(
                "[um {} @{}] curr={} states={:?} subs={:?}",
                self.stream, now, self.curr, states, self.subscribed
            );
        }

        match curr_state {
            NodeState::Stable => {
                // Shed any extra (dual) subscriptions left over.
                for other in self.subscribed.clone() {
                    if other != self.curr {
                        actions.push(UpstreamAction::Unsubscribe { from: other });
                        self.subscribed.remove(&other);
                    }
                }
                // Re-establish a connection broken while the peer was
                // unreachable (e.g. it crashed and recovered, §4.5).
                if !self.subscribed.contains(&self.curr) {
                    self.subscribed.insert(self.curr);
                    actions.push(UpstreamAction::Subscribe {
                        to: self.curr,
                        last_stable: self.last_stable,
                        saw_tentative: self.saw_tentative,
                        fresh_only: false,
                    });
                }
            }
            _ => {
                let find = |state: NodeState, except: NodeId| {
                    self.candidates
                        .iter()
                        .copied()
                        .find(|&c| c != except && self.state_of(c) == state)
                };
                if let Some(stable) = find(NodeState::Stable, self.curr) {
                    // Rule 2: a STABLE replica exists — switch to it.
                    for other in self.subscribed.clone() {
                        actions.push(UpstreamAction::Unsubscribe { from: other });
                        self.subscribed.remove(&other);
                    }
                    self.curr = stable;
                    self.subscribed.insert(stable);
                    actions.push(UpstreamAction::Subscribe {
                        to: stable,
                        last_stable: self.last_stable,
                        saw_tentative: self.saw_tentative,
                        fresh_only: false,
                    });
                } else {
                    match curr_state {
                        NodeState::UpFailure => {
                            // Rule 3: stay with the UP_FAILURE upstream.
                        }
                        NodeState::Stabilization => {
                            // §4.4.3 dual subscription: keep the corrections
                            // flowing and add an UP_FAILURE replica for
                            // fresh tentative data.
                            if let Some(fresh) = find(NodeState::UpFailure, self.curr) {
                                if !self.subscribed.contains(&fresh) {
                                    self.subscribed.insert(fresh);
                                    // The consumer already holds the
                                    // tentative era: only new data, please.
                                    actions.push(UpstreamAction::Subscribe {
                                        to: fresh,
                                        last_stable: self.last_stable,
                                        saw_tentative: self.saw_tentative,
                                        fresh_only: true,
                                    });
                                }
                            }
                        }
                        NodeState::Failed => {
                            // Prefer UP_FAILURE, else a stabilizing replica
                            // (at least corrections flow), else nothing.
                            let next = find(NodeState::UpFailure, self.curr)
                                .or_else(|| find(NodeState::Stabilization, self.curr));
                            if let Some(next) = next {
                                for other in self.subscribed.clone() {
                                    actions.push(UpstreamAction::Unsubscribe { from: other });
                                    self.subscribed.remove(&other);
                                }
                                self.curr = next;
                                self.subscribed.insert(next);
                                actions.push(UpstreamAction::Subscribe {
                                    to: next,
                                    last_stable: self.last_stable,
                                    saw_tentative: self.saw_tentative,
                                    fresh_only: false,
                                });
                            }
                        }
                        NodeState::Stable => unreachable!("handled above"),
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um() -> UpstreamManager {
        UpstreamManager::new(StreamId(0), vec![NodeId(10), NodeId(11)], true, Time::ZERO)
    }

    fn hb(u: &mut UpstreamManager, from: NodeId, state: NodeState, ms: u64) {
        u.heartbeat_response(from, state, &[], Time::from_millis(ms));
    }

    const STALE: Duration = Duration::from_millis(250);

    #[test]
    fn initial_subscribe_targets_first_candidate() {
        let mut u = um();
        let actions = u.initial_subscribe();
        assert_eq!(
            actions,
            vec![UpstreamAction::Subscribe {
                to: NodeId(10),
                last_stable: TupleId::NONE,
                saw_tentative: false,
                fresh_only: false
            }]
        );
        assert!(u.accepts_from(NodeId(10)));
        assert!(!u.accepts_from(NodeId(11)));
    }

    #[test]
    fn stays_with_stable_upstream() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(10), NodeState::Stable, 100);
        hb(&mut u, NodeId(11), NodeState::Stable, 100);
        assert!(u.evaluate(Time::from_millis(150), STALE).is_empty());
        assert_eq!(u.current(), NodeId(10));
    }

    #[test]
    fn switches_to_stable_replica_when_current_fails() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(10), NodeState::UpFailure, 100);
        hb(&mut u, NodeId(11), NodeState::Stable, 100);
        let actions = u.evaluate(Time::from_millis(150), STALE);
        assert_eq!(u.current(), NodeId(11));
        assert!(actions.contains(&UpstreamAction::Unsubscribe { from: NodeId(10) }));
        assert!(matches!(
            actions.last(),
            Some(UpstreamAction::Subscribe { to: NodeId(11), .. })
        ));
    }

    #[test]
    fn stays_with_up_failure_when_no_stable_exists() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(10), NodeState::UpFailure, 100);
        hb(&mut u, NodeId(11), NodeState::UpFailure, 100);
        assert!(u.evaluate(Time::from_millis(150), STALE).is_empty());
        assert_eq!(u.current(), NodeId(10));
    }

    #[test]
    fn missed_heartbeats_mark_peer_failed_and_switch() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(11), NodeState::UpFailure, 900);
        // Node 10 last heard at t=0; at t=1000 it is stale.
        let actions = u.evaluate(Time::from_millis(1000), STALE);
        assert_eq!(u.current(), NodeId(11));
        assert!(!actions.is_empty());
    }

    #[test]
    fn dual_subscription_during_upstream_stabilization() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(10), NodeState::Stabilization, 100);
        hb(&mut u, NodeId(11), NodeState::UpFailure, 100);
        let actions = u.evaluate(Time::from_millis(150), STALE);
        // Keeps node 10 (corrections) and adds node 11 (fresh data).
        assert_eq!(u.current(), NodeId(10));
        assert!(u.accepts_from(NodeId(10)));
        assert!(u.accepts_from(NodeId(11)));
        assert_eq!(
            actions,
            vec![UpstreamAction::Subscribe {
                to: NodeId(11),
                last_stable: TupleId::NONE,
                saw_tentative: false,
                fresh_only: true
            }]
        );
        // Idempotent: a second evaluation adds nothing.
        assert!(u.evaluate(Time::from_millis(200), STALE).is_empty());
    }

    #[test]
    fn rec_done_collapses_dual_subscription() {
        let mut u = um();
        u.initial_subscribe();
        hb(&mut u, NodeId(10), NodeState::Stabilization, 100);
        hb(&mut u, NodeId(11), NodeState::UpFailure, 100);
        u.evaluate(Time::from_millis(150), STALE);
        let rd = Tuple::rec_done(TupleId::NONE, Time::from_millis(200));
        let actions = u.observe_tuple(NodeId(10), &rd);
        assert_eq!(
            actions,
            vec![UpstreamAction::Unsubscribe { from: NodeId(11) }]
        );
        assert_eq!(u.current(), NodeId(10));
        assert!(!u.accepts_from(NodeId(11)));
    }

    #[test]
    fn bookkeeping_tracks_prefix_and_tentative_suffix() {
        let mut u = um();
        u.initial_subscribe();
        let s = Tuple::insertion(TupleId(4), Time::ZERO, vec![]);
        u.observe_tuple(NodeId(10), &s);
        assert_eq!(u.last_stable(), TupleId(4));
        let t = Tuple::tentative(TupleId(9), Time::ZERO, vec![]);
        u.observe_tuple(NodeId(10), &t);
        // A switch now must request correction of the tentative suffix.
        hb(&mut u, NodeId(10), NodeState::Failed, 100);
        hb(&mut u, NodeId(11), NodeState::Stable, 100);
        let actions = u.evaluate(Time::from_millis(150), STALE);
        assert!(actions.contains(&UpstreamAction::Subscribe {
            to: NodeId(11),
            last_stable: TupleId(4),
            saw_tentative: true,
            fresh_only: false
        }));
        // The UNDO from the new upstream clears the tentative flag.
        let undo = Tuple::undo(TupleId::NONE, TupleId(4));
        u.observe_tuple(NodeId(11), &undo);
        assert_eq!(u.last_stable(), TupleId(4));
    }

    #[test]
    fn unmonitored_streams_never_switch() {
        let mut u = UpstreamManager::new(StreamId(0), vec![NodeId(5)], false, Time::ZERO);
        u.initial_subscribe();
        assert!(u.heartbeat_targets().is_empty());
        assert!(u.evaluate(Time::from_secs(100), STALE).is_empty());
        assert_eq!(u.current(), NodeId(5));
    }

    #[test]
    fn failed_current_prefers_up_failure_then_stabilizing() {
        let mut u = UpstreamManager::new(
            StreamId(0),
            vec![NodeId(1), NodeId(2), NodeId(3)],
            true,
            Time::ZERO,
        );
        u.initial_subscribe();
        hb(&mut u, NodeId(1), NodeState::Failed, 100);
        hb(&mut u, NodeId(2), NodeState::Stabilization, 100);
        hb(&mut u, NodeId(3), NodeState::UpFailure, 100);
        u.evaluate(Time::from_millis(150), STALE);
        assert_eq!(u.current(), NodeId(3), "UP_FAILURE preferred");

        // If only a stabilizing replica remains, use it.
        hb(&mut u, NodeId(3), NodeState::Failed, 200);
        u.evaluate(Time::from_millis(250), STALE);
        assert_eq!(u.current(), NodeId(2));
    }
}
