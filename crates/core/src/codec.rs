//! The frame codec of the socket transport: [`NetMsg`] and the fabric's
//! control frames, over the `borealis-types` wire primitives.
//!
//! Every frame is `[len:u32][from:u32][to:u32][kind:u8][payload]` (little
//! endian, `len` counting everything after itself — see
//! [`borealis_types::wire`] for the header and tuple layouts). The `kind`
//! byte selects the payload codec:
//!
//! | kind | frame | payload |
//! |---|---|---|
//! | `0x00` | `Data` | `stream:u32 batch` |
//! | `0x01` | `Subscribe` | `stream:u32 last_stable:u64 flags:u8` (bit 0 `saw_tentative`, bit 1 `fresh_only`) |
//! | `0x02` | `Unsubscribe` | `stream:u32` |
//! | `0x03` | `Ack` | `stream:u32 through:u64` |
//! | `0x04` | `HeartbeatReq` | empty |
//! | `0x05` | `HeartbeatResp` | `node_state:u8 count:u32 (stream:u32 state:u8)*` |
//! | `0x06`–`0x09` | `Reconcile{Request,Grant,Reject,Done}` | empty |
//! | `0xE0` | `CreditGrant` | empty (the link is the header's `from`/`to`) |
//! | `0xE1` | `Hello` | `proc:u32` |
//! | `0xE2` | `StallReport` | `micros:u64` (0 clears the stall) |
//!
//! `Data` encodes **straight from the `Arc`'d batch view** into the
//! caller's reusable write buffer — no intermediate message buffer, no
//! per-tuple allocation. Node states are `Stable=0`, `UpFailure=1`,
//! `Stabilization=2`, `Failed=3`.
//!
//! Decoding rejects truncated or corrupted frames with a
//! [`WireError`](borealis_types::WireError); it never panics on foreign
//! bytes.

use crate::msg::{NetMsg, NodeState};
use borealis_types::wire::{
    begin_frame, end_frame, put_u32, put_u64, put_u8, put_view, split_frame, Reader,
};
use borealis_types::{NodeId, StreamId, TupleId, WireError};

/// Frame kind bytes (the `NetMsg` range).
mod kind {
    pub const DATA: u8 = 0x00;
    pub const SUBSCRIBE: u8 = 0x01;
    pub const UNSUBSCRIBE: u8 = 0x02;
    pub const ACK: u8 = 0x03;
    pub const HEARTBEAT_REQ: u8 = 0x04;
    pub const HEARTBEAT_RESP: u8 = 0x05;
    pub const RECONCILE_REQUEST: u8 = 0x06;
    pub const RECONCILE_GRANT: u8 = 0x07;
    pub const RECONCILE_REJECT: u8 = 0x08;
    pub const RECONCILE_DONE: u8 = 0x09;
    pub const CREDIT_GRANT: u8 = 0xE0;
    pub const HELLO: u8 = 0xE1;
    pub const STALL_REPORT: u8 = 0xE2;
    pub const GOODBYE: u8 = 0xE3;
}

/// One decoded frame: either an actor-level protocol message or one of
/// the fabric's own control frames (which never reach a mailbox).
#[derive(Debug, Clone)]
pub enum WireMsg {
    /// An actor-to-actor protocol message for the header's `to` mailbox.
    Net(NetMsg),
    /// The receiver consumed a credit-controlled delivery on the header's
    /// `from → to` link: return one credit (the wire form of the
    /// in-process `Replenish` path).
    CreditGrant,
    /// Connection handshake: the dialing process identifies itself.
    Hello {
        /// Index of the dialing process in the deployment's process plan.
        proc: u32,
    },
    /// Sender-side credit-stall telemetry for the header's `from → to`
    /// link, so the receiver's `inbound_stall` sees cross-process
    /// backpressure. `micros` is the stall duration so far; 0 clears it.
    StallReport {
        /// Stall duration so far, in microseconds (0 = stall over).
        micros: u64,
    },
    /// Clean shutdown: the peer is exiting on purpose, so the connection
    /// closing is not a crash.
    Goodbye,
}

fn state_tag(s: NodeState) -> u8 {
    match s {
        NodeState::Stable => 0,
        NodeState::UpFailure => 1,
        NodeState::Stabilization => 2,
        NodeState::Failed => 3,
    }
}

fn state_from(tag: u8) -> Result<NodeState, WireError> {
    match tag {
        0 => Ok(NodeState::Stable),
        1 => Ok(NodeState::UpFailure),
        2 => Ok(NodeState::Stabilization),
        3 => Ok(NodeState::Failed),
        tag => Err(WireError::BadTag {
            what: "node state",
            tag,
        }),
    }
}

/// Encodes one frame onto `buf` (the per-connection reusable write
/// buffer) and returns the number of bytes appended.
pub fn encode_frame(buf: &mut Vec<u8>, from: NodeId, to: NodeId, msg: &WireMsg) -> usize {
    let start = buf.len();
    match msg {
        WireMsg::Net(net) => encode_net(buf, from, to, net),
        WireMsg::CreditGrant => {
            let mark = begin_frame(buf, from, to, kind::CREDIT_GRANT);
            end_frame(buf, mark);
        }
        WireMsg::Hello { proc } => {
            let mark = begin_frame(buf, from, to, kind::HELLO);
            put_u32(buf, *proc);
            end_frame(buf, mark);
        }
        WireMsg::StallReport { micros } => {
            let mark = begin_frame(buf, from, to, kind::STALL_REPORT);
            put_u64(buf, *micros);
            end_frame(buf, mark);
        }
        WireMsg::Goodbye => {
            let mark = begin_frame(buf, from, to, kind::GOODBYE);
            end_frame(buf, mark);
        }
    }
    buf.len() - start
}

fn encode_net(buf: &mut Vec<u8>, from: NodeId, to: NodeId, msg: &NetMsg) {
    match msg {
        NetMsg::Data { stream, tuples } => {
            // Encoded straight from the selection view into the write
            // buffer: a sharded receiver's run list is walked in place, no
            // intermediate batch is materialized on the send path.
            let mark = begin_frame(buf, from, to, kind::DATA);
            put_u32(buf, stream.0);
            put_view(buf, tuples);
            end_frame(buf, mark);
        }
        NetMsg::Subscribe {
            stream,
            last_stable,
            saw_tentative,
            fresh_only,
        } => {
            let mark = begin_frame(buf, from, to, kind::SUBSCRIBE);
            put_u32(buf, stream.0);
            put_u64(buf, last_stable.0);
            put_u8(buf, (*saw_tentative as u8) | ((*fresh_only as u8) << 1));
            end_frame(buf, mark);
        }
        NetMsg::Unsubscribe { stream } => {
            let mark = begin_frame(buf, from, to, kind::UNSUBSCRIBE);
            put_u32(buf, stream.0);
            end_frame(buf, mark);
        }
        NetMsg::Ack { stream, through } => {
            let mark = begin_frame(buf, from, to, kind::ACK);
            put_u32(buf, stream.0);
            put_u64(buf, through.0);
            end_frame(buf, mark);
        }
        NetMsg::HeartbeatReq => {
            let mark = begin_frame(buf, from, to, kind::HEARTBEAT_REQ);
            end_frame(buf, mark);
        }
        NetMsg::HeartbeatResp {
            node_state,
            stream_states,
        } => {
            let mark = begin_frame(buf, from, to, kind::HEARTBEAT_RESP);
            put_u8(buf, state_tag(*node_state));
            put_u32(buf, stream_states.len() as u32);
            for (stream, state) in stream_states {
                put_u32(buf, stream.0);
                put_u8(buf, state_tag(*state));
            }
            end_frame(buf, mark);
        }
        NetMsg::ReconcileRequest => {
            let mark = begin_frame(buf, from, to, kind::RECONCILE_REQUEST);
            end_frame(buf, mark);
        }
        NetMsg::ReconcileGrant => {
            let mark = begin_frame(buf, from, to, kind::RECONCILE_GRANT);
            end_frame(buf, mark);
        }
        NetMsg::ReconcileReject => {
            let mark = begin_frame(buf, from, to, kind::RECONCILE_REJECT);
            end_frame(buf, mark);
        }
        NetMsg::ReconcileDone => {
            let mark = begin_frame(buf, from, to, kind::RECONCILE_DONE);
            end_frame(buf, mark);
        }
    }
}

/// Decodes a frame payload given its header `kind` byte.
pub fn decode_payload(kind_byte: u8, payload: &[u8]) -> Result<WireMsg, WireError> {
    let mut r = Reader::new(payload);
    let msg = match kind_byte {
        kind::DATA => {
            let stream = StreamId(r.u32()?);
            // The receiver sees one contiguous batch regardless of how
            // fragmented the sender's selection was.
            let tuples = r.batch()?.into();
            WireMsg::Net(NetMsg::Data { stream, tuples })
        }
        kind::SUBSCRIBE => {
            let stream = StreamId(r.u32()?);
            let last_stable = TupleId(r.u64()?);
            let flags = r.u8()?;
            if flags & !0b11 != 0 {
                return Err(WireError::BadTag {
                    what: "subscribe flags",
                    tag: flags,
                });
            }
            WireMsg::Net(NetMsg::Subscribe {
                stream,
                last_stable,
                saw_tentative: flags & 0b01 != 0,
                fresh_only: flags & 0b10 != 0,
            })
        }
        kind::UNSUBSCRIBE => WireMsg::Net(NetMsg::Unsubscribe {
            stream: StreamId(r.u32()?),
        }),
        kind::ACK => WireMsg::Net(NetMsg::Ack {
            stream: StreamId(r.u32()?),
            through: TupleId(r.u64()?),
        }),
        kind::HEARTBEAT_REQ => WireMsg::Net(NetMsg::HeartbeatReq),
        kind::HEARTBEAT_RESP => {
            let node_state = state_from(r.u8()?)?;
            let count = r.u32()? as usize;
            if count > r.remaining() / 5 + 1 {
                return Err(WireError::Truncated);
            }
            let mut stream_states = Vec::with_capacity(count);
            for _ in 0..count {
                let stream = StreamId(r.u32()?);
                let state = state_from(r.u8()?)?;
                stream_states.push((stream, state));
            }
            WireMsg::Net(NetMsg::HeartbeatResp {
                node_state,
                stream_states,
            })
        }
        kind::RECONCILE_REQUEST => WireMsg::Net(NetMsg::ReconcileRequest),
        kind::RECONCILE_GRANT => WireMsg::Net(NetMsg::ReconcileGrant),
        kind::RECONCILE_REJECT => WireMsg::Net(NetMsg::ReconcileReject),
        kind::RECONCILE_DONE => WireMsg::Net(NetMsg::ReconcileDone),
        kind::CREDIT_GRANT => WireMsg::CreditGrant,
        kind::HELLO => WireMsg::Hello { proc: r.u32()? },
        kind::STALL_REPORT => WireMsg::StallReport { micros: r.u64()? },
        kind::GOODBYE => WireMsg::Goodbye,
        tag => {
            return Err(WireError::BadTag {
                what: "frame kind",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(msg)
}

/// Splits and decodes the next complete frame off a receive buffer.
///
/// `Ok(None)` means more bytes are needed; on success the result carries
/// the header's link endpoints, the decoded message, and the total bytes
/// to drain from the buffer.
#[allow(clippy::type_complexity)]
pub fn decode_frame(bytes: &[u8]) -> Result<Option<(NodeId, NodeId, WireMsg, usize)>, WireError> {
    match split_frame(bytes)? {
        None => Ok(None),
        Some((from, to, kind_byte, payload, consumed)) => {
            let msg = decode_payload(kind_byte, payload)?;
            Ok(Some((from, to, msg, consumed)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{Time, Tuple, TupleBatch, Value};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_value(rng: &mut StdRng) -> Value {
        match rng.gen_range(0..4u32) {
            0 => Value::Int(rng.next_u64() as i64),
            1 => Value::Float(f64::from_bits(rng.next_u64())),
            2 => Value::Bool(rng.next_u64() & 1 == 1),
            _ => {
                let len = rng.gen_range(0..12usize);
                let s: String = (0..len)
                    .map(|_| char::from(rng.gen_range(32..127u32) as u8))
                    .collect();
                Value::str(s)
            }
        }
    }

    fn random_tuple(rng: &mut StdRng) -> Tuple {
        let id = TupleId(rng.gen_range(0..1_000_000u64));
        let stime = Time(rng.gen_range(0..u64::MAX / 2));
        match rng.gen_range(0..5u32) {
            0 | 1 => {
                let n = rng.gen_range(0..5usize);
                let values = (0..n).map(|_| random_value(rng)).collect();
                let mut t = if rng.next_u64() & 1 == 0 {
                    Tuple::insertion(id, stime, values)
                } else {
                    Tuple::tentative(id, stime, values)
                };
                t.origin = rng.gen_range(0..4u64) as u16;
                t
            }
            2 => Tuple::boundary(id, stime),
            3 => Tuple::undo(id, TupleId(rng.gen_range(0..1_000u64))),
            _ => Tuple::rec_done(id, stime),
        }
    }

    /// A random batch, sometimes a strict sub-view of a larger backing
    /// allocation (as produced by shard filters and ack truncation).
    fn random_batch(rng: &mut StdRng) -> TupleBatch {
        let n = rng.gen_range(0..20usize);
        let tuples: Vec<Tuple> = (0..n).map(|_| random_tuple(rng)).collect();
        let full = TupleBatch::from_vec(tuples);
        if n >= 4 && rng.next_u64() & 1 == 0 {
            let start = rng.gen_range(0..n / 2);
            let end = rng.gen_range(start + 1..n + 1);
            full.slice(start..end)
        } else {
            full
        }
    }

    fn random_state(rng: &mut StdRng) -> NodeState {
        match rng.gen_range(0..4u32) {
            0 => NodeState::Stable,
            1 => NodeState::UpFailure,
            2 => NodeState::Stabilization,
            _ => NodeState::Failed,
        }
    }

    fn random_net_msg(variant: u32, rng: &mut StdRng) -> NetMsg {
        match variant {
            0 => NetMsg::Data {
                stream: StreamId(rng.gen_range(0..64u32)),
                tuples: random_batch(rng).into(),
            },
            1 => NetMsg::Subscribe {
                stream: StreamId(rng.gen_range(0..64u32)),
                last_stable: TupleId(rng.gen_range(0..100_000u64)),
                saw_tentative: rng.next_u64() & 1 == 1,
                fresh_only: rng.next_u64() & 1 == 1,
            },
            2 => NetMsg::Unsubscribe {
                stream: StreamId(rng.gen_range(0..64u32)),
            },
            3 => NetMsg::Ack {
                stream: StreamId(rng.gen_range(0..64u32)),
                through: TupleId(rng.gen_range(0..100_000u64)),
            },
            4 => NetMsg::HeartbeatReq,
            5 => {
                let n = rng.gen_range(0..6usize);
                NetMsg::HeartbeatResp {
                    node_state: random_state(rng),
                    stream_states: (0..n)
                        .map(|_| (StreamId(rng.gen_range(0..64u32)), random_state(rng)))
                        .collect(),
                }
            }
            6 => NetMsg::ReconcileRequest,
            7 => NetMsg::ReconcileGrant,
            8 => NetMsg::ReconcileReject,
            _ => NetMsg::ReconcileDone,
        }
    }

    fn encode_one(from: NodeId, to: NodeId, msg: &WireMsg) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_frame(&mut buf, from, to, msg);
        buf
    }

    /// Property: every `NetMsg` variant — over random batch contents,
    /// shard-filtered sub-views, and control tuples — is **byte-identical**
    /// after an encode → decode → re-encode round trip.
    #[test]
    fn every_variant_round_trips_byte_identical() {
        let mut rng = StdRng::seed_from_u64(0xC0DEC);
        for iter in 0..400 {
            let variant = iter % 10;
            let msg = random_net_msg(variant, &mut rng);
            let from = NodeId(rng.gen_range(0..128u32));
            let to = NodeId(rng.gen_range(0..128u32));
            let bytes = encode_one(from, to, &WireMsg::Net(msg.clone()));
            let (dfrom, dto, decoded, consumed) = decode_frame(&bytes)
                .unwrap_or_else(|e| panic!("decode failed on {}: {e}", msg.kind_name()))
                .expect("complete frame");
            assert_eq!(consumed, bytes.len());
            assert_eq!((dfrom, dto), (from, to));
            let WireMsg::Net(decoded) = decoded else {
                panic!("decoded a control frame from a NetMsg");
            };
            assert_eq!(decoded.kind_name(), msg.kind_name());
            let re = encode_one(dfrom, dto, &WireMsg::Net(decoded));
            assert_eq!(re, bytes, "re-encode differs for {}", msg.kind_name());
        }
    }

    #[test]
    fn control_frames_round_trip() {
        let cases = [
            WireMsg::CreditGrant,
            WireMsg::Hello { proc: 3 },
            WireMsg::StallReport { micros: 125_000 },
            WireMsg::StallReport { micros: 0 },
            WireMsg::Goodbye,
        ];
        for msg in &cases {
            let bytes = encode_one(NodeId(1), NodeId(2), msg);
            let (from, to, decoded, consumed) = decode_frame(&bytes).unwrap().unwrap();
            assert_eq!((from, to, consumed), (NodeId(1), NodeId(2), bytes.len()));
            match (msg, &decoded) {
                (WireMsg::CreditGrant, WireMsg::CreditGrant) => {}
                (WireMsg::Goodbye, WireMsg::Goodbye) => {}
                (WireMsg::Hello { proc: a }, WireMsg::Hello { proc: b }) => assert_eq!(a, b),
                (WireMsg::StallReport { micros: a }, WireMsg::StallReport { micros: b }) => {
                    assert_eq!(a, b)
                }
                other => panic!("mismatched round trip: {other:?}"),
            }
        }
    }

    /// Property: decode rejects every truncation of a valid frame (by
    /// reporting "incomplete" on a short prefix after shrinking the length
    /// field, or an error) and never panics.
    #[test]
    fn truncated_frames_reject_without_panic() {
        let mut rng = StdRng::seed_from_u64(0xBAD);
        for variant in 0..10 {
            let msg = random_net_msg(variant, &mut rng);
            let bytes = encode_one(NodeId(5), NodeId(6), &WireMsg::Net(msg));
            for cut in 0..bytes.len() {
                // A plain prefix is indistinguishable from "not yet
                // arrived": must be Ok(None), never a panic.
                assert!(matches!(decode_frame(&bytes[..cut]), Ok(None)));
                // Lying length prefix: claim the truncated size is the
                // whole frame. Must error (or, for cuts inside the
                // header, keep waiting) — never panic.
                if cut >= 13 {
                    let mut lying = bytes[..cut].to_vec();
                    lying[..4].copy_from_slice(&((cut - 4) as u32).to_le_bytes());
                    assert!(
                        decode_frame(&lying).is_err(),
                        "lying length accepted at cut {cut}"
                    );
                }
            }
        }
    }

    /// Property: corrupting any single byte of the payload either still
    /// decodes (the mutation hit a don't-care bit) or errors — it never
    /// panics and never reads out of bounds.
    #[test]
    fn corrupted_payloads_never_panic() {
        let mut rng = StdRng::seed_from_u64(0xC0_FFEE);
        for variant in 0..10 {
            let msg = random_net_msg(variant, &mut rng);
            let bytes = encode_one(NodeId(1), NodeId(2), &WireMsg::Net(msg));
            for pos in 12..bytes.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut corrupt = bytes.clone();
                    corrupt[pos] ^= flip;
                    let _ = decode_frame(&corrupt); // must return, not panic
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_corruption() {
        let mut bytes = encode_one(NodeId(1), NodeId(2), &WireMsg::CreditGrant);
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn trailing_garbage_in_payload_is_rejected() {
        let mut buf = Vec::new();
        let mark = borealis_types::wire::begin_frame(&mut buf, NodeId(1), NodeId(2), 0x04);
        borealis_types::wire::put_u32(&mut buf, 99); // HeartbeatReq has no payload
        borealis_types::wire::end_frame(&mut buf, mark);
        assert!(matches!(decode_frame(&buf), Err(WireError::Trailing(4))));
    }

    #[test]
    fn data_frame_encodes_the_view_not_the_backing() {
        let tuples: Vec<Tuple> = (0..8)
            .map(|i| Tuple::insertion(TupleId(i), Time::from_millis(i), vec![Value::Int(i as i64)]))
            .collect();
        let full = TupleBatch::from_vec(tuples);
        let view = full.slice(2..5);
        let full_bytes = encode_one(
            NodeId(0),
            NodeId(1),
            &WireMsg::Net(NetMsg::Data {
                stream: StreamId(7),
                tuples: full.into(),
            }),
        );
        let view_bytes = encode_one(
            NodeId(0),
            NodeId(1),
            &WireMsg::Net(NetMsg::Data {
                stream: StreamId(7),
                tuples: view.clone().into(),
            }),
        );
        assert!(view_bytes.len() < full_bytes.len());
        let (_, _, decoded, _) = decode_frame(&view_bytes).unwrap().unwrap();
        let WireMsg::Net(NetMsg::Data { tuples, .. }) = decoded else {
            panic!("expected Data");
        };
        let got = tuples.to_batch();
        assert_eq!(got.as_slice(), view.as_slice());
        assert!(!got.shares_backing(&view), "decode rebuilds its own arc");
    }
}
