//! # borealis-dpc
//!
//! The DPC (Delay, Process, and Correct) fault-tolerance protocol for
//! distributed stream processing — the primary contribution of
//! *Fault-Tolerance in the Borealis Distributed Stream Processing System*
//! (Balazinska, Balakrishnan, Madden, Stonebraker).
//!
//! DPC replicates query-diagram fragments across processing nodes and makes
//! the availability/consistency trade-off explicit: the application states
//! the maximum incremental latency `X` it tolerates, and the system
//! guarantees (Property 1) that results — possibly **tentative**, computed
//! from the subset of available inputs — are delivered within `X`, while
//! guaranteeing eventual consistency (Property 2): once failures heal,
//! every tentative tuple is corrected through checkpoint/redo
//! reconciliation, and every replica converges to the same stable output
//! stream.
//!
//! This crate provides the distributed half of the protocol on top of the
//! `borealis-engine` fragment executor and the `borealis-sim` deterministic
//! simulator:
//!
//! * [`node::ProcessingNode`] — the node actor: Data Path (subscriptions,
//!   replay, ack-driven truncation), Consistency Manager (state machine,
//!   keep-alives, Table II switching, the Fig. 9 stagger protocol), and the
//!   CPU cost model;
//! * [`source::DataSource`] — rate-controlled sources with persistent logs,
//!   boundary emission, and fault hooks;
//! * [`client::ClientProxy`] — the consumer-side library, recording the
//!   paper's metrics (`Procnew`, `Ntentative`) into a [`metrics::MetricsHub`];
//! * [`system::SystemBuilder`] — deployment wiring (Fig. 2).

#![warn(missing_docs)]

pub mod buffers;
pub mod client;
pub mod codec;
pub mod durable;
pub mod metrics;
pub mod msg;
pub mod node;
pub mod runtime;
pub mod source;
pub mod system;
pub mod transport;
pub mod upstream;

pub use buffers::{BufferPolicy, OutputBuffer};
pub use client::{ClientProxy, ClientStream, ClientTuning};
pub use codec::{decode_frame, decode_payload, encode_frame, WireMsg};
pub use durable::{DurabilityConfig, NodeDisk, RecoveredImage};
pub use metrics::{MetricsHub, StreamMetrics, StreamRecorder, TraceEntry};
pub use msg::{NetMsg, NodeState};
pub use node::{NodeConfig, NodeTuning, ProcessingNode, UpstreamSpec};
pub use runtime::{DpcActor, RuntimeCtx};
pub use source::{DataSource, SourceConfig, ValueGen};
pub use system::{ActorSpec, FaultSpec, RunningSystem, SystemBuilder, SystemLayout, RESTART_DELAY};
pub use transport::Transport;
pub use upstream::{UpstreamAction, UpstreamManager};

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_diagram::{plan_deployment, DeploymentSpec, DpcConfig, QueryBuilder};
    use borealis_types::{Duration, StreamId, Time};

    /// Three sources → Union → output, replicated; client watching.
    fn merge3_system(replication: usize, detect_secs: f64) -> (RunningSystem, StreamId) {
        let mut q = QueryBuilder::new();
        let s1 = q.source("s1");
        let s2 = q.source("s2");
        let s3 = q.source("s3");
        let u = q.union("merged", &[s1, s2, s3]);
        q.output(u);
        let d = q.build().unwrap();
        let cfg = DpcConfig {
            total_delay: Duration::from_secs_f64(detect_secs),
            safety: 0.9,
            ..DpcConfig::default()
        };
        let p = plan_deployment(&d, &DeploymentSpec::single(replication), &cfg).unwrap();
        let sys = SystemBuilder::new(7, Duration::from_millis(1))
            .source(SourceConfig::seq(s1.id(), 100.0))
            .source(SourceConfig::seq(s2.id(), 100.0))
            .source(SourceConfig::seq(s3.id(), 100.0))
            .plan(p)
            .client_streams(vec![u.id()])
            .build();
        (sys, u.id())
    }

    #[test]
    fn healthy_system_delivers_stable_data_with_low_latency() {
        let (mut sys, out) = merge3_system(2, 2.0);
        sys.run_until(Time::from_secs(10));
        let m = &sys.metrics;
        m.with(out, |m| {
            assert!(m.n_stable > 2500, "got {} stable tuples", m.n_stable);
            assert_eq!(m.n_tentative, 0);
            assert_eq!(m.dup_stable, 0);
            // Serialization delay only: well under one second.
            assert!(
                m.procnew < Duration::from_millis(600),
                "procnew={}",
                m.procnew
            );
        });
    }

    #[test]
    fn source_failure_produces_tentative_then_corrections() {
        let (mut sys, out) = merge3_system(2, 2.0);
        let s3 = StreamId(2);
        // Disconnect source 3 from both replicas from t=5s to t=10s.
        sys.disconnect_source(s3, 0, Time::from_secs(5), Time::from_secs(10));
        sys.run_until(Time::from_secs(25));
        let m = &sys.metrics;
        m.with(out, |m| {
            assert!(m.n_tentative > 0, "failure must force tentative output");
            assert!(m.n_undo >= 1, "corrections must roll back the suffix");
            assert!(m.n_rec_done >= 1, "stabilization must complete");
            assert_eq!(m.dup_stable, 0, "no duplicate stable tuples");
            // Availability: max gap between new tuples stays under the
            // 2 s budget plus slack for serialization.
            assert!(
                m.max_gap < Duration::from_millis(2600),
                "max gap {} exceeds bound",
                m.max_gap
            );
        });
    }

    #[test]
    fn eventual_consistency_stable_count_catches_up() {
        // Compare a failure-free run against a failure+heal run: after
        // stabilization, both deliver the same number of *stable* tuples
        // (all tentative data was corrected).
        let horizon = Time::from_secs(30);
        let (mut clean, out) = merge3_system(2, 2.0);
        clean.run_until(horizon);
        let clean_stable = clean.metrics.with(out, |m| m.n_stable);

        let (mut faulty, out2) = merge3_system(2, 2.0);
        faulty.disconnect_source(StreamId(2), 0, Time::from_secs(5), Time::from_secs(12));
        faulty.run_until(horizon);
        let faulty_stable = faulty.metrics.with(out2, |m| m.n_stable);
        let diff = clean_stable.abs_diff(faulty_stable);
        // The tail may differ by what is still in flight at the horizon.
        assert!(
            diff <= 60,
            "stable outputs diverge: clean={clean_stable} faulty={faulty_stable}"
        );
        assert_eq!(faulty.metrics.with(out2, |m| m.dup_stable), 0);
    }

    #[test]
    fn replica_crash_switches_client_within_keepalive_bound() {
        let (mut sys, out) = merge3_system(2, 2.0);
        // Crash replica 0 permanently at t=5s.
        sys.crash_node(0, 0, Time::from_secs(5), None);
        sys.run_until(Time::from_secs(15));
        sys.metrics.with(out, |m| {
            assert_eq!(m.dup_stable, 0);
            assert!(m.n_stable > 2000, "stream continues: {}", m.n_stable);
            // Switchover gap: detection (<= 2 heartbeats + stale timeout)
            // plus replay; far below the 2 s failure bound.
            assert!(m.max_gap < Duration::from_millis(1000), "gap {}", m.max_gap);
        });
    }
}
