//! Client-side measurement of the paper's two metrics (§2.3):
//!
//! * **Availability** — `Procnew`, the maximum processing latency of *new*
//!   output tuples (tuples that advance the stream's stime frontier;
//!   corrections of previously tentative data do not count, §2.3.3).
//! * **Consistency** — `Ntentative`, the number of tentative tuples
//!   received (Definition 2).
//!
//! The collector also checks protocol invariants a correct DPC deployment
//! must uphold: stable tuple ids strictly increase (no duplicates, eventual
//! consistency) and every tentative run is eventually closed by an UNDO +
//! corrections.

use borealis_types::{Duration, Time, Tuple, TupleId, TupleKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One recorded arrival (kept only when tracing is enabled).
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Arrival time at the client.
    pub arrival: Time,
    /// Tuple type.
    pub kind: TupleKind,
    /// Tuple id.
    pub id: TupleId,
    /// Tuple stime.
    pub stime: Time,
    /// Undo target for UNDO entries.
    pub undo_target: Option<TupleId>,
}

/// Metrics for one output stream.
#[derive(Debug, Default)]
pub struct StreamMetrics {
    /// Highest stime seen on any data tuple (the "new data" frontier).
    pub frontier: Time,
    /// Max `arrival - stime` over frontier-advancing tuples: `Procnew`.
    pub procnew: Duration,
    /// Tentative data tuples received (`Ntentative`).
    pub n_tentative: u64,
    /// Stable data tuples received.
    pub n_stable: u64,
    /// Stable data tuples that were *new* (not corrections).
    pub n_new_stable: u64,
    /// UNDO tuples received.
    pub n_undo: u64,
    /// REC_DONE markers received.
    pub n_rec_done: u64,
    /// Protocol violations: stable tuples whose id did not increase.
    pub dup_stable: u64,
    /// Maximum gap between consecutive new-data arrivals (Fig. 11's "the
    /// maximum gap between new tuples remains below the bound").
    pub max_gap: Duration,
    /// Minimum per-tuple latency over new data tuples.
    pub lat_min: Option<Duration>,
    /// Sum of per-tuple latencies (micros) over new data tuples.
    lat_sum: u128,
    /// Sum of squared per-tuple latencies (micros^2).
    lat_sq_sum: u128,
    /// Count of new data tuples with latency samples.
    lat_count: u64,
    /// Stable id frontier.
    last_stable_id: TupleId,
    /// Arrival time of the previous new data tuple.
    last_new_arrival: Option<Time>,
    /// Full arrival trace (enabled per stream for Fig. 11-style plots).
    pub trace: Option<Vec<TraceEntry>>,
}

impl StreamMetrics {
    /// Records one arriving tuple.
    pub fn record(&mut self, now: Time, t: &Tuple) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                arrival: now,
                kind: t.kind,
                id: t.id,
                stime: t.stime,
                undo_target: t.undo_target(),
            });
        }
        match t.kind {
            TupleKind::Insertion | TupleKind::Tentative => {
                if t.stime > self.frontier {
                    self.frontier = t.stime;
                    let lat = now.since(t.stime);
                    self.procnew = self.procnew.max(lat);
                    self.lat_min = Some(self.lat_min.map_or(lat, |m| m.min(lat)));
                    self.lat_sum += lat.as_micros() as u128;
                    self.lat_sq_sum += (lat.as_micros() as u128).pow(2);
                    self.lat_count += 1;
                    if let Some(prev) = self.last_new_arrival {
                        self.max_gap = self.max_gap.max(now.since(prev));
                    }
                    self.last_new_arrival = Some(now);
                    if t.kind == TupleKind::Insertion {
                        self.n_new_stable += 1;
                    }
                }
                if t.kind == TupleKind::Tentative {
                    self.n_tentative += 1;
                } else {
                    self.n_stable += 1;
                    if t.id <= self.last_stable_id {
                        self.dup_stable += 1;
                    } else {
                        self.last_stable_id = t.id;
                    }
                }
            }
            TupleKind::Undo => {
                self.n_undo += 1;
                if let Some(target) = t.undo_target() {
                    // Corrections will re-use ids after the target.
                    self.last_stable_id = self.last_stable_id.min(target);
                }
            }
            TupleKind::RecDone => self.n_rec_done += 1,
            TupleKind::Boundary => {}
        }
    }

    /// Stable id frontier (tests).
    pub fn last_stable_id(&self) -> TupleId {
        self.last_stable_id
    }

    /// Mean per-tuple latency over new data tuples.
    pub fn lat_avg(&self) -> Duration {
        if self.lat_count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.lat_sum / self.lat_count as u128) as u64)
    }

    /// Standard deviation of per-tuple latency over new data tuples.
    pub fn lat_std(&self) -> Duration {
        if self.lat_count == 0 {
            return Duration::ZERO;
        }
        let n = self.lat_count as f64;
        let mean = self.lat_sum as f64 / n;
        let var = (self.lat_sq_sum as f64 / n - mean * mean).max(0.0);
        Duration::from_micros(var.sqrt() as u64)
    }

    /// Number of latency samples.
    pub fn lat_count(&self) -> u64 {
        self.lat_count
    }
}

/// A contention-free per-stream recording handle (one shard of a
/// [`MetricsHub`]).
///
/// The client proxy resolves one recorder per watched stream at
/// subscription time and then records through it directly: the only lock
/// taken on the delivery hot path is this stream's own mutex — different
/// streams (and therefore different client actors in the thread runtime)
/// never serialize on a shared lock, and [`StreamRecorder::record_all`]
/// amortizes even that lock to once per delivered batch.
#[derive(Debug, Clone, Default)]
pub struct StreamRecorder {
    inner: Arc<Mutex<StreamMetrics>>,
}

impl StreamRecorder {
    /// Records one tuple arrival.
    pub fn record(&self, now: Time, t: &Tuple) {
        self.inner
            .lock()
            .expect("stream metrics lock")
            .record(now, t);
    }

    /// Records a batch of arrivals under a single lock acquisition — the
    /// per-message delivery path.
    pub fn record_all<'a>(&self, now: Time, tuples: impl IntoIterator<Item = &'a Tuple>) {
        let mut m = self.inner.lock().expect("stream metrics lock");
        for t in tuples {
            m.record(now, t);
        }
    }
}

/// Shared, per-stream metrics hub: the client proxies write, the experiment
/// harness reads after (or during) the run.
///
/// The hub is **sharded per stream**: a registry mutex guards only the
/// `stream → shard` map (touched at subscription time and by aggregate
/// readers), while every shard is its own `Arc<Mutex<StreamMetrics>>`
/// handed out as a [`StreamRecorder`]. Actors on the thread runtime
/// therefore never contend on one global mutex per tuple — the seed design
/// locked a single `Mutex<HashMap>` once per delivered tuple on every
/// client's hot path.
#[derive(Debug, Default, Clone)]
pub struct MetricsHub {
    streams: Arc<Mutex<HashMap<u32, Arc<Mutex<StreamMetrics>>>>>,
    /// Latest transport flow-control gauges (queue depth, stall time),
    /// recorded by the deployment after (or during) a run.
    flow: Arc<Mutex<borealis_types::FlowGauges>>,
    /// Latest worker-pool scheduler gauges (steals, queue depths,
    /// activation run-time histogram), recorded by the thread runtime.
    sched: Arc<Mutex<borealis_types::SchedGauges>>,
    /// Latest socket-transport wire gauges (bytes, frames per flush,
    /// credit grants), recorded by multi-process deployments.
    wire: Arc<Mutex<borealis_types::WireGauges>>,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    fn shard(&self, stream: borealis_types::StreamId) -> Arc<Mutex<StreamMetrics>> {
        let mut map = self.streams.lock().expect("metrics registry lock");
        Arc::clone(map.entry(stream.0).or_default())
    }

    /// The per-stream recording handle — resolve once, then record without
    /// touching the registry again.
    pub fn recorder(&self, stream: borealis_types::StreamId) -> StreamRecorder {
        StreamRecorder {
            inner: self.shard(stream),
        }
    }

    /// Enables full arrival tracing for `stream`.
    pub fn enable_trace(&self, stream: borealis_types::StreamId) {
        let shard = self.shard(stream);
        let mut m = shard.lock().expect("stream metrics lock");
        m.trace = Some(Vec::new());
    }

    /// Records one tuple arrival on `stream` (convenience wrapper; hot
    /// paths hold a [`StreamRecorder`] instead).
    pub fn record(&self, stream: borealis_types::StreamId, now: Time, t: &Tuple) {
        self.recorder(stream).record(now, t);
    }

    /// Runs `f` with the metrics of `stream` (no-op default if absent).
    pub fn with<R>(
        &self,
        stream: borealis_types::StreamId,
        f: impl FnOnce(&StreamMetrics) -> R,
    ) -> R {
        let shard = self.shard(stream);
        let m = shard.lock().expect("stream metrics lock");
        f(&m)
    }

    /// Snapshot-style fold over every stream's metrics. The registry lock
    /// is released before the shards are visited, so recorders are never
    /// blocked behind an aggregate reader.
    fn fold<A>(&self, init: A, mut f: impl FnMut(A, &StreamMetrics) -> A) -> A {
        let shards: Vec<Arc<Mutex<StreamMetrics>>> = {
            let map = self.streams.lock().expect("metrics registry lock");
            map.values().map(Arc::clone).collect()
        };
        let mut acc = init;
        for shard in shards {
            let m = shard.lock().expect("stream metrics lock");
            acc = f(acc, &m);
        }
        acc
    }

    /// Sum of `Ntentative` across all streams (Definition 2's diagram-level
    /// inconsistency).
    pub fn total_tentative(&self) -> u64 {
        self.fold(0, |acc, m| acc + m.n_tentative)
    }

    /// Max `Procnew` across all streams.
    pub fn max_procnew(&self) -> Duration {
        self.fold(Duration::ZERO, |acc, m| acc.max(m.procnew))
    }

    /// Total protocol violations (must be zero in a correct run).
    pub fn total_dup_stable(&self) -> u64 {
        self.fold(0, |acc, m| acc + m.dup_stable)
    }

    /// Records the transport's flow-control gauges (the deployments call
    /// this after letting the system run, so experiment harnesses read
    /// queue-depth and stall-time next to the client metrics).
    pub fn record_flow(&self, gauges: borealis_types::FlowGauges) {
        *self.flow.lock().expect("flow gauges lock") = gauges;
    }

    /// The most recently recorded transport flow-control gauges.
    pub fn flow_gauges(&self) -> borealis_types::FlowGauges {
        *self.flow.lock().expect("flow gauges lock")
    }

    /// Records the thread runtime's worker-pool scheduler gauges (the
    /// deployments call this next to [`MetricsHub::record_flow`], so
    /// harnesses read steal counts and queue depths with the client
    /// metrics).
    pub fn record_sched(&self, gauges: borealis_types::SchedGauges) {
        *self.sched.lock().expect("sched gauges lock") = gauges;
    }

    /// The most recently recorded scheduler gauges.
    pub fn sched_gauges(&self) -> borealis_types::SchedGauges {
        *self.sched.lock().expect("sched gauges lock")
    }

    /// Records the socket transport's wire gauges (multi-process
    /// deployments call this next to [`MetricsHub::record_flow`]).
    pub fn record_wire(&self, gauges: borealis_types::WireGauges) {
        *self.wire.lock().expect("wire gauges lock") = gauges;
    }

    /// The most recently recorded wire gauges.
    pub fn wire_gauges(&self) -> borealis_types::WireGauges {
        *self.wire.lock().expect("wire gauges lock")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::{StreamId, Value};

    fn stable(id: u64, stime_ms: u64) -> Tuple {
        Tuple::insertion(
            TupleId(id),
            Time::from_millis(stime_ms),
            vec![Value::Int(0)],
        )
    }

    fn tentative(id: u64, stime_ms: u64) -> Tuple {
        Tuple::tentative(TupleId(id), Time::from_millis(stime_ms), vec![])
    }

    #[test]
    fn procnew_tracks_only_frontier_advancing_tuples() {
        let mut m = StreamMetrics::default();
        m.record(Time::from_millis(150), &stable(1, 100)); // 50 ms
        m.record(Time::from_millis(400), &stable(2, 200)); // 200 ms
                                                           // A correction of old data arrives very late; it must not count.
        m.record(Time::from_millis(5000), &stable(3, 150));
        assert_eq!(m.procnew, Duration::from_millis(200));
        assert_eq!(m.n_new_stable, 2);
    }

    #[test]
    fn tentative_counted_and_corrections_tracked() {
        let mut m = StreamMetrics::default();
        m.record(Time::from_millis(100), &stable(1, 90));
        m.record(Time::from_millis(200), &tentative(2, 190));
        m.record(Time::from_millis(210), &tentative(3, 205));
        assert_eq!(m.n_tentative, 2);
        // Undo rolls the stable frontier back to 1; corrections reuse 2, 3.
        m.record(
            Time::from_millis(300),
            &Tuple::undo(TupleId::NONE, TupleId(1)),
        );
        m.record(Time::from_millis(310), &stable(2, 190));
        m.record(Time::from_millis(311), &stable(3, 205));
        assert_eq!(m.n_undo, 1);
        assert_eq!(m.dup_stable, 0, "corrections are not duplicates");
        assert_eq!(m.last_stable_id(), TupleId(3));
    }

    #[test]
    fn duplicate_stable_detected() {
        let mut m = StreamMetrics::default();
        m.record(Time::from_millis(100), &stable(5, 90));
        m.record(Time::from_millis(110), &stable(5, 91));
        assert_eq!(m.dup_stable, 1);
    }

    #[test]
    fn max_gap_between_new_tuples() {
        let mut m = StreamMetrics::default();
        m.record(Time::from_millis(100), &stable(1, 90));
        m.record(Time::from_millis(2100), &tentative(2, 2000));
        m.record(Time::from_millis(2200), &tentative(3, 2150));
        assert_eq!(m.max_gap, Duration::from_millis(2000));
    }

    #[test]
    fn hub_aggregates_streams() {
        let hub = MetricsHub::new();
        let s0 = StreamId(0);
        let s1 = StreamId(1);
        hub.record(s0, Time::from_millis(100), &tentative(1, 50));
        hub.record(s1, Time::from_millis(100), &tentative(1, 80));
        hub.record(s1, Time::from_millis(120), &stable(2, 110));
        assert_eq!(hub.total_tentative(), 2);
        assert_eq!(hub.max_procnew(), Duration::from_millis(50));
        assert_eq!(hub.total_dup_stable(), 0);
    }

    #[test]
    fn recorders_are_per_stream_shards() {
        let hub = MetricsHub::new();
        let r0 = hub.recorder(StreamId(0));
        let r1 = hub.recorder(StreamId(1));
        // Same stream resolves to the same shard; different streams to
        // different shards (no shared lock between them).
        assert!(Arc::ptr_eq(&r0.inner, &hub.recorder(StreamId(0)).inner));
        assert!(!Arc::ptr_eq(&r0.inner, &r1.inner));
        // Batch recording lands in the hub's view of the stream.
        let batch = [stable(1, 10), tentative(2, 20)];
        r0.record_all(Time::from_millis(30), batch.iter());
        hub.with(StreamId(0), |m| {
            assert_eq!(m.n_stable, 1);
            assert_eq!(m.n_tentative, 1);
        });
        assert_eq!(hub.total_tentative(), 1);
    }

    #[test]
    fn trace_records_everything_when_enabled() {
        let hub = MetricsHub::new();
        let s = StreamId(0);
        hub.enable_trace(s);
        hub.record(s, Time::from_millis(10), &stable(1, 5));
        hub.record(
            s,
            Time::from_millis(20),
            &Tuple::undo(TupleId::NONE, TupleId(1)),
        );
        hub.with(s, |m| {
            let trace = m.trace.as_ref().unwrap();
            assert_eq!(trace.len(), 2);
            assert_eq!(trace[1].undo_target, Some(TupleId(1)));
        });
    }
}
