//! The inter-node protocol messages of DPC.
//!
//! Nodes, sources, and client proxies exchange these over the simulated
//! network's reliable in-order links: data subscriptions and replays
//! (§4.3, Fig. 8), keep-alive heartbeats carrying consistency states
//! (§4.2.3), acknowledgments for output-buffer truncation (§8.1), and the
//! inter-replica stabilization stagger protocol (§4.4.3, Fig. 9).

use borealis_sim::ShardMsg;
use borealis_types::{BatchView, PartitionSpec, ShardRouter, StreamId, TupleId};

/// Consistency state of a node or of one of its output streams (Fig. 5,
/// plus the `Failed` state a monitor assigns to unreachable peers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// All inputs stable, outputs stable.
    Stable,
    /// An upstream failure is in progress; outputs may be tentative.
    UpFailure,
    /// Reconciling state and correcting outputs.
    Stabilization,
    /// Not responding to keep-alives (crashed or partitioned away).
    Failed,
}

/// A message between two participants of the deployed system.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// Tuples on a stream, in order.
    ///
    /// The payload is a shared selection view: fanning the same tuples out
    /// to every replica of every downstream neighbor clones reference
    /// counts, not tuples, and a key-sharded receiver's shard is a run
    /// list over the producer's batch — so per-hop cost is independent of
    /// both replication degree and shard count.
    Data {
        /// The stream they belong to.
        stream: StreamId,
        /// The tuples (data, boundaries, undo, rec-done).
        tuples: BatchView,
    },
    /// Subscribe to a stream, stating exactly what was already received so
    /// the upstream peer can replay missing tuples or correct tentative
    /// ones (§4.3: "it indicates the last stable tuple it received and
    /// whether it received tentative tuples after stable ones").
    Subscribe {
        /// The requested stream.
        stream: StreamId,
        /// Last stable tuple received on it ([`TupleId::NONE`] for none).
        last_stable: TupleId,
        /// True if tentative tuples followed that stable prefix.
        saw_tentative: bool,
        /// True to receive only *new* emissions (no history replay): used
        /// for the §4.4.3 dual subscription, where the consumer already
        /// holds the tentative era and only needs fresh data from the
        /// still-available replica.
        fresh_only: bool,
    },
    /// Stop sending a stream.
    Unsubscribe {
        /// The stream to drop.
        stream: StreamId,
    },
    /// Cumulative acknowledgment of stable delivery, enabling upstream
    /// output-buffer truncation (§8.1). Broadcast to every replica of the
    /// upstream neighbor, since any of them may serve the stream later.
    Ack {
        /// The acknowledged stream.
        stream: StreamId,
        /// All stable tuples up to and including this id were received.
        through: TupleId,
    },
    /// Keep-alive request (the Consistency Manager "periodically requests a
    /// heartbeat response from each replica of each upstream neighbor").
    HeartbeatReq,
    /// Keep-alive response advertising the node's consistency state and the
    /// per-output-stream states (§8.2 fine-grained advertisement).
    HeartbeatResp {
        /// Overall node state.
        node_state: NodeState,
        /// Per-output-stream states (streams unaffected by a failure stay
        /// `Stable`).
        stream_states: Vec<(StreamId, NodeState)>,
    },
    /// Stagger protocol (Fig. 9): ask a replica for permission to enter
    /// STABILIZATION (the replica promises to keep processing new tuples).
    ReconcileRequest,
    /// Permission granted.
    ReconcileGrant,
    /// Permission denied (the replica is stabilizing itself, or needs to
    /// and wins the id tie-break).
    ReconcileReject,
    /// The requester finished stabilizing; the partner's promise is
    /// released.
    ReconcileDone,
}

/// The partitioned send path: a key-sharded receiver gets only its shard
/// of every `Data` payload (control tuples — boundaries, undo, rec-done —
/// always pass; see [`PartitionSpec`]). A batch with nothing left for the
/// shard suppresses the delivery. All other protocol messages
/// (subscriptions, acks, heartbeats, stagger control) pass unchanged.
///
/// `Data` is also the only credit-controlled variant: under a bounded
/// [`CreditPolicy`](borealis_types::CreditPolicy) every data batch consumes
/// one link credit, while control traffic always passes — a backpressured
/// link still heartbeats, so a stalled peer is never mistaken for a dead
/// one.
impl ShardMsg for NetMsg {
    fn partition(self, spec: &PartitionSpec, router: &mut ShardRouter) -> Option<NetMsg> {
        match self {
            NetMsg::Data { stream, tuples } => {
                let tuples = router.route(spec, &tuples);
                if tuples.is_empty() {
                    None
                } else {
                    Some(NetMsg::Data { stream, tuples })
                }
            }
            other => Some(other),
        }
    }

    fn credit_controlled(&self) -> bool {
        matches!(self, NetMsg::Data { .. })
    }
}

impl NetMsg {
    /// Short tag for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NetMsg::Data { .. } => "data",
            NetMsg::Subscribe { .. } => "subscribe",
            NetMsg::Unsubscribe { .. } => "unsubscribe",
            NetMsg::Ack { .. } => "ack",
            NetMsg::HeartbeatReq => "hb-req",
            NetMsg::HeartbeatResp { .. } => "hb-resp",
            NetMsg::ReconcileRequest => "rec-req",
            NetMsg::ReconcileGrant => "rec-grant",
            NetMsg::ReconcileReject => "rec-reject",
            NetMsg::ReconcileDone => "rec-done",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_cover_all_variants() {
        let msgs = [
            NetMsg::Data {
                stream: StreamId(0),
                tuples: BatchView::empty(),
            },
            NetMsg::Subscribe {
                stream: StreamId(0),
                last_stable: TupleId::NONE,
                saw_tentative: false,
                fresh_only: false,
            },
            NetMsg::Unsubscribe {
                stream: StreamId(0),
            },
            NetMsg::Ack {
                stream: StreamId(0),
                through: TupleId(3),
            },
            NetMsg::HeartbeatReq,
            NetMsg::HeartbeatResp {
                node_state: NodeState::Stable,
                stream_states: vec![],
            },
            NetMsg::ReconcileRequest,
            NetMsg::ReconcileGrant,
            NetMsg::ReconcileReject,
            NetMsg::ReconcileDone,
        ];
        let names: Vec<_> = msgs.iter().map(|m| m.kind_name()).collect();
        assert_eq!(names.len(), 10);
        assert!(names.contains(&"subscribe"));
    }
}
