//! The runtime abstraction that decouples the DPC protocol from any
//! particular execution engine.
//!
//! Every protocol participant — [`crate::node::ProcessingNode`],
//! [`crate::source::DataSource`], [`crate::client::ClientProxy`] — is
//! written against two small traits:
//!
//! * [`RuntimeCtx`]: the handler-side view of a runtime (clock, messaging,
//!   timers, reachability, randomness). The deterministic simulator's
//!   `borealis_sim::Ctx` implements it (virtual time, seeded RNG), and so
//!   does the real-time thread engine's context in `borealis-runtime`
//!   (monotonic wall clock, OS threads, `mpsc` channels).
//! * [`DpcActor`]: the runtime-agnostic actor interface. It mirrors
//!   `borealis_sim::Actor` but takes `&mut dyn RuntimeCtx`, so a runtime
//!   can drive boxed protocol actors without knowing their concrete types.
//!
//! The protocol types implement their logic once, as inherent methods
//! generic over `C: RuntimeCtx + ?Sized`; thin forwarding impls expose that
//! single body through both `borealis_sim::Actor` (static dispatch — the
//! simulator monomorphizes, no overhead against the seed implementation)
//! and [`DpcActor`] (dynamic dispatch for the thread engine). There are no
//! `#[cfg]` forks: the exact same protocol code runs under virtual and
//! wall-clock time.
//!
//! Fault *model* types ([`FaultEvent`], the link-table semantics of
//! `borealis_sim::Network`) stay in `borealis-sim`: they describe scripted
//! failure scenarios, which both runtimes support, not the discrete-event
//! kernel.

use crate::msg::NetMsg;
use borealis_sim::{Ctx, FaultEvent};
use borealis_types::{Duration, NodeId, SendOutcome, Time};
use rand::Rng;

/// The handler-side view of a runtime: what a protocol actor may do while
/// reacting to an event.
///
/// Implementations exist for the simulator kernel (`borealis_sim::Ctx`)
/// and the thread engine (`borealis_runtime`'s context). Protocol code
/// must not assume anything beyond this interface — in particular, `now()`
/// may be virtual or wall-clock time, and `send` may deliver with simulated
/// or native latency.
pub trait RuntimeCtx {
    /// Current time (virtual in the simulator, monotonic wall clock in the
    /// thread engine).
    fn now(&self) -> Time;

    /// This actor's id.
    fn id(&self) -> NodeId;

    /// Sends `msg` to `to` through the runtime's [`Transport`]
    /// (`crate::transport::Transport`) layer. Lost if the link or either
    /// endpoint is down ([`SendOutcome::DroppedFault`]); under a bounded
    /// credit policy a data message may instead be queued at the sender
    /// awaiting credit ([`SendOutcome::Queued`] — the transport releases it
    /// in FIFO order once the receiver consumes earlier deliveries).
    fn send(&mut self, to: NodeId, msg: NetMsg) -> SendOutcome;

    /// Sends `msg` so it departs at `depart` (clamped to now) — used by the
    /// CPU cost model: outputs leave the node when the work completes.
    /// Credit admission happens at the departure instant.
    fn send_after(&mut self, to: NodeId, msg: NetMsg, depart: Time) -> SendOutcome;

    /// Marks the data message currently being handled as consumed at `at`
    /// (the receiver's modeled CPU completion): its link credit returns
    /// then. Handlers that never call this consume instantly.
    fn data_consumed_at(&mut self, _at: Time) {}

    /// Continuous credit-stall duration of the inbound link `from → self`:
    /// how long `from`'s sends to this actor have been queued awaiting
    /// credit ([`Duration::ZERO`] when credit is flowing or flow control is
    /// off). This is how an overloaded consumer's backpressure is surfaced
    /// to the protocol layer (and from there to `SUnion`).
    fn inbound_stall(&self, _from: NodeId) -> Duration {
        Duration::ZERO
    }

    /// Schedules an `on_timer(kind)` callback at `at` (clamped to now).
    fn set_timer(&mut self, at: Time, kind: u64);

    /// True if `to` is currently reachable from this actor.
    fn reachable(&self, to: NodeId) -> bool;

    /// Uniform random sample from `[0, n)`; deterministic (seeded) in the
    /// simulator.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn rand_range(&mut self, n: u64) -> u64;
}

/// Adapter: the deterministic simulator's context is a [`RuntimeCtx`].
///
/// This is the *only* glue between the protocol crate and the discrete-event
/// kernel; everything else goes through the trait.
impl RuntimeCtx for Ctx<'_, NetMsg> {
    fn now(&self) -> Time {
        Ctx::now(self)
    }

    fn id(&self) -> NodeId {
        Ctx::id(self)
    }

    fn send(&mut self, to: NodeId, msg: NetMsg) -> SendOutcome {
        Ctx::send(self, to, msg)
    }

    fn send_after(&mut self, to: NodeId, msg: NetMsg, depart: Time) -> SendOutcome {
        Ctx::send_after(self, to, msg, depart)
    }

    fn data_consumed_at(&mut self, at: Time) {
        Ctx::data_consumed_at(self, at)
    }

    fn inbound_stall(&self, from: NodeId) -> Duration {
        Ctx::inbound_stall(self, from)
    }

    fn set_timer(&mut self, at: Time, kind: u64) {
        Ctx::set_timer(self, at, kind)
    }

    fn reachable(&self, to: NodeId) -> bool {
        Ctx::reachable(self, to)
    }

    fn rand_range(&mut self, n: u64) -> u64 {
        self.rng().gen_range(0..n)
    }
}

/// A runtime-agnostic protocol actor: the boxed interface a runtime uses to
/// drive [`crate::node::ProcessingNode`], [`crate::source::DataSource`],
/// and [`crate::client::ClientProxy`] without knowing which is which.
///
/// `Send` is required so the thread engine can move actors onto their OS
/// threads; the simulator ignores the bound.
pub trait DpcActor: Send {
    /// Called once when the runtime starts the actor.
    fn on_start(&mut self, _ctx: &mut dyn RuntimeCtx) {}

    /// Handles a message delivered from another actor.
    fn on_message(&mut self, ctx: &mut dyn RuntimeCtx, from: NodeId, msg: NetMsg);

    /// Handles a timer previously set with [`RuntimeCtx::set_timer`].
    fn on_timer(&mut self, ctx: &mut dyn RuntimeCtx, kind: u64);

    /// Notified of faults involving this actor.
    fn on_fault(&mut self, _ctx: &mut dyn RuntimeCtx, _fault: &FaultEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_sim::{Actor, Network, Sim};
    use borealis_types::Duration;

    /// An actor written purely against RuntimeCtx, driven by the simulator
    /// through the adapter impl: proves the abstraction carries the full
    /// surface (now/id/send/send_after/set_timer/reachable/rand_range).
    struct Probe {
        peer: NodeId,
        got: Vec<(u64, String)>,
    }

    impl Probe {
        fn start<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C) {
            assert!(ctx.reachable(self.peer));
            let r = ctx.rand_range(10);
            assert!(r < 10);
            ctx.set_timer(ctx.now() + Duration::from_millis(5), 42);
            ctx.send(
                self.peer,
                NetMsg::Unsubscribe {
                    stream: borealis_types::StreamId(7),
                },
            );
        }
        fn message<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, _from: NodeId, msg: NetMsg) {
            self.got
                .push((ctx.now().as_millis(), msg.kind_name().into()));
        }
        fn timer<C: RuntimeCtx + ?Sized>(&mut self, ctx: &mut C, kind: u64) {
            self.got
                .push((ctx.now().as_millis(), format!("timer{kind}")));
            // Departure in the future: arrival = depart + latency.
            ctx.send_after(
                self.peer,
                NetMsg::HeartbeatReq,
                ctx.now() + Duration::from_millis(10),
            );
        }
    }

    impl Actor<NetMsg> for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<NetMsg>) {
            self.start(ctx)
        }
        fn on_message(&mut self, ctx: &mut Ctx<NetMsg>, from: NodeId, msg: NetMsg) {
            self.message(ctx, from, msg)
        }
        fn on_timer(&mut self, ctx: &mut Ctx<NetMsg>, kind: u64) {
            self.timer(ctx, kind)
        }
    }

    #[test]
    fn sim_ctx_satisfies_runtime_ctx() {
        let mut sim: Sim<NetMsg> = Sim::new(1, Network::new(Duration::from_millis(1)));
        let a = sim.add_actor(Box::new(Probe {
            peer: NodeId(1),
            got: Vec::new(),
        }));
        let _b = sim.add_actor(Box::new(Probe {
            peer: a,
            got: Vec::new(),
        }));
        sim.run_until(Time::from_secs(1));
        // Both probes exchanged messages and fired their timers; the run
        // completing without panics exercises every RuntimeCtx method.
    }
}
