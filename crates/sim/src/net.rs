//! The simulated network: reliable, in-order, point-to-point links.
//!
//! The paper assumes "replicas communicate using a reliable, in-order
//! protocol like TCP" (§2.2). The simulator provides exactly that: constant
//! per-pair latency (FIFO order falls out of a deterministic event queue)
//! and explicit link/node failure state. Messages sent or delivered while a
//! link or endpoint is down are lost, like segments of a broken TCP
//! connection.

use borealis_types::{Duration, NodeId, PartitionSpec};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Connectivity and latency state of the simulated network.
#[derive(Debug, Clone)]
pub struct Network {
    default_latency: Duration,
    latency_overrides: HashMap<(NodeId, NodeId), Duration>,
    down_links: HashSet<(NodeId, NodeId)>,
    down_nodes: HashSet<NodeId>,
    /// Key-partition filters, per receiving node: a shard replica only
    /// accepts its partition of any data stream (the partitioned send path
    /// of key-sharded fragments).
    partitions: HashMap<NodeId, Arc<PartitionSpec>>,
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// A fully connected network with the given default one-way latency.
    pub fn new(default_latency: Duration) -> Network {
        Network {
            default_latency,
            latency_overrides: HashMap::new(),
            down_links: HashSet::new(),
            down_nodes: HashSet::new(),
            partitions: HashMap::new(),
        }
    }

    /// Declares `node` a key-partitioned receiver: every data batch sent to
    /// it is filtered to `spec`'s shard on the wire. Installed by the
    /// deployment layout for the replicas of sharded fragments.
    pub fn set_partition(&mut self, node: NodeId, spec: PartitionSpec) {
        self.partitions.insert(node, Arc::new(spec));
    }

    /// The partition filter governing deliveries to `node`, if any.
    pub fn partition_of(&self, node: NodeId) -> Option<&Arc<PartitionSpec>> {
        self.partitions.get(&node)
    }

    /// Sets a specific latency for the pair `(a, b)` (both directions).
    pub fn set_latency(&mut self, a: NodeId, b: NodeId, latency: Duration) {
        self.latency_overrides.insert(ordered(a, b), latency);
    }

    /// One-way latency between two endpoints.
    pub fn latency(&self, a: NodeId, b: NodeId) -> Duration {
        self.latency_overrides
            .get(&ordered(a, b))
            .copied()
            .unwrap_or(self.default_latency)
    }

    /// True if a message from `a` can currently reach `b`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        !self.down_nodes.contains(&a)
            && !self.down_nodes.contains(&b)
            && !self.down_links.contains(&ordered(a, b))
    }

    /// True if the node itself is up.
    pub fn node_up(&self, n: NodeId) -> bool {
        !self.down_nodes.contains(&n)
    }

    /// Takes a link down (both directions).
    pub fn link_down(&mut self, a: NodeId, b: NodeId) {
        self.down_links.insert(ordered(a, b));
    }

    /// Heals a link.
    pub fn link_up(&mut self, a: NodeId, b: NodeId) {
        self.down_links.remove(&ordered(a, b));
    }

    /// Crashes a node.
    pub fn node_down(&mut self, n: NodeId) {
        self.down_nodes.insert(n);
    }

    /// Restarts a node.
    pub fn node_up_again(&mut self, n: NodeId) {
        self.down_nodes.remove(&n);
    }

    /// Partitions the system: every link between `group_a` and `group_b`
    /// goes down.
    pub fn partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.link_down(a, b);
            }
        }
    }

    /// Heals a partition created with [`Network::partition`].
    pub fn heal_partition(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        for &a in group_a {
            for &b in group_b {
                self.link_up(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_override_latency() {
        let mut net = Network::new(Duration::from_millis(1));
        assert_eq!(net.latency(NodeId(0), NodeId(1)), Duration::from_millis(1));
        net.set_latency(NodeId(0), NodeId(1), Duration::from_millis(5));
        assert_eq!(net.latency(NodeId(1), NodeId(0)), Duration::from_millis(5));
    }

    #[test]
    fn link_failures_are_bidirectional() {
        let mut net = Network::new(Duration::from_millis(1));
        assert!(net.reachable(NodeId(0), NodeId(1)));
        net.link_down(NodeId(1), NodeId(0));
        assert!(!net.reachable(NodeId(0), NodeId(1)));
        assert!(!net.reachable(NodeId(1), NodeId(0)));
        net.link_up(NodeId(0), NodeId(1));
        assert!(net.reachable(NodeId(0), NodeId(1)));
    }

    #[test]
    fn node_crash_blocks_all_its_links() {
        let mut net = Network::new(Duration::from_millis(1));
        net.node_down(NodeId(2));
        assert!(!net.reachable(NodeId(0), NodeId(2)));
        assert!(!net.reachable(NodeId(2), NodeId(1)));
        assert!(net.reachable(NodeId(0), NodeId(1)), "others unaffected");
        net.node_up_again(NodeId(2));
        assert!(net.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn partition_cuts_cross_links_only() {
        let mut net = Network::new(Duration::from_millis(1));
        let a = [NodeId(0), NodeId(1)];
        let b = [NodeId(2), NodeId(3)];
        net.partition(&a, &b);
        assert!(!net.reachable(NodeId(0), NodeId(2)));
        assert!(!net.reachable(NodeId(1), NodeId(3)));
        assert!(net.reachable(NodeId(0), NodeId(1)));
        assert!(net.reachable(NodeId(2), NodeId(3)));
        net.heal_partition(&a, &b);
        assert!(net.reachable(NodeId(0), NodeId(3)));
    }
}
