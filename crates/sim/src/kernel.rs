//! The deterministic discrete-event kernel.
//!
//! All distributed-protocol logic in this repository runs as [`Actor`]s
//! inside a [`Sim`]: a virtual clock, a totally ordered event queue
//! (time, then insertion sequence), a seeded RNG, and the simulated
//! [`Network`]. Two runs with the same seed and script produce identical
//! event interleavings — which is what lets the test suite assert exact
//! protocol behaviour and lets the benchmark harness reproduce the paper's
//! experiments without a physical cluster.

use crate::fault::FaultEvent;
use crate::flow::FlowControl;
use crate::net::Network;
use borealis_types::{
    CreditPolicy, Duration, FlowGauges, NodeId, PartitionSpec, SendOutcome, ShardRouter, Time,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Messages routable over key-partitioned, credit-controlled links. A
/// runtime consults the receiving node's [`PartitionSpec`] (if any) on
/// every send and keeps only the message content belonging to that shard;
/// returning `None` suppresses the delivery entirely (nothing of the
/// message belongs to the shard).
///
/// The default implementation passes every message through unchanged, so
/// protocol-free message types opt in with an empty `impl`.
pub trait ShardMsg: Sized {
    /// This shard's view of the message, or `None` if nothing remains.
    ///
    /// `router` is the delivery layer's one-pass partition memo: the first
    /// receiver of a batch computes every shard's selection view, the
    /// remaining K·R−1 receivers clone theirs out of the shared result —
    /// the shard key is evaluated and hashed once per tuple per producing
    /// link regardless of fan-out.
    fn partition(self, _spec: &PartitionSpec, _router: &mut ShardRouter) -> Option<Self> {
        Some(self)
    }

    /// True if this message consumes link credits under a tracking
    /// [`CreditPolicy`] (data payloads). Control traffic returns `false`
    /// (the default) so backpressure never blocks heartbeats,
    /// subscriptions, acks, or the stagger protocol.
    fn credit_controlled(&self) -> bool {
        false
    }
}

impl ShardMsg for String {}

/// A simulated participant: processing node, data source, or client proxy.
pub trait Actor<M> {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<M>) {}

    /// Handles a message delivered from another actor.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: NodeId, msg: M);

    /// Handles a timer previously set with [`Ctx::set_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<M>, kind: u64);

    /// Notified of faults involving this actor (link/node failures, custom
    /// scripted faults).
    fn on_fault(&mut self, _ctx: &mut Ctx<M>, _fault: &FaultEvent) {}
}

/// Deferred actions an actor requests while handling an event.
enum Action<M> {
    /// A scheduled arrival; `routed` marks messages already
    /// partition-filtered on the send path (credit admission), so the
    /// shard filter runs exactly once per message.
    Send {
        to: NodeId,
        msg: M,
        at: Time,
        routed: bool,
    },
    Depart {
        to: NodeId,
        msg: M,
        at: Time,
    },
    Timer {
        at: Time,
        kind: u64,
    },
}

/// Message-loss accounting for the whole simulation.
///
/// Faults silently eat messages in two places — at send time (the sender's
/// link or endpoint is already down) and at delivery time (the link broke
/// while the message was in flight). Both are counted here so tests can
/// assert exact lost-message counts instead of inferring them from absent
/// side effects.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Messages dropped because the destination was unreachable when the
    /// actor sent them.
    pub send_unreachable_drops: u64,
    /// Messages dropped in flight: sent while reachable, undeliverable at
    /// arrival time (broken TCP connection semantics).
    pub delivery_drops: u64,
}

impl SimStats {
    /// Total messages lost to faults.
    pub fn total_drops(&self) -> u64 {
        self.send_unreachable_drops + self.delivery_drops
    }
}

/// The handler-side view of the simulation.
pub struct Ctx<'a, M> {
    now: Time,
    self_id: NodeId,
    net: &'a Network,
    flow: &'a mut FlowControl<M>,
    router: &'a mut ShardRouter,
    rng: &'a mut StdRng,
    stats: &'a mut SimStats,
    actions: Vec<Action<M>>,
    consumed_at: Option<Time>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Seeded RNG shared by the whole simulation (deterministic).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// True if `to` is currently reachable from this actor.
    pub fn reachable(&self, to: NodeId) -> bool {
        self.net.reachable(self.self_id, to)
    }

    /// Marks the delivery currently being handled as consumed (by the
    /// receiver's modeled CPU) at `at`: its link credit returns then, not
    /// at arrival. Without this call credits return as soon as the handler
    /// finishes — an infinitely fast consumer.
    pub fn data_consumed_at(&mut self, at: Time) {
        self.consumed_at = Some(at.max(self.now));
    }

    /// Continuous credit-stall duration of the inbound link `from → self`
    /// ([`Duration::ZERO`] when credit is flowing or flow control is off).
    pub fn inbound_stall(&self, from: NodeId) -> Duration {
        self.flow.stalled_for(from, self.self_id, self.now)
    }

    /// Schedules `on_timer(kind)` at virtual time `at` (clamped to now).
    pub fn set_timer(&mut self, at: Time, kind: u64) {
        self.actions.push(Action::Timer {
            at: at.max(self.now),
            kind,
        });
    }
}

impl<'a, M: ShardMsg> Ctx<'a, M> {
    /// Sends `msg` to `to`, arriving one link latency from now. Lost if the
    /// link or either endpoint is down at send or delivery time; a
    /// credit-controlled message may instead be queued awaiting credit
    /// (returned outcome).
    pub fn send(&mut self, to: NodeId, msg: M) -> SendOutcome {
        let at = self.now + self.net.latency(self.self_id, to);
        self.send_at_raw(to, msg, at)
    }

    /// Sends `msg` so that it arrives one link latency after `depart` —
    /// used by nodes whose CPU model finishes processing at a future
    /// instant (outputs leave when the work completes). A future departure
    /// reports [`SendOutcome::Deferred`] (matching the thread engine's
    /// wheel); under a tracking credit policy the admission decision is
    /// additionally made at the departure instant.
    pub fn send_after(&mut self, to: NodeId, msg: M, depart: Time) -> SendOutcome {
        let depart = depart.max(self.now);
        if depart > self.now {
            // Send-time reachability mirrors the immediate path; credits
            // (for tracked messages) are consumed when the departure comes
            // due.
            if !self.net.reachable(self.self_id, to) {
                self.stats.send_unreachable_drops += 1;
                return SendOutcome::DroppedFault;
            }
            if self.flow.tracks(&msg) {
                self.actions.push(Action::Depart {
                    to,
                    msg,
                    at: depart,
                });
            } else {
                // Untracked messages need no departure-time admission: the
                // arrival event carries the full schedule directly.
                let at = depart + self.net.latency(self.self_id, to);
                self.actions.push(Action::Send {
                    to,
                    msg,
                    at,
                    routed: false,
                });
            }
            return SendOutcome::Deferred;
        }
        let at = depart + self.net.latency(self.self_id, to);
        self.send_at_raw(to, msg, at)
    }

    fn send_at_raw(&mut self, to: NodeId, msg: M, at: Time) -> SendOutcome {
        // Send-time reachability check; delivery is checked again when the
        // event fires. Unreachable destinations drop the message — counted,
        // never silent, so tests can assert on lost-message totals.
        if !self.net.reachable(self.self_id, to) {
            self.stats.send_unreachable_drops += 1;
            return SendOutcome::DroppedFault;
        }
        if self.flow.tracks(&msg) {
            // Partition routing happens before admission so a suppressed
            // delivery (nothing for the shard) never consumes a credit;
            // the action is marked routed so it is not filtered twice.
            let msg = match self.net.partition_of(to) {
                Some(spec) => match msg.partition(spec.as_ref(), self.router) {
                    Some(m) => m,
                    None => return SendOutcome::Delivered,
                },
                None => msg,
            };
            return match self.flow.admit(self.self_id, to, msg, self.now) {
                Some(m) => {
                    self.actions.push(Action::Send {
                        to,
                        msg: m,
                        at,
                        routed: true,
                    });
                    SendOutcome::Delivered
                }
                None => SendOutcome::Queued,
            };
        }
        self.actions.push(Action::Send {
            to,
            msg,
            at,
            routed: false,
        });
        SendOutcome::Delivered
    }
}

enum EventKind<M> {
    Message {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// A credit-controlled delayed send reaching its departure instant:
    /// admission (credit consumption or queueing) happens now.
    Depart {
        from: NodeId,
        to: NodeId,
        msg: M,
    },
    /// A delivery on `from → to` was consumed: return its credit and
    /// release the next queued message, if any.
    Replenish {
        from: NodeId,
        to: NodeId,
    },
    Timer {
        actor: NodeId,
        kind: u64,
    },
    Fault(FaultEvent),
    Start(NodeId),
}

struct Event<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulation.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    started: Vec<bool>,
    net: Network,
    flow: FlowControl<M>,
    queue: BinaryHeap<Event<M>>,
    now: Time,
    seq: u64,
    rng: StdRng,
    events_dispatched: u64,
    stats: SimStats,
    /// One-pass partition memo shared by every routed send in the
    /// simulation (single-threaded, so one router covers all senders).
    router: ShardRouter,
}

impl<M: ShardMsg> Sim<M> {
    /// Creates a simulation with the given RNG seed and network.
    pub fn new(seed: u64, net: Network) -> Sim<M> {
        Sim {
            actors: Vec::new(),
            started: Vec::new(),
            net,
            flow: FlowControl::new(CreditPolicy::Unbounded),
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            events_dispatched: 0,
            stats: SimStats::default(),
            router: ShardRouter::new(),
        }
    }

    /// Sets the credit-based flow-control policy (call before the run; the
    /// default [`CreditPolicy::Unbounded`] is the pre-credit behavior with
    /// zero overhead).
    pub fn set_flow_policy(&mut self, policy: CreditPolicy) {
        self.flow.set_policy(policy);
    }

    /// The credit ledger's governing policy.
    pub fn flow_policy(&self) -> CreditPolicy {
        self.flow.policy()
    }

    /// Queue-depth and stall-time gauges of the credit ledger.
    pub fn flow_gauges(&self) -> FlowGauges {
        self.flow.gauges()
    }

    /// Continuous credit-stall duration of the directed link `from → to`.
    pub fn flow_stalled_for(&self, from: NodeId, to: NodeId) -> Duration {
        self.flow.stalled_for(from, to, self.now)
    }

    /// Registers an actor; its `on_start` fires at time zero (or at the
    /// current time if the simulation is already running).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(actor);
        self.started.push(false);
        self.push_event(self.now, EventKind::Start(id));
        id
    }

    /// Network configuration access (latencies, manual link state).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read-only network access.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedules a fault (or heal) at `at`.
    pub fn schedule_fault(&mut self, at: Time, fault: FaultEvent) {
        self.push_event(at, EventKind::Fault(fault));
    }

    /// Schedules a timer on behalf of an actor (used to bootstrap periodic
    /// work from outside).
    pub fn schedule_timer(&mut self, at: Time, actor: NodeId, kind: u64) {
        self.push_event(at, EventKind::Timer { actor, kind });
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events dispatched so far (throughput benchmarking).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Message-loss statistics (send-time and delivery-time drops).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    fn push_event(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Runs until the queue is empty or virtual time would exceed `until`.
    /// Returns the number of events dispatched.
    pub fn run_until(&mut self, until: Time) -> u64 {
        let mut dispatched = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.now = self.now.max(ev.at);
            self.dispatch(ev);
            dispatched += 1;
        }
        self.now = self.now.max(until);
        self.events_dispatched += dispatched;
        dispatched
    }

    fn dispatch(&mut self, ev: Event<M>) {
        match ev.kind {
            EventKind::Message { from, to, msg } => {
                let tracked = self.flow.tracks(&msg);
                // Delivery-time reachability: a link that broke mid-flight
                // loses the message (broken TCP connection). A tracked loss
                // still returns its credit — a broken link must not shrink
                // the window forever.
                if !self.net.reachable(from, to) {
                    self.stats.delivery_drops += 1;
                    if tracked {
                        self.push_event(self.now, EventKind::Replenish { from, to });
                    }
                    return;
                }
                let consumed = self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
                if tracked {
                    // Credit returns when the receiver's modeled CPU has
                    // consumed the batch (the handler's data_consumed_at
                    // mark), or immediately for infinitely fast consumers.
                    let at = consumed.unwrap_or(self.now).max(self.now);
                    self.push_event(at, EventKind::Replenish { from, to });
                }
            }
            EventKind::Depart { from, to, msg } => {
                // A delayed send reaching its departure: the link may have
                // broken since the send-time check (in-flight loss), and
                // admission happens now — as the thread engine's wheel does.
                if !self.net.reachable(from, to) {
                    self.stats.delivery_drops += 1;
                    return;
                }
                let msg = match self.net.partition_of(to) {
                    Some(spec) => match msg.partition(spec.as_ref(), &mut self.router) {
                        Some(m) => m,
                        None => return,
                    },
                    None => msg,
                };
                if let Some(m) = self.flow.admit(from, to, msg, self.now) {
                    let at = self.now + self.net.latency(from, to);
                    self.push_event(at, EventKind::Message { from, to, msg: m });
                }
            }
            EventKind::Replenish { from, to } => {
                if let Some(m) = self.flow.replenish(from, to, self.now) {
                    let at = self.now + self.net.latency(from, to);
                    self.push_event(at, EventKind::Message { from, to, msg: m });
                }
            }
            EventKind::Timer { actor, kind } => {
                if !self.net.node_up(actor) {
                    return; // crashed nodes fire no timers
                }
                self.with_actor(actor, |a, ctx| a.on_timer(ctx, kind));
            }
            EventKind::Fault(fault) => {
                match &fault {
                    FaultEvent::LinkDown { a, b } => self.net.link_down(*a, *b),
                    FaultEvent::LinkUp { a, b } => self.net.link_up(*a, *b),
                    FaultEvent::NodeDown(n) => {
                        self.net.node_down(*n);
                        // Pending credits and queued sends die with the
                        // node: purged messages are in-flight losses, and
                        // the link restarts with a full window.
                        self.stats.delivery_drops += self.flow.reset_node(*n, self.now);
                    }
                    FaultEvent::NodeUp(n) => self.net.node_up_again(*n),
                    FaultEvent::Custom { .. } => {}
                }
                for id in fault.notifies() {
                    if !self.net.node_up(id) && !matches!(fault, FaultEvent::NodeDown(_)) {
                        continue;
                    }
                    let f = fault.clone();
                    self.with_actor(id, |a, ctx| a.on_fault(ctx, &f));
                }
            }
            EventKind::Start(id) => {
                if !self.started[id.index()] {
                    self.started[id.index()] = true;
                    self.with_actor(id, |a, ctx| a.on_start(ctx));
                }
            }
        }
    }

    /// Runs one actor handler with a fresh [`Ctx`], then applies the actions
    /// it queued. Returns the handler's consumption mark, if it set one.
    fn with_actor<F>(&mut self, id: NodeId, f: F) -> Option<Time>
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Ctx<M>),
    {
        let actor = self.actors.get_mut(id.index())?;
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            net: &self.net,
            flow: &mut self.flow,
            router: &mut self.router,
            rng: &mut self.rng,
            stats: &mut self.stats,
            actions: Vec::new(),
            consumed_at: None,
        };
        f(actor.as_mut(), &mut ctx);
        let consumed = ctx.consumed_at;
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Send {
                    to,
                    msg,
                    at,
                    routed,
                } => {
                    // Partitioned send path: a key-sharded receiver gets only
                    // its shard of the message (routing, not loss — nothing
                    // is counted as dropped). Credit-admitted messages were
                    // already filtered.
                    let msg = match self.net.partition_of(to) {
                        Some(spec) if !routed => {
                            match msg.partition(spec.as_ref(), &mut self.router) {
                                Some(m) => m,
                                None => continue,
                            }
                        }
                        _ => msg,
                    };
                    self.push_event(at, EventKind::Message { from: id, to, msg })
                }
                Action::Depart { to, msg, at } => {
                    self.push_event(at, EventKind::Depart { from: id, to, msg })
                }
                Action::Timer { at, kind } => {
                    self.push_event(at, EventKind::Timer { actor: id, kind })
                }
            }
        }
        consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Duration;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, NodeId, String)>>>;

    /// Echoes every message back and logs receipt times (ms).
    struct Echo {
        log: Log,
        replies: u32,
    }

    impl Actor<String> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<String>, from: NodeId, msg: String) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), msg.clone()));
            if self.replies > 0 {
                self.replies -= 1;
                ctx.send(from, format!("re:{msg}"));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<String>, _kind: u64) {}
    }

    /// Sends one message at start and logs timer firings.
    struct Starter {
        to: NodeId,
        log: Log,
    }

    impl Actor<String> for Starter {
        fn on_start(&mut self, ctx: &mut Ctx<String>) {
            ctx.send(self.to, "hello".into());
            ctx.set_timer(Time::from_millis(50), 7);
        }
        fn on_message(&mut self, ctx: &mut Ctx<String>, _from: NodeId, msg: String) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<String>, kind: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), format!("timer{kind}")));
        }
    }

    fn new_sim() -> Sim<String> {
        Sim::new(42, Network::new(Duration::from_millis(1)))
    }

    #[test]
    fn messages_arrive_after_latency_in_order() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 1,
        }));
        let _starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        let entries = log.borrow();
        // hello arrives at 1 ms, reply at 2 ms, timer at 50 ms.
        assert_eq!(entries[0], (1, NodeId(0), "hello".into()));
        assert_eq!(entries[1], (2, NodeId(1), "re:hello".into()));
        assert_eq!(entries[2], (50, NodeId(1), "timer7".into()));
    }

    #[test]
    fn link_failure_drops_messages() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        let entries = log.borrow();
        // Only the timer fires; the hello was dropped.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].2, "timer7");
    }

    #[test]
    fn send_time_unreachable_drops_are_counted() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        // Fault scheduled before the actors start: the link is already
        // down when Starter's on_start sends, so the drop happens at send
        // time.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        assert_eq!(
            sim.stats().send_unreachable_drops,
            1,
            "the hello was dropped at send"
        );
        assert_eq!(sim.stats().delivery_drops, 0);
        assert_eq!(sim.stats().total_drops(), 1);
        let _ = (echo, starter);
    }

    #[test]
    fn in_flight_delivery_drops_are_counted_separately() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        // The link breaks after the send (t=0, same instant but later event
        // order) and before delivery (t=1 ms): an in-flight loss.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.stats().send_unreachable_drops, 0);
        assert_eq!(sim.stats().delivery_drops, 1);
    }

    #[test]
    fn healthy_runs_report_zero_drops() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 1,
        }));
        sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.stats(), SimStats::default());
    }

    #[test]
    fn crashed_node_receives_nothing_and_fires_no_timers() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.schedule_fault(Time::ZERO, FaultEvent::NodeDown(starter));
        sim.run_until(Time::from_secs(1));
        assert!(log.borrow().is_empty(), "{:?}", log.borrow());
        let _ = echo;
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = || {
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = new_sim();
            let echo = sim.add_actor(Box::new(Echo {
                log: log.clone(),
                replies: 3,
            }));
            sim.add_actor(Box::new(Starter {
                to: echo,
                log: log.clone(),
            }));
            sim.run_until(Time::from_secs(2));
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_horizon() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_millis(10));
        assert_eq!(log.borrow().len(), 1, "timer at 50 ms not yet fired");
        assert_eq!(sim.now(), Time::from_millis(10));
        sim.run_until(Time::from_millis(100));
        assert_eq!(log.borrow().len(), 2);
    }

    /// A data-plane message for flow-control tests.
    #[derive(Debug, Clone, PartialEq)]
    struct Payload(u32);
    impl ShardMsg for Payload {
        fn credit_controlled(&self) -> bool {
            true
        }
    }

    /// Sends `n` payloads in one burst at start.
    struct Flood {
        to: NodeId,
        n: u32,
    }
    impl Actor<Payload> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<Payload>) {
            for i in 0..self.n {
                ctx.send(self.to, Payload(i));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<Payload>, _from: NodeId, _msg: Payload) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<Payload>, _kind: u64) {}
    }

    /// Consumes each payload `per_msg` of modeled CPU after the previous.
    struct SlowSink {
        seen: Rc<RefCell<Vec<u32>>>,
        per_msg: Duration,
        busy: Time,
    }
    impl Actor<Payload> for SlowSink {
        fn on_message(&mut self, ctx: &mut Ctx<Payload>, _from: NodeId, msg: Payload) {
            self.seen.borrow_mut().push(msg.0);
            self.busy = self.busy.max(ctx.now()) + self.per_msg;
            ctx.data_consumed_at(self.busy);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<Payload>, _kind: u64) {}
    }

    fn flood_sim(policy: CreditPolicy, n: u32) -> (Sim<Payload>, Rc<RefCell<Vec<u32>>>) {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Sim<Payload> = Sim::new(3, Network::new(Duration::from_millis(1)));
        sim.set_flow_policy(policy);
        let sink = sim.add_actor(Box::new(SlowSink {
            seen: seen.clone(),
            per_msg: Duration::from_millis(10),
            busy: Time::ZERO,
        }));
        sim.add_actor(Box::new(Flood { to: sink, n }));
        (sim, seen)
    }

    #[test]
    fn bounded_window_caps_inflight_and_preserves_order() {
        let (mut sim, seen) = flood_sim(CreditPolicy::Window(3), 20);
        sim.run_until(Time::from_secs(5));
        assert_eq!(
            *seen.borrow(),
            (0..20).collect::<Vec<_>>(),
            "backpressure may delay, never reorder or drop"
        );
        let g = sim.flow_gauges();
        assert_eq!(g.inflight_peak, 3, "in-flight bounded by the window");
        assert_eq!(g.queued, 17, "the burst past the window queued");
        assert_eq!(g.released, 17);
        assert_eq!(g.queued_now, 0);
        assert_eq!(g.inflight_now, 0, "all credits returned at quiescence");
        assert!(g.stall_time > Duration::ZERO);
        assert_eq!(sim.stats().total_drops(), 0);
    }

    #[test]
    fn metered_baseline_shows_unbounded_inflight() {
        let (mut sim, seen) = flood_sim(CreditPolicy::Metered, 20);
        sim.run_until(Time::from_secs(5));
        assert_eq!(seen.borrow().len(), 20);
        let g = sim.flow_gauges();
        assert_eq!(g.inflight_peak, 20, "the whole burst floods the receiver");
        assert_eq!(g.queued, 0, "metered never stalls");
    }

    #[test]
    fn unbounded_policy_keeps_the_ledger_silent() {
        let (mut sim, seen) = flood_sim(CreditPolicy::Unbounded, 20);
        sim.run_until(Time::from_secs(5));
        assert_eq!(seen.borrow().len(), 20);
        assert_eq!(sim.flow_gauges(), borealis_types::FlowGauges::default());
    }

    #[test]
    fn crash_purges_queued_sends_as_delivery_drops() {
        let (mut sim, seen) = flood_sim(CreditPolicy::Window(2), 10);
        // Crash the sink while most of the burst is still queued: the
        // queued messages are purged (counted) and never delivered.
        sim.schedule_fault(Time::from_millis(15), FaultEvent::NodeDown(NodeId(0)));
        sim.run_until(Time::from_secs(5));
        assert!(seen.borrow().len() < 10, "crash cut the stream");
        assert!(
            sim.stats().delivery_drops > 0,
            "purged queue counted: {:?}",
            sim.stats()
        );
        assert_eq!(sim.flow_gauges().queued_now, 0);
    }

    #[test]
    fn stalled_for_visible_while_link_saturated() {
        let (mut sim, _seen) = flood_sim(CreditPolicy::Window(1), 50);
        sim.run_until(Time::from_millis(100));
        assert!(
            sim.flow_stalled_for(NodeId(1), NodeId(0)) > Duration::ZERO,
            "mid-burst the sender is stalled"
        );
        sim.run_until(Time::from_secs(10));
        assert_eq!(
            sim.flow_stalled_for(NodeId(1), NodeId(0)),
            Duration::ZERO,
            "drained"
        );
    }

    #[test]
    fn healed_link_delivers_again() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        // Down at 0, up at 20 ms; the start message (sent at 0) is lost.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.schedule_fault(
            Time::from_millis(20),
            FaultEvent::LinkUp {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(log.borrow().len(), 1, "only the timer");
    }
}
