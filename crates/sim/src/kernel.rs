//! The deterministic discrete-event kernel.
//!
//! All distributed-protocol logic in this repository runs as [`Actor`]s
//! inside a [`Sim`]: a virtual clock, a totally ordered event queue
//! (time, then insertion sequence), a seeded RNG, and the simulated
//! [`Network`]. Two runs with the same seed and script produce identical
//! event interleavings — which is what lets the test suite assert exact
//! protocol behaviour and lets the benchmark harness reproduce the paper's
//! experiments without a physical cluster.

use crate::fault::FaultEvent;
use crate::net::Network;
use borealis_types::{NodeId, PartitionSpec, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Messages routable over key-partitioned links. A runtime consults the
/// receiving node's [`PartitionSpec`] (if any) on every send and keeps only
/// the message content belonging to that shard; returning `None` suppresses
/// the delivery entirely (nothing of the message belongs to the shard).
///
/// The default implementation passes every message through unchanged, so
/// protocol-free message types opt in with an empty `impl`.
pub trait ShardMsg: Sized {
    /// This shard's view of the message, or `None` if nothing remains.
    fn partition(self, _spec: &PartitionSpec) -> Option<Self> {
        Some(self)
    }
}

impl ShardMsg for String {}

/// A simulated participant: processing node, data source, or client proxy.
pub trait Actor<M> {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx<M>) {}

    /// Handles a message delivered from another actor.
    fn on_message(&mut self, ctx: &mut Ctx<M>, from: NodeId, msg: M);

    /// Handles a timer previously set with [`Ctx::set_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<M>, kind: u64);

    /// Notified of faults involving this actor (link/node failures, custom
    /// scripted faults).
    fn on_fault(&mut self, _ctx: &mut Ctx<M>, _fault: &FaultEvent) {}
}

/// Deferred actions an actor requests while handling an event.
enum Action<M> {
    Send { to: NodeId, msg: M, at: Time },
    Timer { at: Time, kind: u64 },
}

/// Message-loss accounting for the whole simulation.
///
/// Faults silently eat messages in two places — at send time (the sender's
/// link or endpoint is already down) and at delivery time (the link broke
/// while the message was in flight). Both are counted here so tests can
/// assert exact lost-message counts instead of inferring them from absent
/// side effects.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Messages dropped because the destination was unreachable when the
    /// actor sent them.
    pub send_unreachable_drops: u64,
    /// Messages dropped in flight: sent while reachable, undeliverable at
    /// arrival time (broken TCP connection semantics).
    pub delivery_drops: u64,
}

impl SimStats {
    /// Total messages lost to faults.
    pub fn total_drops(&self) -> u64 {
        self.send_unreachable_drops + self.delivery_drops
    }
}

/// The handler-side view of the simulation.
pub struct Ctx<'a, M> {
    now: Time,
    self_id: NodeId,
    net: &'a Network,
    rng: &'a mut StdRng,
    stats: &'a mut SimStats,
    actions: Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// This actor's id.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Seeded RNG shared by the whole simulation (deterministic).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// True if `to` is currently reachable from this actor.
    pub fn reachable(&self, to: NodeId) -> bool {
        self.net.reachable(self.self_id, to)
    }

    /// Sends `msg` to `to`, arriving one link latency from now. Lost if the
    /// link or either endpoint is down at send or delivery time.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let at = self.now + self.net.latency(self.self_id, to);
        self.send_at_raw(to, msg, at);
    }

    /// Sends `msg` so that it arrives one link latency after `depart` —
    /// used by nodes whose CPU model finishes processing at a future
    /// instant (outputs leave when the work completes).
    pub fn send_after(&mut self, to: NodeId, msg: M, depart: Time) {
        let depart = depart.max(self.now);
        let at = depart + self.net.latency(self.self_id, to);
        self.send_at_raw(to, msg, at);
    }

    fn send_at_raw(&mut self, to: NodeId, msg: M, at: Time) {
        // Send-time reachability check; delivery is checked again when the
        // event fires. Unreachable destinations drop the message — counted,
        // never silent, so tests can assert on lost-message totals.
        if self.net.reachable(self.self_id, to) {
            self.actions.push(Action::Send { to, msg, at });
        } else {
            self.stats.send_unreachable_drops += 1;
        }
    }

    /// Schedules `on_timer(kind)` at virtual time `at` (clamped to now).
    pub fn set_timer(&mut self, at: Time, kind: u64) {
        self.actions.push(Action::Timer {
            at: at.max(self.now),
            kind,
        });
    }
}

enum EventKind<M> {
    Message { from: NodeId, to: NodeId, msg: M },
    Timer { actor: NodeId, kind: u64 },
    Fault(FaultEvent),
    Start(NodeId),
}

struct Event<M> {
    at: Time,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulation.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    started: Vec<bool>,
    net: Network,
    queue: BinaryHeap<Event<M>>,
    now: Time,
    seq: u64,
    rng: StdRng,
    events_dispatched: u64,
    stats: SimStats,
}

impl<M: ShardMsg> Sim<M> {
    /// Creates a simulation with the given RNG seed and network.
    pub fn new(seed: u64, net: Network) -> Sim<M> {
        Sim {
            actors: Vec::new(),
            started: Vec::new(),
            net,
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            events_dispatched: 0,
            stats: SimStats::default(),
        }
    }

    /// Registers an actor; its `on_start` fires at time zero (or at the
    /// current time if the simulation is already running).
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.actors.len() as u32);
        self.actors.push(actor);
        self.started.push(false);
        self.push_event(self.now, EventKind::Start(id));
        id
    }

    /// Network configuration access (latencies, manual link state).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read-only network access.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedules a fault (or heal) at `at`.
    pub fn schedule_fault(&mut self, at: Time, fault: FaultEvent) {
        self.push_event(at, EventKind::Fault(fault));
    }

    /// Schedules a timer on behalf of an actor (used to bootstrap periodic
    /// work from outside).
    pub fn schedule_timer(&mut self, at: Time, actor: NodeId, kind: u64) {
        self.push_event(at, EventKind::Timer { actor, kind });
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events dispatched so far (throughput benchmarking).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Message-loss statistics (send-time and delivery-time drops).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    fn push_event(&mut self, at: Time, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { at, seq, kind });
    }

    /// Runs until the queue is empty or virtual time would exceed `until`.
    /// Returns the number of events dispatched.
    pub fn run_until(&mut self, until: Time) -> u64 {
        let mut dispatched = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.at > until {
                break;
            }
            let ev = self.queue.pop().expect("peeked event exists");
            self.now = self.now.max(ev.at);
            self.dispatch(ev);
            dispatched += 1;
        }
        self.now = self.now.max(until);
        self.events_dispatched += dispatched;
        dispatched
    }

    fn dispatch(&mut self, ev: Event<M>) {
        match ev.kind {
            EventKind::Message { from, to, msg } => {
                // Delivery-time reachability: a link that broke mid-flight
                // loses the message (broken TCP connection).
                if !self.net.reachable(from, to) {
                    self.stats.delivery_drops += 1;
                    return;
                }
                self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EventKind::Timer { actor, kind } => {
                if !self.net.node_up(actor) {
                    return; // crashed nodes fire no timers
                }
                self.with_actor(actor, |a, ctx| a.on_timer(ctx, kind));
            }
            EventKind::Fault(fault) => {
                match &fault {
                    FaultEvent::LinkDown { a, b } => self.net.link_down(*a, *b),
                    FaultEvent::LinkUp { a, b } => self.net.link_up(*a, *b),
                    FaultEvent::NodeDown(n) => self.net.node_down(*n),
                    FaultEvent::NodeUp(n) => self.net.node_up_again(*n),
                    FaultEvent::Custom { .. } => {}
                }
                for id in fault.notifies() {
                    if !self.net.node_up(id) && !matches!(fault, FaultEvent::NodeDown(_)) {
                        continue;
                    }
                    let f = fault.clone();
                    self.with_actor(id, |a, ctx| a.on_fault(ctx, &f));
                }
            }
            EventKind::Start(id) => {
                if !self.started[id.index()] {
                    self.started[id.index()] = true;
                    self.with_actor(id, |a, ctx| a.on_start(ctx));
                }
            }
        }
    }

    /// Runs one actor handler with a fresh [`Ctx`], then applies the actions
    /// it queued.
    fn with_actor<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Actor<M>, &mut Ctx<M>),
    {
        let Some(actor) = self.actors.get_mut(id.index()) else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            net: &self.net,
            rng: &mut self.rng,
            stats: &mut self.stats,
            actions: Vec::new(),
        };
        f(actor.as_mut(), &mut ctx);
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Send { to, msg, at } => {
                    // Partitioned send path: a key-sharded receiver gets only
                    // its shard of the message (routing, not loss — nothing
                    // is counted as dropped).
                    let msg = match self.net.partition_of(to) {
                        Some(spec) => match msg.partition(spec.as_ref()) {
                            Some(m) => m,
                            None => continue,
                        },
                        None => msg,
                    };
                    self.push_event(at, EventKind::Message { from: id, to, msg })
                }
                Action::Timer { at, kind } => {
                    self.push_event(at, EventKind::Timer { actor: id, kind })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use borealis_types::Duration;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, NodeId, String)>>>;

    /// Echoes every message back and logs receipt times (ms).
    struct Echo {
        log: Log,
        replies: u32,
    }

    impl Actor<String> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<String>, from: NodeId, msg: String) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), msg.clone()));
            if self.replies > 0 {
                self.replies -= 1;
                ctx.send(from, format!("re:{msg}"));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<String>, _kind: u64) {}
    }

    /// Sends one message at start and logs timer firings.
    struct Starter {
        to: NodeId,
        log: Log,
    }

    impl Actor<String> for Starter {
        fn on_start(&mut self, ctx: &mut Ctx<String>) {
            ctx.send(self.to, "hello".into());
            ctx.set_timer(Time::from_millis(50), 7);
        }
        fn on_message(&mut self, ctx: &mut Ctx<String>, _from: NodeId, msg: String) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), msg));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<String>, kind: u64) {
            self.log
                .borrow_mut()
                .push((ctx.now().as_millis(), ctx.id(), format!("timer{kind}")));
        }
    }

    fn new_sim() -> Sim<String> {
        Sim::new(42, Network::new(Duration::from_millis(1)))
    }

    #[test]
    fn messages_arrive_after_latency_in_order() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 1,
        }));
        let _starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        let entries = log.borrow();
        // hello arrives at 1 ms, reply at 2 ms, timer at 50 ms.
        assert_eq!(entries[0], (1, NodeId(0), "hello".into()));
        assert_eq!(entries[1], (2, NodeId(1), "re:hello".into()));
        assert_eq!(entries[2], (50, NodeId(1), "timer7".into()));
    }

    #[test]
    fn link_failure_drops_messages() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        let entries = log.borrow();
        // Only the timer fires; the hello was dropped.
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].2, "timer7");
    }

    #[test]
    fn send_time_unreachable_drops_are_counted() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        // Fault scheduled before the actors start: the link is already
        // down when Starter's on_start sends, so the drop happens at send
        // time.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(1),
            },
        );
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        assert_eq!(
            sim.stats().send_unreachable_drops,
            1,
            "the hello was dropped at send"
        );
        assert_eq!(sim.stats().delivery_drops, 0);
        assert_eq!(sim.stats().total_drops(), 1);
        let _ = (echo, starter);
    }

    #[test]
    fn in_flight_delivery_drops_are_counted_separately() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        // The link breaks after the send (t=0, same instant but later event
        // order) and before delivery (t=1 ms): an in-flight loss.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.stats().send_unreachable_drops, 0);
        assert_eq!(sim.stats().delivery_drops, 1);
    }

    #[test]
    fn healthy_runs_report_zero_drops() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 1,
        }));
        sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.stats(), SimStats::default());
    }

    #[test]
    fn crashed_node_receives_nothing_and_fires_no_timers() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.schedule_fault(Time::ZERO, FaultEvent::NodeDown(starter));
        sim.run_until(Time::from_secs(1));
        assert!(log.borrow().is_empty(), "{:?}", log.borrow());
        let _ = echo;
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = || {
            let log: Log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = new_sim();
            let echo = sim.add_actor(Box::new(Echo {
                log: log.clone(),
                replies: 3,
            }));
            sim.add_actor(Box::new(Starter {
                to: echo,
                log: log.clone(),
            }));
            sim.run_until(Time::from_secs(2));
            let v = log.borrow().clone();
            v
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_horizon() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        sim.run_until(Time::from_millis(10));
        assert_eq!(log.borrow().len(), 1, "timer at 50 ms not yet fired");
        assert_eq!(sim.now(), Time::from_millis(10));
        sim.run_until(Time::from_millis(100));
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn healed_link_delivers_again() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = new_sim();
        let echo = sim.add_actor(Box::new(Echo {
            log: log.clone(),
            replies: 0,
        }));
        let starter = sim.add_actor(Box::new(Starter {
            to: echo,
            log: log.clone(),
        }));
        // Down at 0, up at 20 ms; the start message (sent at 0) is lost.
        sim.schedule_fault(
            Time::ZERO,
            FaultEvent::LinkDown {
                a: echo,
                b: starter,
            },
        );
        sim.schedule_fault(
            Time::from_millis(20),
            FaultEvent::LinkUp {
                a: echo,
                b: starter,
            },
        );
        sim.run_until(Time::from_secs(1));
        assert_eq!(log.borrow().len(), 1, "only the timer");
    }
}
